//! EXACT — solving a set of linear equations using residue arithmetic
//! (paper §3, test case 3).
//!
//! The system `A·x = b` (6×6, integer) is solved modulo three primes with
//! Gaussian elimination over `Z_p` — modular inverses via Fermat's little
//! theorem (`a^{p-2} mod p`), partial pivoting by nonzero search. The three
//! residue solutions are printed; a downstream CRT step would combine them
//! (the residues are what the test validates).

/// MiniLang source of EXACT.
pub const SRC: &str = r#"
program exact;
var
  a: array[36] of int;
  b: array[6] of int;
  aa: array[36] of int;
  bb: array[6] of int;
  x: array[6] of int;
  primes: array[3] of int;
  n, e, p, i, j, kk, piv, prow, inv, t, base, expo, factor, s: int;
begin
  n := 6;
  primes[0] := 97;
  primes[1] := 101;
  primes[2] := 103;

  { deterministic diagonally-dominant system }
  for i := 0 to n - 1 do begin
    for j := 0 to n - 1 do begin
      if i = j then
        a[i * n + j] := 40 + i;
      else
        a[i * n + j] := (i * 3 + j * 5 + 2) mod 7;
    end;
    b[i] := (i * i + 3 * i + 1) mod 13;
  end;

  for e := 0 to 2 do begin
    p := primes[e];

    { working copy, reduced mod p }
    for i := 0 to n - 1 do begin
      for j := 0 to n - 1 do
        aa[i * n + j] := a[i * n + j] mod p;
      bb[i] := b[i] mod p;
    end;

    { forward elimination with partial (nonzero) pivoting }
    for kk := 0 to n - 1 do begin
      { find a row with nonzero pivot }
      prow := kk;
      while aa[prow * n + kk] = 0 do prow := prow + 1;
      if prow <> kk then begin
        for j := 0 to n - 1 do begin
          t := aa[kk * n + j];
          aa[kk * n + j] := aa[prow * n + j];
          aa[prow * n + j] := t;
        end;
        t := bb[kk]; bb[kk] := bb[prow]; bb[prow] := t;
      end;
      piv := aa[kk * n + kk];

      { inv = piv^(p-2) mod p  (Fermat) }
      inv := 1;
      base := piv;
      expo := p - 2;
      while expo > 0 do begin
        if expo mod 2 = 1 then inv := (inv * base) mod p;
        base := (base * base) mod p;
        expo := expo div 2;
      end;

      { normalize row kk }
      for j := kk to n - 1 do
        aa[kk * n + j] := (aa[kk * n + j] * inv) mod p;
      bb[kk] := (bb[kk] * inv) mod p;

      { eliminate below }
      for i := kk + 1 to n - 1 do begin
        factor := aa[i * n + kk];
        if factor <> 0 then begin
          for j := kk to n - 1 do begin
            t := (aa[i * n + j] - factor * aa[kk * n + j]) mod p;
            aa[i * n + j] := ((t mod p) + p) mod p;
          end;
          t := (bb[i] - factor * bb[kk]) mod p;
          bb[i] := ((t mod p) + p) mod p;
        end;
      end;
    end;

    { back substitution }
    for kk := n - 1 downto 0 do begin
      s := bb[kk];
      for j := kk + 1 to n - 1 do
        s := s - aa[kk * n + j] * x[j];
      x[kk] := ((s mod p) + p) mod p;
    end;

    for i := 0 to n - 1 do print x[i];
  end;
end.
"#;

/// Rust reference: the same residue solve per prime.
pub fn expected() -> Vec<i64> {
    let n = 6usize;
    let primes = [97i64, 101, 103];
    let mut a = vec![0i64; n * n];
    let mut b = vec![0i64; n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = if i == j {
                40 + i as i64
            } else {
                (i as i64 * 3 + j as i64 * 5 + 2) % 7
            };
        }
        b[i] = ((i * i) as i64 + 3 * i as i64 + 1) % 13;
    }

    let pow_mod = |mut base: i64, mut e: i64, p: i64| -> i64 {
        let mut r = 1i64;
        base %= p;
        while e > 0 {
            if e & 1 == 1 {
                r = r * base % p;
            }
            base = base * base % p;
            e >>= 1;
        }
        r
    };

    let mut out = Vec::new();
    for &p in &primes {
        let mut aa: Vec<i64> = a.iter().map(|&v| v.rem_euclid(p)).collect();
        let mut bb: Vec<i64> = b.iter().map(|&v| v.rem_euclid(p)).collect();
        for k in 0..n {
            let mut prow = k;
            while aa[prow * n + k] == 0 {
                prow += 1;
            }
            if prow != k {
                for j in 0..n {
                    aa.swap(k * n + j, prow * n + j);
                }
                bb.swap(k, prow);
            }
            let inv = pow_mod(aa[k * n + k], p - 2, p);
            for j in k..n {
                aa[k * n + j] = aa[k * n + j] * inv % p;
            }
            bb[k] = bb[k] * inv % p;
            for i in k + 1..n {
                let f = aa[i * n + k];
                if f != 0 {
                    for j in k..n {
                        aa[i * n + j] = (aa[i * n + j] - f * aa[k * n + j]).rem_euclid(p);
                    }
                    bb[i] = (bb[i] - f * bb[k]).rem_euclid(p);
                }
            }
        }
        let mut x = vec![0i64; n];
        for k in (0..n).rev() {
            let mut s = bb[k];
            for j in k + 1..n {
                s -= aa[k * n + j] * x[j];
            }
            x[k] = s.rem_euclid(p);
        }
        out.extend(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::Value;

    #[test]
    fn matches_reference_residue_solver() {
        let out = liw_ir::run_source(SRC).unwrap().output;
        let exp = expected();
        assert_eq!(out.len(), exp.len());
        for (got, want) in out.iter().zip(&exp) {
            assert_eq!(*got, Value::Int(*want));
        }
    }

    #[test]
    fn residues_actually_solve_the_system() {
        // Independent check: A·x ≡ b (mod p) for every prime.
        let exp = expected();
        let n = 6usize;
        let primes = [97i64, 101, 103];
        let mut a = vec![0i64; n * n];
        let mut b = vec![0i64; n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j {
                    40 + i as i64
                } else {
                    (i as i64 * 3 + j as i64 * 5 + 2) % 7
                };
            }
            b[i] = ((i * i) as i64 + 3 * i as i64 + 1) % 13;
        }
        for (e, &p) in primes.iter().enumerate() {
            let x = &exp[e * n..(e + 1) * n];
            for i in 0..n {
                let lhs: i64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
                assert_eq!(lhs.rem_euclid(p), b[i].rem_euclid(p), "row {i} mod {p}");
            }
        }
    }
}
