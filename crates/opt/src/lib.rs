#![warn(missing_docs)]

//! # liw-opt
//!
//! Classic scalar optimizations over the `liw-ir` three-address code, run
//! before LIW scheduling (the paper's RLIW compiler optimized before
//! packing words too):
//!
//! * [`lvn`] — per-block value numbering: common-subexpression elimination,
//!   constant propagation/folding, copy propagation, store-to-load
//!   forwarding;
//! * [`dce`] — liveness-driven dead code elimination;
//! * [`simplify`] — constant-branch folding, jump threading, block merging,
//!   unreachable-code removal.
//!
//! [`optimize`] iterates the three to a fixpoint. Every pass is
//! semantics-preserving, machine-checked against the reference interpreter
//! in its tests and fuzzed via the workspace property suite.

pub mod dce;
pub mod ifconv;
pub mod lvn;
pub mod simplify;

use liw_ir::tac::TacProgram;

/// Optimization pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Convert small branch diamonds into `select` conditional moves
    /// (speculation-safe arms only). On by default — the RLIW's lock-step
    /// words make short branches expensive.
    pub if_convert: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig { if_convert: true }
    }
}

/// Summary of one optimization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// LVN rewrites (folds, CSE hits, forwarded loads).
    pub lvn_rewrites: usize,
    /// Instructions removed by DCE.
    pub dce_removed: usize,
    /// CFG rewrites (folded branches, merges, drops).
    pub cfg_rewrites: usize,
    /// Branch diamonds converted to selects.
    pub diamonds_converted: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
}

/// Run the full pipeline (simplify → if-convert → LVN → DCE) to a fixpoint
/// with the default configuration.
pub fn optimize(p: &TacProgram) -> (TacProgram, OptStats) {
    optimize_with(p, OptConfig::default())
}

/// Run the pipeline with an explicit configuration.
pub fn optimize_with(p: &TacProgram, cfg: OptConfig) -> (TacProgram, OptStats) {
    let mut sp = parmem_obs::span("opt.optimize");
    let mut cur = p.clone();
    let mut stats = OptStats::default();
    // Each round strictly reduces instruction count or CFG size, so this
    // terminates quickly; cap as a defensive bound.
    for _ in 0..16 {
        stats.iterations += 1;
        let (a, cfg1) = {
            let mut psp = parmem_obs::span("opt.simplify_cfg");
            let (a, n) = simplify::simplify_cfg(&cur);
            psp.attr("rewrites", n);
            (a, n)
        };
        let (a, ifc1) = if cfg.if_convert {
            let mut psp = parmem_obs::span("opt.if_convert");
            let (a, n) = ifconv::if_convert(&a);
            psp.attr("converted", n);
            (a, n)
        } else {
            (a, 0)
        };
        let (b, lvn1) = {
            let mut psp = parmem_obs::span("opt.lvn");
            let (b, n) = lvn::local_value_numbering(&a);
            psp.attr("rewrites", n);
            (b, n)
        };
        let (c, dce1) = {
            let mut psp = parmem_obs::span("opt.dce");
            let (c, n) = dce::dead_code_elimination(&b);
            psp.attr("removed", n);
            (c, n)
        };
        stats.cfg_rewrites += cfg1;
        stats.diamonds_converted += ifc1;
        stats.lvn_rewrites += lvn1;
        stats.dce_removed += dce1;
        let progress = cfg1 + ifc1 + lvn1 + dce1 > 0;
        cur = c;
        if !progress {
            break;
        }
    }
    sp.attr("iterations", stats.iterations);
    parmem_obs::counter_add("opt.lvn_rewrites", stats.lvn_rewrites as u64);
    parmem_obs::counter_add("opt.dce_removed", stats.dce_removed as u64);
    parmem_obs::counter_add("opt.cfg_rewrites", stats.cfg_rewrites as u64);
    parmem_obs::counter_add("opt.diamonds_converted", stats.diamonds_converted as u64);
    (cur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::{compile, run};

    fn check(src: &str) -> (TacProgram, TacProgram, OptStats) {
        let p = compile(src).unwrap();
        let (q, stats) = optimize(&p);
        assert_eq!(
            run(&p).unwrap().output,
            run(&q).unwrap().output,
            "optimize changed semantics\nbefore:\n{}\nafter:\n{}",
            p.to_text(),
            q.to_text()
        );
        (p, q, stats)
    }

    #[test]
    fn pipeline_reaches_fixpoint_and_shrinks() {
        let (p, q, stats) = check(
            "program t; var a, b, c, d, x: int;
             begin
               a := 2; b := a + a; c := b * b; d := c - c;
               if d = 0 then x := b; else x := c;
               print x;
             end.",
        );
        assert!(q.instr_count() < p.instr_count());
        assert!(stats.iterations >= 2);
        // d = 0 folds → branch folds → single path.
        assert!(q.blocks.len() < p.blocks.len());
    }

    #[test]
    fn benchmarks_survive_optimization() {
        // The six real benchmarks: identical output, never larger.
        for b in [
            // inline small subset here to keep this crate independent of
            // `workloads` (full checks live in the workspace tests)
            "program s; var i, s: int;
             begin s := 0; for i := 1 to 50 do s := s + i * i; print s; end.",
            "program f; var a: array[16] of real; i: int; x: real;
             begin
               for i := 0 to 15 do a[i] := itor(i) * 0.5;
               x := 0.0;
               for i := 0 to 15 do x := x + a[i] * a[i];
               print x;
             end.",
        ] {
            let (p, q, _) = check(b);
            assert!(q.instr_count() <= p.instr_count());
        }
    }

    #[test]
    fn idempotent_second_run() {
        let src = "program t; var x, y: int;
             begin x := 3 * 7; y := x + x; print y; end.";
        let p = compile(src).unwrap();
        let (q, _) = optimize(&p);
        let (r, stats2) = optimize(&q);
        assert_eq!(q, r);
        assert_eq!(stats2.dce_removed, 0);
        assert_eq!(stats2.lvn_rewrites, 0);
    }

    #[test]
    fn while_false_vanishes() {
        let (_, q, _) = check(
            "program t; var x: int;
             begin x := 5; while false do x := 0; print x; end.",
        );
        assert_eq!(q.blocks.len(), 1, "{}", q.to_text());
        // Constant propagation reaches the print: `print 5` is all that's left.
        assert_eq!(q.instr_count(), 1, "{}", q.to_text());
    }
}
