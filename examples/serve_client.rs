//! A raw-`TcpStream` client for the `parmem serve` daemon: no HTTP
//! library, just the protocol as `DESIGN.md` documents it. Starts the
//! daemon in-process on an ephemeral port, submits a 10^4-value synthetic
//! assign workload twice (the repeat is a cache hit replayed
//! byte-for-byte), revalidates with `If-None-Match` (304), reads the
//! daemon's own accounting from `/v1/stats`, and drains it. Run with:
//!
//! ```text
//! cargo run --example serve_client
//! ```
//!
//! Against an external daemon the same bytes go over the wire — swap the
//! in-process `Daemon::start` for the address `parmem serve` printed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use parallel_memories::serve::{Daemon, ServeConfig};

/// One HTTP/1.1 exchange, by hand: write the request head + JSON body,
/// read to EOF (the daemon closes every connection), split head from body.
fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra: &str,
) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: parmem\r\n{extra}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, payload) = response.split_once("\r\n\r\n").expect("malformed response");
    (head.to_string(), payload.to_string())
}

fn header(head: &str, name: &str) -> String {
    head.lines()
        .find_map(|l| l.strip_prefix(&format!("{name}: ")))
        .unwrap_or("-")
        .to_string()
}

fn main() {
    let daemon = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = daemon.local_addr();
    println!("daemon listening on {addr}");

    // The EXPERIMENTS.md walkthrough workload: 10^4 values, 8 components,
    // planted cliques, k = 8 — the same spec `parmem synth -n 10000` runs.
    let request = r#"{"synth":{"values":10000,"edges":40000,"components":8,"cliques":40,"clique_size":16},"k":8,"seed":7}"#;

    let (head, body) = exchange(addr, "POST", "/v1/assign", request, "");
    println!(
        "first submission:  {} ({} bytes, cache {})",
        head.lines().next().unwrap_or("-"),
        body.len(),
        header(&head, "X-Parmem-Cache"),
    );
    println!("  {body}");
    let etag = header(&head, "ETag");

    let (head2, body2) = exchange(addr, "POST", "/v1/assign", request, "");
    println!(
        "repeat:            {} (cache {})",
        head2.lines().next().unwrap_or("-"),
        header(&head2, "X-Parmem-Cache"),
    );
    assert_eq!(body, body2, "cached replay must be byte-identical");

    // Conditional revalidation: the daemon answers 304 with no body when
    // the client already holds the current bytes.
    let (head3, body3) = exchange(
        addr,
        "POST",
        "/v1/assign",
        request,
        &format!("If-None-Match: {etag}\r\n"),
    );
    println!(
        "revalidation:      {} ({} body bytes)",
        head3.lines().next().unwrap_or("-"),
        body3.len()
    );

    let (_, stats) = exchange(addr, "GET", "/v1/stats", "", "");
    println!("stats: {stats}");

    let (head4, _) = exchange(addr, "POST", "/v1/shutdown", "", "");
    println!("shutdown: {}", head4.lines().next().unwrap_or("-"));
    daemon.wait();
    println!("daemon drained cleanly");
}
