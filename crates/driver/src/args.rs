//! Shared command-line parsing for the `parmem` CLI.
//!
//! Every subcommand used to re-scan its raw argument list with ad-hoc
//! `flag`/`opt_value` helpers, silently ignoring anything it did not
//! recognise. [`CommonArgs::parse`] replaces those copies: a subcommand
//! declares its boolean flags and value-taking options once, unknown
//! options are rejected with an error that lists what *is* accepted, and
//! the uniform profiling options (`--profile`, `--trace-out`,
//! `--trace-summary`) are accepted everywhere without per-command plumbing.
//!
//! The module also hosts the option → pipeline-config builders
//! ([`compile_options`], [`assign_params`], [`strategy`], [`k_list`],
//! [`exact_config`], [`resolve_program`]) that were previously duplicated
//! across subcommands.

use parmem_core::assignment::{AssignParams, DuplicationStrategy};
use parmem_core::strategies::Strategy;
use rliw_sim::pipeline::CompileOptions;

/// Boolean flags every subcommand accepts (profiling plumbing).
const COMMON_FLAGS: &[&str] = &["--profile"];
/// Value options every subcommand accepts (profiling plumbing).
const COMMON_VALUES: &[&str] = &["--trace-out", "--trace-summary"];

/// A parsed argument list: recognised flags, option values, and positional
/// arguments, with everything unrecognised already rejected.
#[derive(Clone, Debug, Default)]
pub struct CommonArgs {
    flags: Vec<String>,
    values: Vec<(String, String)>,
    positionals: Vec<String>,
}

impl CommonArgs {
    /// Parse `raw` for subcommand `cmd`, accepting exactly `flags` (boolean)
    /// and `value_opts` (consume the next argument) plus the common
    /// profiling options. Unknown `-`/`--` arguments and missing option
    /// values are errors; `--k` is normalised to `-k`.
    pub fn parse(
        cmd: &str,
        raw: &[String],
        flags: &[&str],
        value_opts: &[&str],
    ) -> Result<CommonArgs, String> {
        let known_flag = |a: &str| flags.contains(&a) || COMMON_FLAGS.contains(&a);
        // `--k` is a spelling of `-k`, accepted only where the subcommand
        // declares `-k` — it must not sneak past the unknown-option check on
        // subcommands that take no module count.
        let known_value = |a: &str| {
            value_opts.contains(&a)
                || COMMON_VALUES.contains(&a)
                || (a == "--k" && value_opts.contains(&"-k"))
        };
        let mut out = CommonArgs::default();
        let mut i = 0;
        while i < raw.len() {
            let a = raw[i].as_str();
            let canonical = if a == "--k" { "-k" } else { a };
            if known_value(a) {
                let v = raw
                    .get(i + 1)
                    .ok_or_else(|| format!("`parmem {cmd}`: option `{a}` requires a value"))?;
                out.values.push((canonical.to_string(), v.clone()));
                i += 2;
                continue;
            }
            if known_flag(a) {
                out.flags.push(canonical.to_string());
            } else if a.starts_with('-') {
                let mut valid: Vec<&str> = flags
                    .iter()
                    .chain(value_opts)
                    .chain(COMMON_FLAGS)
                    .chain(COMMON_VALUES)
                    .copied()
                    .collect();
                valid.sort_unstable();
                return Err(format!(
                    "`parmem {cmd}`: unknown option `{a}` (accepted: {})",
                    valid.join(", ")
                ));
            } else {
                out.positionals.push(a.to_string());
            }
            i += 1;
        }
        Ok(out)
    }

    /// Whether the boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The (last) value of a value option, verbatim.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of an option parsed as `T`; a value that does not parse is
    /// an error naming the option (the old scanners silently dropped it).
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("option `{name}` has invalid value `{v}`")),
        }
    }

    /// Positional (non-option) arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The input-file positional: the first one that is not a bare number.
    pub fn file_arg(&self) -> Result<String, String> {
        self.positionals
            .iter()
            .find(|a| a.parse::<f64>().is_err())
            .cloned()
            .ok_or_else(|| "missing input file".to_string())
    }

    /// The first positional (workload name or file path).
    pub fn target_arg(&self) -> Result<String, String> {
        self.positionals
            .first()
            .cloned()
            .ok_or_else(|| "missing workload name or MiniLang file".to_string())
    }
}

/// Front-end options from the uniform `--unroll <factor>` / `--no-opt`
/// flags.
pub fn compile_options(a: &CommonArgs) -> Result<CompileOptions, String> {
    Ok(CompileOptions {
        unroll: a
            .parsed::<usize>("--unroll")?
            .map(|factor| liw_ir::unroll::UnrollConfig {
                factor,
                max_body_stmts: 16,
            }),
        optimize: !a.flag("--no-opt"),
        rename: true,
    })
}

/// Assignment parameters from the uniform `--backtrack` / `--no-atoms`
/// flags.
pub fn assign_params(a: &CommonArgs) -> AssignParams {
    AssignParams {
        duplication: if a.flag("--backtrack") {
            DuplicationStrategy::Backtrack
        } else {
            DuplicationStrategy::HittingSet
        },
        use_atoms: !a.flag("--no-atoms"),
        ..AssignParams::default()
    }
}

/// Parse `--array-policy` (`interleaved|hash|block|auto`); `None` when
/// absent — the scalar-only pipeline, byte-identical to before the layout
/// work.
pub fn array_policy(a: &CommonArgs) -> Result<Option<parmem_core::layout::ArrayPolicy>, String> {
    match a.value("--array-policy") {
        None => Ok(None),
        Some(v) => parmem_core::layout::ArrayPolicy::parse(v)
            .map(Some)
            .ok_or_else(|| format!("bad --array-policy `{v}` (interleaved|hash|block|auto)")),
    }
}

/// Parse `--stor` through the strategy registry (flags `1|2|3|exact` and
/// names `STOR1|STOR2|STOR3|EXACT`); defaults to STOR1 when absent.
pub fn strategy(a: &CommonArgs) -> Result<Strategy, String> {
    match a.value("--stor") {
        None => Ok(Strategy::Stor1),
        Some(v) => Strategy::parse(v)
            .ok_or_else(|| format!("bad --stor `{v}` (1|2|3|exact, or all in batch)")),
    }
}

/// Parse the `-k` module-count list (`2,4,8` style); `default` when absent.
pub fn k_list(a: &CommonArgs, default: &[usize]) -> Result<Vec<usize>, String> {
    match a.value("-k") {
        None => Ok(default.to_vec()),
        Some(list) => list
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| format!("bad -k list `{list}` (expected e.g. 2,4)")),
    }
}

/// Exact-solver budget/portfolio configuration from the uniform flags.
pub fn exact_config(a: &CommonArgs) -> Result<parmem_exact::ExactConfig, String> {
    let mut cfg = parmem_exact::ExactConfig::default();
    if let Some(n) = a.parsed("--budget-nodes")? {
        cfg.budget_nodes = n;
    }
    if let Some(ms) = a.parsed("--budget-ms")? {
        cfg.budget_ms = ms;
    }
    if a.flag("--no-portfolio") {
        cfg.portfolio = false;
    }
    if let Some(seed) = a.parsed("--seed")? {
        cfg.seed = seed;
    }
    Ok(cfg)
}

/// Resolve a positional target as a workload name first, a MiniLang source
/// file second.
pub fn resolve_program(target: &str) -> Result<(String, String), String> {
    match workloads::by_name(target) {
        Some(b) => Ok((b.name.to_string(), b.source.to_string())),
        None => {
            let src = std::fs::read_to_string(target).map_err(|e| {
                format!("`{target}` is neither a workload nor a readable file ({e})")
            })?;
            Ok((target.to_string(), src))
        }
    }
}

/// Select benchmarks by positional names, `--all`, or the paper default.
pub fn select_benchmarks(a: &CommonArgs) -> Result<Vec<workloads::Benchmark>, String> {
    let names = a.positionals();
    if !names.is_empty() {
        names
            .iter()
            .map(|n| workloads::by_name(n).ok_or_else(|| format!("unknown workload `{n}`")))
            .collect()
    } else if a.flag("--all") {
        Ok(workloads::all_benchmarks())
    } else {
        Ok(workloads::benchmarks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_values_positionals() {
        let a = CommonArgs::parse(
            "batch",
            &argv(&["FFT", "-k", "2,4", "--timings", "--jobs", "3"]),
            &["--timings"],
            &["-k", "--jobs"],
        )
        .unwrap();
        assert!(a.flag("--timings"));
        assert!(!a.flag("--json"));
        assert_eq!(a.value("-k"), Some("2,4"));
        assert_eq!(a.parsed::<usize>("--jobs").unwrap(), Some(3));
        assert_eq!(a.positionals(), &["FFT".to_string()]);
        assert_eq!(k_list(&a, &[8]).unwrap(), vec![2, 4]);
    }

    #[test]
    fn rejects_unknown_options_helpfully() {
        let err =
            CommonArgs::parse("batch", &argv(&["--bogus"]), &["--timings"], &["-k"]).unwrap_err();
        assert!(err.contains("unknown option `--bogus`"), "{err}");
        assert!(err.contains("--timings"), "{err}");
        assert!(err.contains("--profile"), "error lists common flags: {err}");
    }

    #[test]
    fn rejects_missing_and_bad_values() {
        let err = CommonArgs::parse("exact", &argv(&["--jobs"]), &[], &["--jobs"]).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let a = CommonArgs::parse("exact", &argv(&["--jobs", "many"]), &[], &["--jobs"]).unwrap();
        let err = a.parsed::<usize>("--jobs").unwrap_err();
        assert!(err.contains("invalid value `many`"), "{err}");
    }

    #[test]
    fn normalises_double_dash_k() {
        let a = CommonArgs::parse("trace", &argv(&["--k", "4"]), &[], &["-k"]).unwrap();
        assert_eq!(a.parsed::<usize>("-k").unwrap(), Some(4));
    }

    #[test]
    fn double_dash_k_rejected_where_k_is_not_declared() {
        // `run` and `assign` declare no `-k`; `--k` must be an unknown
        // option there, not a silently swallowed value pair.
        let err = CommonArgs::parse("run", &argv(&["--k", "4"]), &[], &[]).unwrap_err();
        assert!(err.contains("unknown option `--k`"), "{err}");
        assert!(err.contains("accepted:"), "{err}");
    }

    #[test]
    fn common_profiling_options_always_accepted() {
        let a = CommonArgs::parse(
            "run",
            &argv(&["x.ml", "--profile", "--trace-out", "t.json"]),
            &[],
            &[],
        )
        .unwrap();
        assert!(a.flag("--profile"));
        assert_eq!(a.value("--trace-out"), Some("t.json"));
    }

    #[test]
    fn array_policy_parses_or_errors() {
        let a = CommonArgs::parse(
            "trace",
            &argv(&["--array-policy", "hash"]),
            &[],
            &["--array-policy"],
        )
        .unwrap();
        assert_eq!(
            array_policy(&a).unwrap(),
            Some(parmem_core::layout::ArrayPolicy::Hash)
        );
        let none = CommonArgs::parse("trace", &argv(&[]), &[], &["--array-policy"]).unwrap();
        assert_eq!(array_policy(&none).unwrap(), None);
        let bad = CommonArgs::parse(
            "trace",
            &argv(&["--array-policy", "striped"]),
            &[],
            &["--array-policy"],
        )
        .unwrap();
        let err = array_policy(&bad).unwrap_err();
        assert!(err.contains("bad --array-policy `striped`"), "{err}");
    }

    #[test]
    fn builders_map_flags_to_configs() {
        let a = CommonArgs::parse(
            "trace",
            &argv(&["--backtrack", "--no-opt", "--unroll", "2", "--stor", "3"]),
            &["--backtrack", "--no-opt"],
            &["--unroll", "--stor"],
        )
        .unwrap();
        let params = assign_params(&a);
        assert_eq!(params.duplication, DuplicationStrategy::Backtrack);
        let opts = compile_options(&a).unwrap();
        assert!(!opts.optimize);
        assert_eq!(opts.unroll.map(|u| u.factor), Some(2));
        assert_eq!(strategy(&a).unwrap(), Strategy::STOR3);
    }
}
