//! A dense fixed-capacity bit set — the workhorse domain of the powerset
//! analyses (liveness, reaching definitions, definite assignment).
//!
//! The dataflow engine only requires `Clone + PartialEq` of its domains;
//! this set exists so the common powerset lattices get word-parallel
//! `join`/`transfer` operations instead of hashing.

/// A set of small integers in `0..capacity`, stored one bit each.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// The empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The full set over the universe `0..capacity` (the ⊤ of a must
    /// analysis).
    pub fn full(capacity: usize) -> BitSet {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Universe size this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Add `i`; returns `true` if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Remove `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let had = self.words[w] & b != 0;
        self.words[w] &= !b;
        had
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// `self ∩= other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a & b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// `self −= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(99));
        assert!(s.contains(3) && s.contains(99) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(2);
        b.insert(65);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b), "idempotent");
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![65]);
        let mut d = u.clone();
        d.subtract(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn full_is_everything() {
        let f = BitSet::full(130);
        assert_eq!(f.len(), 130);
        assert!(f.contains(0) && f.contains(129));
        assert!(BitSet::new(0).is_empty());
    }
}
