//! Local value numbering: per-basic-block common-subexpression elimination,
//! constant propagation/folding, copy propagation, and store-to-load
//! forwarding. Never reorders instructions, so `print` order and array
//! semantics are preserved.

use std::collections::HashMap;

use liw_ir::tac::{
    eval_op, ArrayId, Block, Instr, OpCode, Operand, TacProgram, Terminator, Value, VarId,
};

/// A value number.
type Val = u32;

#[derive(Default)]
struct Numbering {
    next: Val,
    /// Current value held by each variable.
    var2val: HashMap<VarId, Val>,
    /// Constant represented by a value, if known.
    val2const: HashMap<Val, ConstKey>,
    const2val: HashMap<ConstKey, Val>,
    /// Expression → value (operands by value number).
    expr2val: HashMap<(OpCode, Val, Option<Val>), Val>,
    /// A variable currently holding each value (validated before reuse).
    val2home: HashMap<Val, VarId>,
    /// Known array element values: (array, index value) → element value.
    array_elems: HashMap<(ArrayId, Val), Val>,
}

/// Constants as hashable keys (f64 by bits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ConstKey {
    Int(i64),
    Real(u64),
    Bool(bool),
}

impl ConstKey {
    fn of(v: Value) -> ConstKey {
        match v {
            Value::Int(i) => ConstKey::Int(i),
            Value::Real(r) => ConstKey::Real(r.to_bits()),
            Value::Bool(b) => ConstKey::Bool(b),
        }
    }

    fn value(self) -> Value {
        match self {
            ConstKey::Int(i) => Value::Int(i),
            ConstKey::Real(bits) => Value::Real(f64::from_bits(bits)),
            ConstKey::Bool(b) => Value::Bool(b),
        }
    }
}

impl Numbering {
    fn fresh(&mut self) -> Val {
        let v = self.next;
        self.next += 1;
        v
    }

    fn val_of_const(&mut self, c: Value) -> Val {
        let key = ConstKey::of(c);
        if let Some(&v) = self.const2val.get(&key) {
            return v;
        }
        let v = self.fresh();
        self.const2val.insert(key, v);
        self.val2const.insert(v, key);
        v
    }

    fn val_of_var(&mut self, var: VarId) -> Val {
        if let Some(&v) = self.var2val.get(&var) {
            return v;
        }
        let v = self.fresh();
        self.var2val.insert(var, v);
        self.val2home.insert(v, var);
        v
    }

    fn val_of_operand(&mut self, o: &Operand) -> Val {
        match o {
            Operand::Const(c) => self.val_of_const(*c),
            Operand::Var(v) => self.val_of_var(*v),
        }
    }

    /// Cheapest operand representing `val` at this point: a constant if
    /// known, else a variable that still holds it, else `fallback`.
    fn best_operand(&self, val: Val, fallback: Operand) -> Operand {
        if let Some(k) = self.val2const.get(&val) {
            return Operand::Const(k.value());
        }
        if let Some(&home) = self.val2home.get(&val) {
            if self.var2val.get(&home) == Some(&val) {
                return Operand::Var(home);
            }
        }
        fallback
    }

    /// Record that `var` now holds `val`.
    fn assign(&mut self, var: VarId, val: Val) {
        self.var2val.insert(var, val);
        // Prefer keeping an existing valid home; otherwise adopt this var.
        let home_ok = self
            .val2home
            .get(&val)
            .map(|h| self.var2val.get(h) == Some(&val))
            .unwrap_or(false);
        if !home_ok {
            self.val2home.insert(val, var);
        }
    }
}

/// Result of an algebraic simplification.
enum Simplified {
    /// The expression equals its left operand.
    Lhs,
    /// The expression equals its right operand.
    Rhs,
    /// The expression is a constant.
    Const(Value),
}

/// Bit-exact-safe algebraic identities over value numbers and constants.
fn algebraic_identity(
    op: OpCode,
    lv: Val,
    rv: Option<Val>,
    lc: Option<ConstKey>,
    rc: Option<ConstKey>,
) -> Option<Simplified> {
    use OpCode::*;
    let rv = rv?;
    let l_int = |v: i64| lc == Some(ConstKey::Int(v));
    let r_int = |v: i64| rc == Some(ConstKey::Int(v));
    let r_real = |v: f64| rc == Some(ConstKey::Real(v.to_bits()));
    let same = lv == rv;
    match op {
        Add if r_int(0) => Some(Simplified::Lhs),
        Add if l_int(0) => Some(Simplified::Rhs),
        Sub if r_int(0) => Some(Simplified::Lhs),
        Sub if same => Some(Simplified::Const(Value::Int(0))),
        Mul if r_int(1) => Some(Simplified::Lhs),
        Mul if l_int(1) => Some(Simplified::Rhs),
        Mul if r_int(0) || l_int(0) => Some(Simplified::Const(Value::Int(0))),
        IDiv if r_int(1) => Some(Simplified::Lhs),
        Mod if r_int(1) => Some(Simplified::Const(Value::Int(0))),
        // Real identities that preserve NaN/∞ behaviour (x·1.0 and x±0.0 are
        // exact up to the sign of zero, which Value's equality ignores;
        // x·0.0 and x−x are NOT safe for NaN/∞ and are left alone).
        FAdd if r_real(0.0) => Some(Simplified::Lhs),
        FAdd if lc == Some(ConstKey::Real(0.0f64.to_bits())) => Some(Simplified::Rhs),
        FSub if r_real(0.0) => Some(Simplified::Lhs),
        FMul if r_real(1.0) => Some(Simplified::Lhs),
        FMul if lc == Some(ConstKey::Real(1.0f64.to_bits())) => Some(Simplified::Rhs),
        FDiv if r_real(1.0) => Some(Simplified::Lhs),
        // Integer comparisons on identical values.
        Eq | Le | Ge if same => Some(Simplified::Const(Value::Bool(true))),
        Ne | Lt | Gt if same => Some(Simplified::Const(Value::Bool(false))),
        // Logical identities.
        And | Or if same => Some(Simplified::Lhs),
        And if rc == Some(ConstKey::Bool(true)) => Some(Simplified::Lhs),
        And if lc == Some(ConstKey::Bool(true)) => Some(Simplified::Rhs),
        And if rc == Some(ConstKey::Bool(false)) || lc == Some(ConstKey::Bool(false)) => {
            Some(Simplified::Const(Value::Bool(false)))
        }
        Or if rc == Some(ConstKey::Bool(false)) => Some(Simplified::Lhs),
        Or if lc == Some(ConstKey::Bool(false)) => Some(Simplified::Rhs),
        Or if rc == Some(ConstKey::Bool(true)) || lc == Some(ConstKey::Bool(true)) => {
            Some(Simplified::Const(Value::Bool(true)))
        }
        _ => None,
    }
}

/// Whether an opcode commutes (operands may be canonically ordered).
fn commutative(op: OpCode) -> bool {
    use OpCode::*;
    matches!(op, Add | Mul | FAdd | FMul | Eq | Ne | FEq | FNe | And | Or)
}

/// Run LVN over every block of `p`, returning the rewritten program and the
/// number of instructions removed or simplified.
pub fn local_value_numbering(p: &TacProgram) -> (TacProgram, usize) {
    let mut out = p.clone();
    let mut changed = 0usize;

    for block in &mut out.blocks {
        let mut n = Numbering::default();
        let mut new_instrs: Vec<Instr> = Vec::with_capacity(block.instrs.len());

        for inst in &block.instrs {
            match inst {
                Instr::Compute { dest, op, lhs, rhs } => {
                    let lv = n.val_of_operand(lhs);
                    let rv = rhs.as_ref().map(|r| n.val_of_operand(r));
                    let lhs2 = n.best_operand(lv, *lhs);
                    let rhs2 = rhs
                        .as_ref()
                        .map(|r| n.best_operand(rv.expect("binary"), *r));

                    if *op == OpCode::Copy {
                        // Copy: dest takes the source's value; keep the
                        // instruction only because dest must be written for
                        // downstream blocks (DCE removes it if dead).
                        n.assign(*dest, lv);
                        new_instrs.push(Instr::Compute {
                            dest: *dest,
                            op: OpCode::Copy,
                            lhs: lhs2,
                            rhs: None,
                        });
                        continue;
                    }

                    // Algebraic identities (only bit-exact-safe ones; real
                    // arithmetic keeps NaN behaviour: x·1.0, x±0.0 are safe,
                    // x·0.0 and x−x on reals are not).
                    let lconst0 = n.val2const.get(&lv).copied();
                    let rconst0 = rv.and_then(|r| n.val2const.get(&r).copied());
                    if let Some(simpl) = algebraic_identity(*op, lv, rv, lconst0, rconst0) {
                        let (src_val, src_op) = match simpl {
                            Simplified::Lhs => (lv, lhs2),
                            Simplified::Rhs => (rv.expect("rhs"), rhs2.expect("rhs")),
                            Simplified::Const(c) => {
                                let v = n.val_of_const(c);
                                (v, Operand::Const(c))
                            }
                        };
                        n.assign(*dest, src_val);
                        new_instrs.push(Instr::Compute {
                            dest: *dest,
                            op: OpCode::Copy,
                            lhs: n.best_operand(src_val, src_op),
                            rhs: None,
                        });
                        changed += 1;
                        continue;
                    }

                    // Constant folding.
                    let lconst = n.val2const.get(&lv).copied();
                    let rconst = rv.and_then(|r| n.val2const.get(&r).copied());
                    let foldable = lconst.is_some() && (rv.is_none() || rconst.is_some());
                    if foldable {
                        let folded = eval_op(
                            *op,
                            lconst.expect("checked").value(),
                            rconst.map(|c| c.value()),
                        );
                        let fv = n.val_of_const(folded);
                        n.assign(*dest, fv);
                        new_instrs.push(Instr::Compute {
                            dest: *dest,
                            op: OpCode::Copy,
                            lhs: Operand::Const(folded),
                            rhs: None,
                        });
                        changed += 1;
                        continue;
                    }

                    // CSE lookup with canonical operand order.
                    let (ka, kb) = match (rv, commutative(*op)) {
                        (Some(r), true) if r < lv => (r, Some(lv)),
                        (r, _) => (lv, r),
                    };
                    if let Some(&known) = n.expr2val.get(&(*op, ka, kb)) {
                        let src = n.best_operand(known, Operand::Var(*dest));
                        // Only profitable if a live home or const exists.
                        if !matches!(src, Operand::Var(v) if v == *dest) {
                            n.assign(*dest, known);
                            new_instrs.push(Instr::Compute {
                                dest: *dest,
                                op: OpCode::Copy,
                                lhs: src,
                                rhs: None,
                            });
                            changed += 1;
                            continue;
                        }
                    }

                    let val = n.fresh();
                    n.expr2val.insert((*op, ka, kb), val);
                    n.assign(*dest, val);
                    new_instrs.push(Instr::Compute {
                        dest: *dest,
                        op: *op,
                        lhs: lhs2,
                        rhs: rhs2,
                    });
                }
                Instr::Load { dest, arr, index } => {
                    let iv = n.val_of_operand(index);
                    let index2 = n.best_operand(iv, *index);
                    if let Some(&known) = n.array_elems.get(&(*arr, iv)) {
                        // Store-to-load forwarding / redundant load.
                        let src = n.best_operand(known, Operand::Var(*dest));
                        if !matches!(src, Operand::Var(v) if v == *dest) {
                            n.assign(*dest, known);
                            new_instrs.push(Instr::Compute {
                                dest: *dest,
                                op: OpCode::Copy,
                                lhs: src,
                                rhs: None,
                            });
                            changed += 1;
                            continue;
                        }
                    }
                    let val = n.fresh();
                    n.array_elems.insert((*arr, iv), val);
                    n.assign(*dest, val);
                    new_instrs.push(Instr::Load {
                        dest: *dest,
                        arr: *arr,
                        index: index2,
                    });
                }
                Instr::Store { arr, index, value } => {
                    let iv = n.val_of_operand(index);
                    let vv = n.val_of_operand(value);
                    let index2 = n.best_operand(iv, *index);
                    let value2 = n.best_operand(vv, *value);
                    // A store with an unknown index may alias any element of
                    // this array; with a known (numbered) index it kills only
                    // entries whose index value *might* equal it — since two
                    // distinct value numbers can still be runtime-equal, be
                    // conservative: drop all knowledge for this array except
                    // the stored element.
                    n.array_elems.retain(|&(a, _), _| a != *arr);
                    n.array_elems.insert((*arr, iv), vv);
                    new_instrs.push(Instr::Store {
                        arr: *arr,
                        index: index2,
                        value: value2,
                    });
                }
                Instr::Print { value } => {
                    let vv = n.val_of_operand(value);
                    let value2 = n.best_operand(vv, *value);
                    new_instrs.push(Instr::Print { value: value2 });
                }
                Instr::Select {
                    cond,
                    if_true,
                    if_false,
                    dest,
                } => {
                    let cv = n.val_of_operand(cond);
                    let tv = n.val_of_operand(if_true);
                    let fv = n.val_of_operand(if_false);
                    // Fold when the condition is a known constant, or when
                    // both arms carry the same value.
                    let cconst = n.val2const.get(&cv).copied();
                    let picked = match cconst {
                        Some(k) if k.value().as_bool() => Some(tv),
                        Some(_) => Some(fv),
                        None if tv == fv => Some(tv),
                        None => None,
                    };
                    if let Some(val) = picked {
                        let fallback = if val == tv { *if_true } else { *if_false };
                        let src = n.best_operand(val, fallback);
                        n.assign(*dest, val);
                        new_instrs.push(Instr::Compute {
                            dest: *dest,
                            op: OpCode::Copy,
                            lhs: src,
                            rhs: None,
                        });
                        changed += 1;
                        continue;
                    }
                    let val = n.fresh();
                    n.assign(*dest, val);
                    new_instrs.push(Instr::Select {
                        cond: n.best_operand(cv, *cond),
                        if_true: n.best_operand(tv, *if_true),
                        if_false: n.best_operand(fv, *if_false),
                        dest: *dest,
                    });
                }
            }
        }

        // Rewrite the terminator's operand too.
        let term = match &block.term {
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                let cv = n.val_of_operand(cond);
                Terminator::Branch {
                    cond: n.best_operand(cv, *cond),
                    then_to: *then_to,
                    else_to: *else_to,
                }
            }
            other => other.clone(),
        };

        *block = Block {
            instrs: new_instrs,
            term,
        };
    }

    (out, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::{compile, run};

    fn opt(src: &str) -> (TacProgram, TacProgram) {
        let p = compile(src).unwrap();
        let (q, _) = local_value_numbering(&p);
        assert_eq!(
            run(&p).unwrap().output,
            run(&q).unwrap().output,
            "LVN changed semantics\nbefore:\n{}\nafter:\n{}",
            p.to_text(),
            q.to_text()
        );
        (p, q)
    }

    fn count_op(p: &TacProgram, op: OpCode) -> usize {
        p.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Compute { op: o, .. } if *o == op))
            .count()
    }

    #[test]
    fn cse_removes_repeated_expression() {
        let (_, q) = opt("program t; var a, b, x, y: int;
             begin a := 3; b := 4; x := a * b; y := a * b; print x + y; end.");
        // After constprop a*b folds entirely; ensure at most one Mul remains.
        assert!(count_op(&q, OpCode::Mul) <= 1, "{}", q.to_text());
    }

    #[test]
    fn cse_on_non_constant_values() {
        let (p, q) = opt("program t; var a: array[4] of int; x, y, i: int;
             begin x := a[i] * a[i]; y := a[i] * a[i]; print x + y; end.");
        // Loads of a[i] collapse to one; the second Mul collapses too.
        let loads_before = p
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        let loads_after = q
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        assert!(loads_after < loads_before, "{}", q.to_text());
        assert_eq!(count_op(&q, OpCode::Mul), 1, "{}", q.to_text());
    }

    #[test]
    fn constants_propagate_through_copies() {
        let (_, q) = opt("program t; var a, b, c: int;
             begin a := 5; b := a; c := b + 1; print c; end.");
        // c := 6 directly.
        let has_const6 = q.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i,
                Instr::Compute {
                    op: OpCode::Copy,
                    lhs: Operand::Const(Value::Int(6)),
                    ..
                }
            )
        });
        assert!(has_const6, "{}", q.to_text());
        assert_eq!(count_op(&q, OpCode::Add), 0, "{}", q.to_text());
    }

    #[test]
    fn store_to_load_forwarding() {
        let (_, q) = opt("program t; var a: array[8] of int; i, x: int;
             begin a[i] := 42; x := a[i]; print x; end.");
        let loads = q
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        assert_eq!(loads, 0, "{}", q.to_text());
    }

    #[test]
    fn store_invalidates_other_indices() {
        // Store to a[j] (unknown j) between two loads of a[i]: the second
        // load must NOT be forwarded from the first.
        let (_, q) = opt("program t; var a: array[8] of int; i, j, x, y: int;
             begin
               i := 1; j := 2;
               a[i] := 10;
               x := a[i];
               a[j] := 99;
               y := a[i];
               print x; print y;
             end.");
        // Output correctness already checked by opt(); additionally make
        // sure a load survives after the second store.
        let text = q.to_text();
        assert!(text.contains("= a["), "{text}");
    }

    #[test]
    fn commutative_cse() {
        let (_, q) = opt("program t; var a: array[2] of int; p, x, y: int;
             begin p := a[0]; x := p + 7; y := 7 + p; print x * y; end.");
        assert_eq!(count_op(&q, OpCode::Add), 1, "{}", q.to_text());
    }

    #[test]
    fn copies_collapse_chains() {
        let (_, q) = opt("program t; var a: array[2] of int; p, q1, r, s: int;
             begin p := a[0]; q1 := p; r := q1; s := r + 1; print s; end.");
        // s := p + 1 — the chain q1, r is bypassed.
        let uses_p_directly = q.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(i, Instr::Compute { op: OpCode::Add, lhs: Operand::Var(v), .. }
                     if q.var(*v).name == "p")
        });
        assert!(uses_p_directly, "{}", q.to_text());
    }

    #[test]
    fn branch_condition_is_rewritten() {
        let (_, q) = opt("program t; var x: int;
             begin if 2 > 1 then x := 1; else x := 2; print x; end.");
        // Condition folded to a constant operand in the branch.
        match &q.blocks[q.entry.index()].term {
            Terminator::Branch { cond, .. } => {
                assert!(matches!(cond, Operand::Const(Value::Bool(true))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn algebraic_identities_simplify() {
        let (_, q) = opt("program t; var a: array[4] of int; x, y, z, w: int;
             begin
               x := a[0];
               y := x + 0;
               z := x * 1;
               w := x - x;
               print y; print z; print w;
             end.");
        // y and z become copies of x; w becomes constant 0.
        assert_eq!(count_op(&q, OpCode::Add), 0, "{}", q.to_text());
        assert_eq!(count_op(&q, OpCode::Mul), 0, "{}", q.to_text());
        assert_eq!(count_op(&q, OpCode::Sub), 0, "{}", q.to_text());
    }

    #[test]
    fn mul_by_zero_is_constant() {
        let (_, q) = opt("program t; var a: array[4] of int; x, y: int;
             begin x := a[1]; y := x * 0; print y; end.");
        assert_eq!(count_op(&q, OpCode::Mul), 0, "{}", q.to_text());
    }

    #[test]
    fn real_identities_preserve_nan_semantics() {
        // x * 1.0 and x + 0.0 fold; x * 0.0 must NOT (NaN).
        let (_, q) = opt("program t; var a: array[4] of real; x, y, z, w: real;
             begin
               x := a[0];
               y := x * 1.0;
               z := x + 0.0;
               w := x * 0.0;
               print y; print z; print w;
             end.");
        assert_eq!(count_op(&q, OpCode::FAdd), 0, "{}", q.to_text());
        assert_eq!(
            count_op(&q, OpCode::FMul),
            1,
            "x*0.0 must survive: {}",
            q.to_text()
        );
    }

    #[test]
    fn comparisons_of_identical_values_fold() {
        let (_, q) = opt("program t; var a: array[4] of int; x: int; b: bool;
             begin x := a[0]; b := x = x; print b; end.");
        assert_eq!(count_op(&q, OpCode::Eq), 0, "{}", q.to_text());
    }

    #[test]
    fn logical_identities() {
        let (_, q) = opt("program t; var a: array[2] of int; b, c: bool;
             begin
               b := a[0] > 0;
               c := b and true;
               c := c or false;
               print c;
             end.");
        assert_eq!(count_op(&q, OpCode::And), 0, "{}", q.to_text());
        assert_eq!(count_op(&q, OpCode::Or), 0, "{}", q.to_text());
    }

    #[test]
    fn print_order_is_preserved() {
        let (p, q) = opt("program t; var a: array[2] of int; x: int;
             begin x := a[0]; print x; print x + 1; print x; end.");
        assert_eq!(run(&p).unwrap().output, run(&q).unwrap().output);
    }
}
