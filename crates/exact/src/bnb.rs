//! Branch-and-bound search for the minimum-residual single-copy assignment
//! of one connected component.
//!
//! Vertices are branched in a static order (degree descending, id
//! ascending); each node assigns the next vertex one module. Two prunes keep
//! the tree small:
//!
//! * **cost bound** — the partial residual only grows, so any node whose
//!   cost already reaches the incumbent is cut;
//! * **symmetry breaking** — module names are interchangeable, so the next
//!   vertex may only use modules `0 ..= used + 1` (the first vertex always
//!   takes module 0, the second at most module 1, and so on), collapsing the
//!   `k!` relabelings of every solution to one representative.
//!
//! The residual is maintained incrementally: each instruction carries the
//! search depth at which it first became conflicting (or `-1`), so undoing a
//! placement is a sweep over the vertex's instructions.

use crate::instance::{Instance, NONE};

/// Shared node/time budget across all components of one solve.
pub(crate) struct Budget {
    pub nodes_left: u64,
    pub deadline: Option<std::time::Instant>,
    pub exhausted: bool,
    check: u32,
}

impl Budget {
    pub fn new(budget_nodes: u64, budget_ms: u64) -> Budget {
        Budget {
            nodes_left: budget_nodes,
            deadline: (budget_ms > 0)
                .then(|| std::time::Instant::now() + std::time::Duration::from_millis(budget_ms)),
            exhausted: false,
            check: 0,
        }
    }

    /// Spend one node; returns false when the budget is gone.
    pub fn spend(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if self.nodes_left == 0 {
            self.exhausted = true;
            return false;
        }
        self.nodes_left -= 1;
        self.check += 1;
        if self.check >= 4096 {
            self.check = 0;
            if let Some(d) = self.deadline {
                if std::time::Instant::now() >= d {
                    self.exhausted = true;
                    return false;
                }
            }
        }
        true
    }
}

/// What one component's search produced.
pub(crate) struct ComponentSearch {
    /// Best residual found for this component.
    pub best: usize,
    /// Whether the search ran to completion (best == component optimum).
    pub optimal: bool,
    /// Colors of the component's vertices in `order` order.
    pub best_colors: Vec<u8>,
    /// Static branch order (degree desc, id asc).
    pub order: Vec<u32>,
    pub nodes: u64,
    pub tightened: u64,
}

pub(crate) struct Searcher<'a> {
    inst: &'a Instance,
    order: Vec<u32>,
    /// Vertex -> color, NONE when unassigned (global index space).
    color: Vec<u8>,
    /// Instruction -> depth that made it conflict, -1 when conflict-free.
    bad_depth: Vec<i32>,
    cost: usize,
    best: usize,
    best_colors: Vec<u8>,
    nodes: u64,
    tightened: u64,
    /// When collecting equal-cost optima (copy-minimization phase):
    collect: Vec<Vec<u8>>,
    collect_cap: usize,
}

impl<'a> Searcher<'a> {
    /// `seed[v]` is the seed module of global vertex `v` (only the entries
    /// for `comp`'s vertices are read); its residual `seed_cost` seeds the
    /// incumbent.
    pub fn new(inst: &'a Instance, comp: &[u32], seed: &[u8], seed_cost: usize) -> Self {
        let mut order: Vec<u32> = comp.to_vec();
        order.sort_by_key(|&v| (std::cmp::Reverse(inst.graph.degree(v)), v));
        let best_colors = order.iter().map(|&v| seed[v as usize]).collect();
        Searcher {
            inst,
            order,
            color: vec![NONE; inst.n],
            bad_depth: vec![-1; inst.view.len()],
            cost: 0,
            best: seed_cost,
            best_colors,
            nodes: 0,
            tightened: 0,
            collect: Vec::new(),
            collect_cap: 0,
        }
    }

    fn place(&mut self, v: u32, m: u8, depth: i32) {
        self.color[v as usize] = m;
        for &i in self.inst.view.instructions_of(v) {
            if self.bad_depth[i as usize] >= 0 {
                continue;
            }
            let conflicts = self
                .inst
                .view
                .operands(i)
                .iter()
                .any(|&u| u != v && self.color[u as usize] == m);
            if conflicts {
                self.bad_depth[i as usize] = depth;
                self.cost += 1;
            }
        }
    }

    fn unplace(&mut self, v: u32, depth: i32) {
        self.color[v as usize] = NONE;
        for &i in self.inst.view.instructions_of(v) {
            if self.bad_depth[i as usize] == depth {
                self.bad_depth[i as usize] = -1;
                self.cost -= 1;
            }
        }
    }

    /// Phase 1: prove the component optimum. Returns true when the search
    /// completed (no budget cut anywhere in the tree).
    fn dfs(&mut self, depth: usize, used: usize, budget: &mut Budget) -> bool {
        if depth == self.order.len() {
            if self.cost < self.best {
                self.best = self.cost;
                self.best_colors = self.order.iter().map(|&v| self.color[v as usize]).collect();
                self.tightened += 1;
            }
            return true;
        }
        if self.cost >= self.best {
            return true; // cut: nothing better below
        }
        let v = self.order[depth];
        let limit = used.min(self.inst.k - 1);
        let mut complete = true;
        for m in 0..=limit {
            if !budget.spend() {
                return false;
            }
            self.nodes += 1;
            self.place(v, m as u8, depth as i32);
            let next_used = used.max(m + 1);
            if !self.dfs(depth + 1, next_used, budget) {
                complete = false;
            }
            self.unplace(v, depth as i32);
            if budget.exhausted {
                return false;
            }
        }
        complete
    }

    /// Phase 2: enumerate up to `cap` distinct colorings achieving exactly
    /// `self.best` (called only after phase 1 proved the optimum).
    fn dfs_collect(&mut self, depth: usize, used: usize, budget: &mut Budget) {
        if self.collect.len() >= self.collect_cap {
            return;
        }
        if depth == self.order.len() {
            if self.cost == self.best {
                self.collect
                    .push(self.order.iter().map(|&v| self.color[v as usize]).collect());
            }
            return;
        }
        if self.cost > self.best {
            return;
        }
        let v = self.order[depth];
        let limit = used.min(self.inst.k - 1);
        for m in 0..=limit {
            if !budget.spend() {
                return;
            }
            self.nodes += 1;
            self.place(v, m as u8, depth as i32);
            self.dfs_collect(depth + 1, used.max(m + 1), budget);
            self.unplace(v, depth as i32);
            if budget.exhausted || self.collect.len() >= self.collect_cap {
                return;
            }
        }
    }

    /// Run phase 1 and return the component result.
    pub fn run(mut self, budget: &mut Budget) -> ComponentSearch {
        let complete = self.dfs(0, 0, budget);
        ComponentSearch {
            best: self.best,
            optimal: complete,
            best_colors: self.best_colors,
            order: self.order,
            nodes: self.nodes,
            tightened: self.tightened,
        }
    }

    /// Run phase 2 (equal-cost enumeration) and return up to `cap`
    /// colorings in `order` order, each achieving `optimum`.
    pub fn collect_optima(
        mut self,
        optimum: usize,
        cap: usize,
        budget: &mut Budget,
    ) -> (Vec<Vec<u8>>, u64) {
        self.best = optimum;
        self.collect_cap = cap;
        self.dfs_collect(0, 0, budget);
        (self.collect, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmem_core::types::AccessTrace;

    fn search(trace: &AccessTrace, nodes: u64) -> ComponentSearch {
        let inst = Instance::build(trace);
        let comp: Vec<u32> = (0..inst.n as u32).collect();
        // Seed: everything in module 0 (worst case).
        let seed = vec![0u8; inst.n];
        let seed_cost = inst.view.len();
        let mut budget = Budget::new(nodes, 0);
        Searcher::new(&inst, &comp, &seed, seed_cost).run(&mut budget)
    }

    #[test]
    fn triangle_on_two_modules_has_residual_one() {
        let trace = AccessTrace::from_lists(2, &[&[0, 1], &[1, 2], &[0, 2]]);
        let r = search(&trace, 100_000);
        assert!(r.optimal);
        assert_eq!(r.best, 1);
    }

    #[test]
    fn bipartite_on_two_modules_is_conflict_free() {
        let trace = AccessTrace::from_lists(2, &[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let r = search(&trace, 100_000);
        assert!(r.optimal);
        assert_eq!(r.best, 0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let lists: Vec<Vec<u32>> = (0..14u32)
            .flat_map(|i| (i + 1..14).map(move |j| vec![i, j]))
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let trace = AccessTrace::from_lists(4, &refs);
        let r = search(&trace, 3);
        assert!(!r.optimal);
    }

    #[test]
    fn collect_finds_all_two_colorings_of_an_edge() {
        let trace = AccessTrace::from_lists(2, &[&[0, 1]]);
        let inst = Instance::build(&trace);
        let comp = [0u32, 1];
        let mut budget = Budget::new(1000, 0);
        let s = Searcher::new(&inst, &comp, &[0, 1], 0);
        let (optima, _) = s.collect_optima(0, 8, &mut budget);
        // Symmetry breaking leaves exactly one representative: v0=0, v1=1.
        assert_eq!(optima.len(), 1);
        assert_eq!(optima[0], vec![0, 1]);
    }
}
