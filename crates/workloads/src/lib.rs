#![warn(missing_docs)]

//! # workloads
//!
//! The six benchmark programs of Gupta & Soffa (PPOPP '88 §3), rewritten in
//! MiniLang: Taylor coefficients for complex (TAYLOR1) and real (TAYLOR2)
//! analytic functions, a residue-arithmetic linear solver (EXACT), a
//! radix-2 FFT (FFT), iterative quicksort (SORT), and the paper's own
//! greedy graph-coloring algorithm (COLOR).
//!
//! Every program is validated against an independent Rust reference
//! implementation; the integration tests additionally check that the
//! scheduled RLIW execution reproduces the reference output exactly.

pub mod color;
pub mod exact;
pub mod extended;
pub mod fft;
pub mod sort;
pub mod taylor1;
pub mod taylor2;

/// One named benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Display name (paper's Table 1 spelling).
    pub name: &'static str,
    /// MiniLang source text.
    pub source: &'static str,
}

/// All six benchmarks in the paper's Table 1 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "TAYLOR1",
            source: taylor1::SRC,
        },
        Benchmark {
            name: "TAYLOR2",
            source: taylor2::SRC,
        },
        Benchmark {
            name: "EXACT",
            source: exact::SRC,
        },
        Benchmark {
            name: "FFT",
            source: fft::SRC,
        },
        Benchmark {
            name: "SORT",
            source: sort::SRC,
        },
        Benchmark {
            name: "COLOR",
            source: color::SRC,
        },
    ]
}

/// The six paper benchmarks plus the extended kernels (MATMUL, STENCIL,
/// HIST).
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = benchmarks();
    v.extend(extended::extended());
    v
}

/// Look a benchmark up by (case-insensitive) name, searching the extended
/// set too.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_compile() {
        for b in benchmarks() {
            liw_ir::compile(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn all_benchmarks_run_and_produce_output() {
        for b in benchmarks() {
            let r = liw_ir::run_source(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!r.output.is_empty(), "{} printed nothing", b.name);
            assert!(r.steps > 100, "{} is trivially small", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("fft").unwrap().name, "FFT");
        assert!(by_name("nope").is_none());
        assert_eq!(benchmarks().len(), 6);
    }
}
