//! Extended workloads beyond the paper's six benchmarks — scientific
//! kernels in the same spirit, used to widen the evaluation sweeps.
//! Each is validated against a Rust reference like the originals.

/// MATMUL — dense 8×8 integer matrix multiply.
pub const MATMUL: &str = r#"
program matmul;
var
  a: array[64] of int;
  b: array[64] of int;
  c: array[64] of int;
  n, i, j, kk, s: int;
begin
  n := 8;
  for i := 0 to n - 1 do begin
    for j := 0 to n - 1 do begin
      a[i * n + j] := (i * 3 + j * 5 + 1) mod 17;
      b[i * n + j] := (i * 7 + j * 2 + 3) mod 13;
    end;
  end;
  for i := 0 to n - 1 do begin
    for j := 0 to n - 1 do begin
      s := 0;
      for kk := 0 to n - 1 do
        s := s + a[i * n + kk] * b[kk * n + j];
      c[i * n + j] := s;
    end;
  end;
  for i := 0 to n * n - 1 do print c[i];
end.
"#;

/// Rust reference for MATMUL.
pub fn matmul_expected() -> Vec<i64> {
    let n = 8usize;
    let mut a = vec![0i64; n * n];
    let mut b = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((i * 3 + j * 5 + 1) % 17) as i64;
            b[i * n + j] = ((i * 7 + j * 2 + 3) % 13) as i64;
        }
    }
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
        }
    }
    c
}

/// STENCIL — 1-D Jacobi relaxation, 20 sweeps over 64 points.
pub const STENCIL: &str = r#"
program stencil;
var
  u: array[64] of real;
  v: array[64] of real;
  n, i, t: int;
begin
  n := 64;
  for i := 0 to n - 1 do
    u[i] := sin(itor(i) * 0.2);
  for t := 1 to 20 do begin
    for i := 1 to n - 2 do
      v[i] := (u[i - 1] + u[i] + u[i + 1]) / 3.0;
    v[0] := u[0];
    v[n - 1] := u[n - 1];
    for i := 0 to n - 1 do
      u[i] := v[i];
  end;
  for i := 0 to n - 1 do print u[i];
end.
"#;

/// Rust reference for STENCIL.
pub fn stencil_expected() -> Vec<f64> {
    let n = 64usize;
    let mut u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
    for _ in 0..20 {
        let mut v = u.clone();
        for i in 1..n - 1 {
            v[i] = (u[i - 1] + u[i] + u[i + 1]) / 3.0;
        }
        u = v;
    }
    u
}

/// HIST — histogram of LCG samples with a final prefix-sum.
pub const HIST: &str = r#"
program hist;
var
  bins: array[16] of int;
  n, i, seed, b: int;
begin
  n := 512;
  for i := 0 to 15 do bins[i] := 0;
  seed := 99;
  for i := 1 to n do begin
    seed := (seed * 1103515245 + 12345) mod 2147483648;
    b := seed mod 16;
    bins[b] := bins[b] + 1;
  end;
  { prefix sum }
  for i := 1 to 15 do
    bins[i] := bins[i] + bins[i - 1];
  for i := 0 to 15 do print bins[i];
end.
"#;

/// Rust reference for HIST.
pub fn hist_expected() -> Vec<i64> {
    let mut bins = [0i64; 16];
    let mut seed = 99i64;
    for _ in 0..512 {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        bins[(seed % 16) as usize] += 1;
    }
    for i in 1..16 {
        bins[i] += bins[i - 1];
    }
    bins.to_vec()
}

/// LIVERMORE — Livermore loop 1 (hydro fragment):
/// `x[i] = q + y[i]*(r*z[i+10] + t*z[i+11])`.
pub const LIVERMORE: &str = r#"
program livermore;
var
  x: array[64] of real;
  y: array[64] of real;
  z: array[80] of real;
  n, i: int;
  q, r, t: real;
begin
  n := 64;
  q := 0.5;
  r := 2.0;
  t := 0.25;
  for i := 0 to n + 10 do
    z[i] := itor(i) * 0.1;
  for i := 0 to n - 1 do
    y[i] := sin(itor(i) * 0.3);
  for i := 0 to n - 1 do
    x[i] := q + y[i] * (r * z[i + 10] + t * z[i + 11]);
  for i := 0 to n - 1 do print x[i];
end.
"#;

/// Rust reference for LIVERMORE.
pub fn livermore_expected() -> Vec<f64> {
    let n = 64usize;
    let (q, r, t) = (0.5f64, 2.0f64, 0.25f64);
    let z: Vec<f64> = (0..=n + 10).map(|i| i as f64 * 0.1).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    (0..n)
        .map(|i| q + y[i] * (r * z[i + 10] + t * z[i + 11]))
        .collect()
}

/// SYNTH — synthetic conflict-heavy scalar kernel: four wide products over
/// eight live scalars per iteration, so long words co-fetch many distinct
/// values and the conflict graph is dense.
pub const SYNTH: &str = r#"
program synth;
var
  a, b, c, d, e, f, g, h, i, s, t, u, v, w: int;
begin
  a := 3; b := 5; c := 7; d := 11;
  e := 13; f := 17; g := 19; h := 23;
  s := 0; t := 0; u := 0; v := 0; w := 0;
  for i := 1 to 12 do begin
    t := a * b + c * d;
    u := e * f + g * h;
    v := a * e + b * f;
    w := c * g + d * h;
    s := s + t + u + v + w;
    a := a + 1; c := c + 2; e := e + 3; g := g + 4;
  end;
  print s; print t; print u; print v; print w;
end.
"#;

/// Rust reference for SYNTH.
pub fn synth_expected() -> Vec<i64> {
    let (mut a, b, mut c, d) = (3i64, 5i64, 7i64, 11i64);
    let (mut e, f, mut g, h) = (13i64, 17i64, 19i64, 23i64);
    let (mut s, mut t, mut u, mut v, mut w) = (0i64, 0, 0, 0, 0);
    for _ in 1..=12 {
        t = a * b + c * d;
        u = e * f + g * h;
        v = a * e + b * f;
        w = c * g + d * h;
        s = s + t + u + v + w;
        a += 1;
        c += 2;
        e += 3;
        g += 4;
    }
    vec![s, t, u, v, w]
}

/// The extended benchmark list.
pub fn extended() -> Vec<crate::Benchmark> {
    vec![
        crate::Benchmark {
            name: "MATMUL",
            source: MATMUL,
        },
        crate::Benchmark {
            name: "STENCIL",
            source: STENCIL,
        },
        crate::Benchmark {
            name: "HIST",
            source: HIST,
        },
        crate::Benchmark {
            name: "LIVERMORE",
            source: LIVERMORE,
        },
        crate::Benchmark {
            name: "SYNTH",
            source: SYNTH,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::Value;

    #[test]
    fn matmul_matches_reference() {
        let out = liw_ir::run_source(MATMUL).unwrap().output;
        let exp = matmul_expected();
        assert_eq!(out.len(), exp.len());
        for (g, w) in out.iter().zip(&exp) {
            assert_eq!(*g, Value::Int(*w));
        }
    }

    #[test]
    fn stencil_matches_reference() {
        let out = liw_ir::run_source(STENCIL).unwrap().output;
        let exp = stencil_expected();
        assert_eq!(out.len(), exp.len());
        for (g, w) in out.iter().zip(&exp) {
            match g {
                Value::Real(v) => assert!((v - w).abs() < 1e-9, "{v} vs {w}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn hist_matches_reference() {
        let out = liw_ir::run_source(HIST).unwrap().output;
        let exp = hist_expected();
        for (g, w) in out.iter().zip(&exp) {
            assert_eq!(*g, Value::Int(*w));
        }
        // The prefix sum must end at the sample count.
        assert_eq!(out.last(), Some(&Value::Int(512)));
    }

    #[test]
    fn livermore_matches_reference() {
        let out = liw_ir::run_source(LIVERMORE).unwrap().output;
        let exp = livermore_expected();
        assert_eq!(out.len(), exp.len());
        for (g, w) in out.iter().zip(&exp) {
            match g {
                Value::Real(v) => assert!((v - w).abs() < 1e-9, "{v} vs {w}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn synth_matches_reference() {
        let out = liw_ir::run_source(SYNTH).unwrap().output;
        let exp = synth_expected();
        assert_eq!(out.len(), exp.len());
        for (g, w) in out.iter().zip(&exp) {
            assert_eq!(*g, Value::Int(*w));
        }
    }

    #[test]
    fn extended_list_is_complete() {
        let e = extended();
        assert_eq!(e.len(), 5);
        for b in e {
            liw_ir::compile(b.source).unwrap_or_else(|err| panic!("{}: {err}", b.name));
        }
    }
}
