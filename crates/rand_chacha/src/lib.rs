#![warn(missing_docs)]

//! Vendored [`ChaCha8Rng`]: a real 8-round ChaCha block cipher used as a
//! deterministic, seedable PRNG, implementing this workspace's [`rand`]
//! traits. The registry is unreachable in this build environment, so the
//! upstream `rand_chacha` crate is replaced by this minimal equivalent;
//! callers only rely on determinism per seed, which ChaCha8 provides with
//! high-quality statistical behavior.

use rand::{RngCore, SeedableRng, SplitMix64};

/// A ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit
    /// nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Build from a full 256-bit key (eight little-endian words).
    pub fn from_key(key: [u32; 8]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&key);
        // counter = 0, nonce = 0.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, st)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *b = w.wrapping_add(*st);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> ChaCha8Rng {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the
        // same construction upstream rand uses for seed_from_u64.
        let mut sm = SplitMix64::new(state);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = sm.next_u64();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let differs = (0..100).any(|_| a.next_u64() != c.next_u64());
        assert!(differs);
    }

    #[test]
    fn words_are_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "{buckets:?}");
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
