//! Batch run reports: deterministic text/JSON/CSV rendering plus the golden
//! snapshot format.
//!
//! Everything rendered with `include_timings == false` is a pure function of
//! the job results in job order — byte-identical across worker counts and
//! runs. Wall times, allocation counts, and the worker count only appear
//! when timings are explicitly requested (they necessarily differ run to
//! run).

use std::fmt::Write as _;

use parmem_verify::BatchSummary;

use crate::job::{JobError, JobResult};

/// The outcome of one batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job results, in submission order (independent of scheduling).
    pub results: Vec<JobResult>,
    /// Wall time of the whole batch, nanoseconds (non-deterministic; only
    /// rendered with timings).
    pub wall_ns: u64,
    /// Worker threads used (ditto).
    pub workers: usize,
}

impl BatchReport {
    /// Jobs that succeeded.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Jobs that failed (any structured error except skips).
    pub fn failed_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(&r.outcome, Err(e) if !matches!(e, JobError::Skipped)))
            .count()
    }

    /// Jobs cancelled by fail-fast.
    pub fn skipped_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(&r.outcome, Err(JobError::Skipped)))
            .count()
    }

    /// True if every job succeeded.
    pub fn is_clean(&self) -> bool {
        self.ok_count() == self.results.len()
    }

    /// Fold every job's verifier findings into one [`BatchSummary`] —
    /// successful jobs contribute their clean reports, verify-failed jobs
    /// their violation lists.
    pub fn verify_summary(&self) -> BatchSummary {
        let mut s = BatchSummary::default();
        for r in &self.results {
            match &r.outcome {
                Ok(out) => s.add(&job_label(r), &out.verify),
                Err(JobError::Verify { report }) => s.add(&job_label(r), report),
                Err(_) => {}
            }
        }
        s
    }

    /// Deterministic human-readable report (no timings).
    pub fn format_text(&self) -> String {
        self.format_text_with(false)
    }

    /// Human-readable report; with `include_timings`, a per-stage aggregate
    /// table is appended. Its rows iterate [`StageKind::ALL`]
    /// (pipeline order), never a hash-map order, so two runs of the same
    /// batch differ only in the measured numbers — the row set and order
    /// are stable and diffable.
    ///
    /// [`StageKind::ALL`]: crate::metrics::StageKind::ALL
    pub fn format_text_with(&self, include_timings: bool) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<10} {:>2} {:<5} | {:>8} {:>12} {:>8} {:>8} {:>8} | {:>6} {:>5} {:>8} | {:<6}",
            "program",
            "k",
            "stor",
            "t_min",
            "t_ave",
            "t_rand",
            "t_inter",
            "t_max",
            "single",
            "multi",
            "speedup",
            "status"
        );
        let _ = writeln!(s, "{}", "-".repeat(108));
        for r in &self.results {
            match &r.outcome {
                Ok(o) => {
                    let gap_note = match &o.gap {
                        Some(g) => format!(
                            " gap={} [{},{}] {}{}",
                            g.gap(),
                            g.lower,
                            g.upper,
                            g.status,
                            if g.cert_clean { "" } else { " CERT-DIRTY" }
                        ),
                        None => String::new(),
                    };
                    let planned_note = match &o.planned {
                        Some(p) => format!(
                            " planned={}:{} t_planned={}",
                            p.policy, p.arrays, p.transfer_time
                        ),
                        None => String::new(),
                    };
                    let _ = writeln!(
                        s,
                        "{:<10} {:>2} {:<5} | {:>8} {:>12.4} {:>8} {:>8} {:>8} | {:>6} {:>5} {:>7.2}x | ok{}{}",
                        r.spec.program,
                        r.spec.k,
                        r.spec.strategy.name(),
                        o.table2.t_min,
                        o.table2.t_ave_analytic,
                        o.table2.t_ave_measured,
                        o.table2.t_interleaved,
                        o.table2.t_max,
                        o.assign_report.single_copy,
                        o.assign_report.multi_copy,
                        o.speedup,
                        gap_note,
                        planned_note,
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        s,
                        "{:<10} {:>2} {:<5} | {:>62} | {}",
                        r.spec.program,
                        r.spec.k,
                        r.spec.strategy.name(),
                        "-",
                        e
                    );
                }
            }
        }
        let _ = writeln!(
            s,
            "\n{} job(s): {} ok, {} failed, {} skipped; verify: {}",
            self.results.len(),
            self.ok_count(),
            self.failed_count(),
            self.skipped_count(),
            self.verify_summary()
        );
        if include_timings {
            let _ = writeln!(
                s,
                "\nper-stage totals ({} worker(s), {:.3}ms wall):",
                self.workers,
                self.wall_ns as f64 / 1e6
            );
            let _ = writeln!(
                s,
                "{:<10} {:>5} {:>12} {:>14} {:>10} {:>12} {:>8}",
                "stage", "jobs", "wall_ms", "alloc_bytes", "allocs", "peak", "spans"
            );
            for k in crate::metrics::StageKind::ALL {
                let mut total = crate::metrics::StageMetrics::default();
                let mut jobs = 0usize;
                for r in &self.results {
                    if let Some(m) = r.metrics.stage(k) {
                        total.add(m);
                        jobs += 1;
                    }
                }
                let _ = writeln!(
                    s,
                    "{:<10} {:>5} {:>12.3} {:>14} {:>10} {:>12} {:>8}",
                    k.as_str(),
                    jobs,
                    total.wall_ns as f64 / 1e6,
                    total.alloc_bytes,
                    total.allocs,
                    total.peak_bytes,
                    total.spans
                );
            }
        }
        s
    }

    /// Render as JSON. With `include_timings`, per-job stage metrics, the
    /// batch wall time, and the worker count are included (making the output
    /// run-dependent).
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut s = String::from("{\"schema\":\"parmem-batch/v1\"");
        let _ = write!(
            s,
            ",\"total\":{},\"ok\":{},\"failed\":{},\"skipped\":{}",
            self.results.len(),
            self.ok_count(),
            self.failed_count(),
            self.skipped_count()
        );
        if include_timings {
            let _ = write!(
                s,
                ",\"wall_ns\":{},\"workers\":{}",
                self.wall_ns, self.workers
            );
        }
        s.push_str(",\"jobs\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&job_json(r, include_timings));
        }
        s.push(']');
        let _ = write!(s, ",\"verify\":{}", self.verify_summary().to_json());
        s.push('}');
        s
    }

    /// Render as CSV, one row per job. With `include_timings`, per-stage
    /// nanosecond/allocation columns are appended.
    pub fn to_csv(&self, include_timings: bool) -> String {
        let mut s = String::from(
            "program,k,strategy,seed,status,t_min,t_ave_analytic,t_ave_measured,\
             t_interleaved,t_max,single_copy,multi_copy,extra_copies,residual_conflicts,\
             values,static_words,words,cycles,reference_steps,speedup,output_len,\
             output_hash,verify_checks,error,heuristic_residual,gap_lower,gap_upper,gap,\
             gap_status,copies_upper,cert_clean",
        );
        if include_timings {
            for k in crate::metrics::StageKind::ALL {
                let _ = write!(
                    s,
                    ",{}_ns,{}_alloc_bytes,{}_peak_bytes,{}_spans",
                    k.as_str(),
                    k.as_str(),
                    k.as_str(),
                    k.as_str()
                );
            }
        }
        s.push('\n');
        for r in &self.results {
            let _ = write!(
                s,
                "{},{},{},{},{}",
                csv_escape(&r.spec.program),
                r.spec.k,
                r.spec.strategy.name(),
                r.spec.seed,
                r.status()
            );
            match &r.outcome {
                Ok(o) => {
                    let _ = write!(
                        s,
                        ",{},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{},{:016x},{},",
                        o.table2.t_min,
                        o.table2.t_ave_analytic,
                        o.table2.t_ave_measured,
                        o.table2.t_interleaved,
                        o.table2.t_max,
                        o.assign_report.single_copy,
                        o.assign_report.multi_copy,
                        o.assign_report.extra_copies,
                        o.assign_report.residual_conflicts,
                        o.values,
                        o.static_words,
                        o.words,
                        o.cycles,
                        o.reference_steps,
                        o.speedup,
                        o.output_len,
                        o.output_hash,
                        o.verify.checks_run.len(),
                    );
                }
                Err(e) => {
                    let _ = write!(s, ",,,,,,,,,,,,,,,,,,{}", csv_escape(&e.to_string()));
                }
            }
            match r.outcome.as_ref().ok().and_then(|o| o.gap.as_ref()) {
                Some(g) => {
                    let _ = write!(
                        s,
                        ",{},{},{},{},{},{},{}",
                        g.heuristic_residual,
                        g.lower,
                        g.upper,
                        g.gap(),
                        g.status,
                        g.copies_upper,
                        g.cert_clean
                    );
                }
                None => s.push_str(",,,,,,,"),
            }
            if include_timings {
                for k in crate::metrics::StageKind::ALL {
                    match r.metrics.stage(k) {
                        Some(m) => {
                            let _ = write!(
                                s,
                                ",{},{},{},{}",
                                m.wall_ns, m.alloc_bytes, m.peak_bytes, m.spans
                            );
                        }
                        None => s.push_str(",,,,"),
                    }
                }
            }
            s.push('\n');
        }
        s
    }

    /// Canonical one-line-per-job snapshot used by the golden tests: every
    /// deterministic measurement, no timings.
    pub fn golden_lines(&self) -> String {
        let mut s = String::new();
        for r in &self.results {
            match &r.outcome {
                Ok(o) => {
                    let gap_note = match &o.gap {
                        Some(g) => format!(
                            " | gap: h={} bounds=[{},{}] status={} copies={} cert={}",
                            g.heuristic_residual,
                            g.lower,
                            g.upper,
                            g.status,
                            g.copies_upper,
                            if g.cert_clean { "clean" } else { "dirty" }
                        ),
                        None => String::new(),
                    };
                    let planned_note = match &o.planned {
                        Some(p) => format!(
                            " | planned: policy={} arrays={} t={} model={:.4} layout={:016x}",
                            p.policy, p.arrays, p.transfer_time, p.t_ave_model, p.layout_digest
                        ),
                        None => String::new(),
                    };
                    let _ = writeln!(
                        s,
                        "{:<10} k={} {:<5} | t_min={} t_ave={:.4} t_rand={} t_inter={} t_max={} \
                         | single={} multi={} extra={} residual={} \
                         | values={} swords={} words={} cycles={} steps={} out={} hash={:016x}{}{}",
                        r.spec.program,
                        r.spec.k,
                        r.spec.strategy.name(),
                        o.table2.t_min,
                        o.table2.t_ave_analytic,
                        o.table2.t_ave_measured,
                        o.table2.t_interleaved,
                        o.table2.t_max,
                        o.assign_report.single_copy,
                        o.assign_report.multi_copy,
                        o.assign_report.extra_copies,
                        o.assign_report.residual_conflicts,
                        o.values,
                        o.static_words,
                        o.words,
                        o.cycles,
                        o.reference_steps,
                        o.output_len,
                        o.output_hash,
                        gap_note,
                        planned_note,
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        s,
                        "{:<10} k={} {:<5} | {}",
                        r.spec.program,
                        r.spec.k,
                        r.spec.strategy.name(),
                        e
                    );
                }
            }
        }
        s
    }
}

fn job_label(r: &JobResult) -> String {
    format!(
        "{} k={} {}",
        r.spec.program,
        r.spec.k,
        r.spec.strategy.name()
    )
}

/// Render one job result as the canonical per-job JSON object (the
/// `jobs[]` element of `parmem-batch/v1`). Public so the serve daemon's
/// `/v1/compile` responses carry byte-identical job reports to the CLI's.
pub fn job_json(r: &JobResult, include_timings: bool) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"program\":\"{}\",\"k\":{},\"strategy\":\"{}\",\"seed\":{},\"status\":\"{}\"",
        json_escape(&r.spec.program),
        r.spec.k,
        r.spec.strategy.name(),
        r.spec.seed,
        r.status()
    );
    match &r.outcome {
        Ok(o) => {
            let _ = write!(
                s,
                ",\"t_min\":{},\"t_ave_analytic\":{:.4},\"t_ave_measured\":{},\
                 \"t_interleaved\":{},\"t_max\":{},\
                 \"single_copy\":{},\"multi_copy\":{},\"extra_copies\":{},\
                 \"residual_conflicts\":{},\"values\":{},\"static_words\":{},\
                 \"words\":{},\"cycles\":{},\"reference_steps\":{},\"speedup\":{:.4},\
                 \"output_len\":{},\"output_hash\":\"{:016x}\",\"verify_checks\":{}",
                o.table2.t_min,
                o.table2.t_ave_analytic,
                o.table2.t_ave_measured,
                o.table2.t_interleaved,
                o.table2.t_max,
                o.assign_report.single_copy,
                o.assign_report.multi_copy,
                o.assign_report.extra_copies,
                o.assign_report.residual_conflicts,
                o.values,
                o.static_words,
                o.words,
                o.cycles,
                o.reference_steps,
                o.speedup,
                o.output_len,
                o.output_hash,
                o.verify.checks_run.len(),
            );
            if let Some(g) = &o.gap {
                let _ = write!(
                    s,
                    ",\"gap\":{{\"heuristic_residual\":{},\"lower\":{},\"upper\":{},\
                     \"gap\":{},\"status\":\"{}\",\"copies_upper\":{},\
                     \"nodes_expanded\":{},\"cert_clean\":{}}}",
                    g.heuristic_residual,
                    g.lower,
                    g.upper,
                    g.gap(),
                    g.status,
                    g.copies_upper,
                    g.nodes_expanded,
                    g.cert_clean
                );
            }
            if let Some(p) = &o.planned {
                let _ = write!(
                    s,
                    ",\"planned\":{{\"policy\":\"{}\",\"layout_digest\":\"{:016x}\",\
                     \"transfer_time\":{},\"t_ave_model\":{:.4},\"arrays\":{}}}",
                    p.policy, p.layout_digest, p.transfer_time, p.t_ave_model, p.arrays
                );
            }
        }
        Err(e) => {
            let _ = write!(s, ",\"error\":\"{}\"", json_escape(&e.to_string()));
            if let JobError::Verify { report } = e {
                let _ = write!(s, ",\"verify\":{}", report.to_json());
            }
        }
    }
    if include_timings {
        s.push_str(",\"metrics\":{");
        for (i, (k, m)) in r.metrics.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"wall_ns\":{},\"alloc_bytes\":{},\"allocs\":{},\"peak_bytes\":{},\"spans\":{}}}",
                k.as_str(),
                m.wall_ns,
                m.alloc_bytes,
                m.allocs,
                m.peak_bytes,
                m.spans
            );
        }
        let t = r.metrics.total();
        if !r.metrics.stages.is_empty() {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"total\":{{\"wall_ns\":{},\"alloc_bytes\":{},\"allocs\":{},\"peak_bytes\":{},\"spans\":{}}}",
            t.wall_ns, t.alloc_bytes, t.allocs, t.peak_bytes, t.spans
        );
        s.push('}');
    }
    s.push('}');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{run_job, JobSpec};

    fn tiny_report() -> BatchReport {
        let specs = [
            JobSpec::new(
                "A",
                "program a; var i, s: int; begin s := 0; for i := 1 to 5 do s := s + i; print s; end.",
                4,
            ),
            JobSpec::new("B", "program broken(", 4),
        ];
        BatchReport {
            results: specs.iter().map(run_job).collect(),
            wall_ns: 123,
            workers: 1,
        }
    }

    #[test]
    fn json_marks_statuses_and_hides_timings_by_default() {
        let r = tiny_report();
        let j = r.to_json(false);
        assert!(j.contains("\"status\":\"ok\""));
        assert!(j.contains("\"status\":\"compile-error\""));
        assert!(!j.contains("wall_ns"), "{j}");
        let jt = r.to_json(true);
        assert!(jt.contains("wall_ns") && jt.contains("\"metrics\""));
    }

    #[test]
    fn csv_has_one_row_per_job_plus_header() {
        let r = tiny_report();
        let csv = r.to_csv(false);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .starts_with("program,k,strategy"));
        let timed = r.to_csv(true);
        assert!(timed.lines().next().unwrap().contains("frontend_ns"));
    }

    #[test]
    fn text_report_summarizes_counts() {
        let r = tiny_report();
        let t = r.format_text();
        assert!(t.contains("2 job(s): 1 ok, 1 failed, 0 skipped"), "{t}");
    }

    #[test]
    fn golden_lines_are_stable_across_renders() {
        let r = tiny_report();
        assert_eq!(r.golden_lines(), r.golden_lines());
        assert!(r.golden_lines().contains("hash="));
    }

    #[test]
    fn planned_placement_only_renders_when_requested() {
        // Default jobs must not mention the planned layout at all — the
        // scalar-only goldens pin this.
        let base = tiny_report();
        assert!(!base.to_json(false).contains("\"planned\""));
        assert!(!base.golden_lines().contains("planned"));

        let src = "program arr; var a: array[12] of int; i, s: int;
            begin
              s := 0;
              for i := 0 to 11 do a[i] := i * 2;
              for i := 0 to 11 do s := s + a[i];
              print s;
            end.";
        let spec =
            JobSpec::new("ARR", src, 4).with_array_policy(parmem_core::layout::ArrayPolicy::Hash);
        let r = BatchReport {
            results: vec![run_job(&spec)],
            wall_ns: 1,
            workers: 1,
        };
        assert!(r.is_clean(), "{}", r.format_text());
        let j = r.to_json(false);
        assert!(j.contains("\"planned\":{\"policy\":\"hash\""), "{j}");
        assert!(r.golden_lines().contains("planned: policy=hash arrays="));
        assert!(r.format_text().contains("planned=hash:"));
    }
}
