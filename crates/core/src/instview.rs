//! CSR view of a trace's *multi-operand* instructions over the dense
//! vertices of its [`ConflictGraph`].
//!
//! Only instructions with two or more distinct operands can ever conflict
//! under a single-copy assignment, so every consumer that reasons about
//! residual conflicts — the exact branch-and-bound, its clique-evidence
//! extraction, the ILS improver, and `parmem-verify`'s certificate
//! re-validation — needs the same two projections: instruction → operand
//! vertices, and vertex → instructions it appears in. This module builds
//! both once, as flat offset/data arrays mirroring the graph's CSR layout,
//! so the solvers stop rebuilding their own `Vec<Vec<_>>` maps.

use crate::graph::ConflictGraph;
use crate::types::AccessTrace;

/// Flat instruction/vertex cross-reference over a conflict graph.
///
/// Instruction `i`'s operands are `ops[inst_offsets[i] .. inst_offsets[i+1]]`
/// (dense vertex ids, ascending); vertex `v`'s instructions are
/// `vert_insts[vert_offsets[v] .. vert_offsets[v+1]]` (instruction ids,
/// ascending). Instructions keep program order, restricted to multi-operand
/// words.
#[derive(Clone, Debug)]
pub struct InstructionView {
    inst_offsets: Vec<u32>,
    ops: Vec<u32>,
    vert_offsets: Vec<u32>,
    vert_insts: Vec<u32>,
}

impl InstructionView {
    /// Build the view of `trace`'s multi-operand instructions over `graph`
    /// (which must be the conflict graph of the same trace, or a filtered
    /// build of it — operands without a vertex are skipped).
    pub fn build(graph: &ConflictGraph, trace: &AccessTrace) -> InstructionView {
        let mut inst_offsets = vec![0u32];
        let mut ops = Vec::new();
        for op in &trace.instructions {
            if op.len() < 2 {
                continue;
            }
            let before = ops.len();
            ops.extend(op.iter().filter_map(|v| graph.vertex_of(v)));
            if ops.len() - before < 2 {
                // Filtered graphs can project a word down to < 2 operands;
                // such words can no longer conflict, so they leave the view.
                ops.truncate(before);
                continue;
            }
            inst_offsets.push(ops.len() as u32);
        }

        let n = graph.len();
        let m = inst_offsets.len() - 1;
        let mut vert_offsets = vec![0u32; n + 1];
        for &v in &ops {
            vert_offsets[v as usize + 1] += 1;
        }
        for v in 0..n {
            vert_offsets[v + 1] += vert_offsets[v];
        }
        let mut vert_insts = vec![0u32; ops.len()];
        let mut cursor: Vec<u32> = vert_offsets[..n].to_vec();
        for i in 0..m {
            let (lo, hi) = (inst_offsets[i] as usize, inst_offsets[i + 1] as usize);
            for &v in &ops[lo..hi] {
                let c = &mut cursor[v as usize];
                vert_insts[*c as usize] = i as u32;
                *c += 1;
            }
        }

        InstructionView {
            inst_offsets,
            ops,
            vert_offsets,
            vert_insts,
        }
    }

    /// Number of multi-operand instructions in the view.
    pub fn len(&self) -> usize {
        self.inst_offsets.len() - 1
    }

    /// True if the trace has no multi-operand instruction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operand vertices of instruction `i`, in operand order (ascending for
    /// trace-built graphs, whose dense ids are monotone in the value ids).
    pub fn operands(&self, i: u32) -> &[u32] {
        &self.ops
            [self.inst_offsets[i as usize] as usize..self.inst_offsets[i as usize + 1] as usize]
    }

    /// Instructions vertex `v` appears in, ascending.
    pub fn instructions_of(&self, v: u32) -> &[u32] {
        &self.vert_insts
            [self.vert_offsets[v as usize] as usize..self.vert_offsets[v as usize + 1] as usize]
    }

    /// Iterate all instructions as operand slices, in program order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len() as u32).map(move |i| self.operands(i))
    }

    /// The *support* of a vertex set: instructions holding at least two
    /// members (the instructions a `> k` clique forces a conflict into).
    pub fn support_of(&self, mut in_set: impl FnMut(u32) -> bool) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&i| {
                self.operands(i)
                    .iter()
                    .filter(|&&v| in_set(v))
                    .take(2)
                    .count()
                    >= 2
            })
            .collect()
    }

    /// Residual of a complete coloring: the number of instructions with two
    /// operands in the same module.
    pub fn residual_of(&self, colors: &[u8]) -> usize {
        self.iter()
            .filter(|vs| {
                for i in 0..vs.len() {
                    for j in (i + 1)..vs.len() {
                        if colors[vs[i] as usize] == colors[vs[j] as usize] {
                            return true;
                        }
                    }
                }
                false
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccessTrace;

    fn fig1() -> AccessTrace {
        AccessTrace::from_lists(3, &[&[1, 2, 4], &[2, 3, 5], &[7], &[2, 3, 4]])
    }

    #[test]
    fn builds_multi_op_view() {
        let t = fig1();
        let g = ConflictGraph::build(&t);
        let view = InstructionView::build(&g, &t);
        // The singleton {7} word is dropped.
        assert_eq!(view.len(), 3);
        let v = |x: u32| g.vertex_of(crate::types::ValueId(x)).unwrap();
        assert_eq!(view.operands(0), &[v(1), v(2), v(4)]);
        assert_eq!(view.operands(2), &[v(2), v(3), v(4)]);
        assert_eq!(view.instructions_of(v(2)), &[0, 1, 2]);
        assert_eq!(view.instructions_of(v(5)), &[1]);
        assert_eq!(view.instructions_of(v(7)), &[] as &[u32]);
    }

    #[test]
    fn support_counts_pairs() {
        let t = fig1();
        let g = ConflictGraph::build(&t);
        let view = InstructionView::build(&g, &t);
        let v = |x: u32| g.vertex_of(crate::types::ValueId(x)).unwrap();
        let set = [v(2), v(3)];
        assert_eq!(view.support_of(|u| set.contains(&u)), vec![1, 2]);
        let lone = [v(5)];
        assert!(view.support_of(|u| lone.contains(&u)).is_empty());
    }

    #[test]
    fn residual_counts_same_module_pairs() {
        let t = fig1();
        let g = ConflictGraph::build(&t);
        let view = InstructionView::build(&g, &t);
        // Everything in module 0: all three multi-op words conflict.
        assert_eq!(view.residual_of(&vec![0u8; g.len()]), 3);
        // A proper 3-coloring by value id modulo 3 may or may not conflict;
        // just pin the all-distinct case for word 0.
        let mut colors = vec![0u8; g.len()];
        for (i, c) in colors.iter_mut().enumerate() {
            *c = i as u8;
        }
        assert_eq!(view.residual_of(&colors), 0);
    }

    #[test]
    fn filtered_graph_drops_projected_singletons() {
        let t = fig1();
        // Keep only odd values: words project to {1}, {3,5}, {7}, {3}.
        let g = ConflictGraph::build_filtered(&t, |v| v.0 % 2 == 1);
        let view = InstructionView::build(&g, &t);
        assert_eq!(view.len(), 1);
        let v3 = g.vertex_of(crate::types::ValueId(3)).unwrap();
        let v5 = g.vertex_of(crate::types::ValueId(5)).unwrap();
        let mut ops = view.operands(0).to_vec();
        ops.sort_unstable();
        let mut expect = vec![v3, v5];
        expect.sort_unstable();
        assert_eq!(ops, expect);
    }
}
