//! The generic lattice-based fixpoint dataflow engine.
//!
//! An [`Analysis`] names a direction, a lattice (`Domain` + [`Analysis::join`]),
//! boundary/initial values, and a per-node transfer function; [`solve`] runs
//! a deterministic worklist to the least fixpoint over a [`FlowGraph`]. The
//! graph is usually built from a `liw_ir` CFG ([`FlowGraph::from_cfg`]), but
//! can be built from raw edges ([`FlowGraph::from_edges`]) — that is what
//! the property tests use to pin the engine against a naive reference on
//! random graphs, and what lets scheduled-program CFGs reuse the engine.
//!
//! Determinism: the worklist is ordered by reverse postorder position
//! (postorder for backward analyses), so iteration order — and therefore
//! the step count — is a pure function of the graph, never of hash seeds.

use std::collections::BTreeSet;

use liw_ir::cfg::Cfg;

/// Which way facts flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors (e.g. reaching
    /// definitions).
    Forward,
    /// Facts flow from successors to predecessors (e.g. liveness).
    Backward,
}

/// One dataflow problem: a lattice, a direction, and a transfer function.
///
/// Requirements for [`solve`] to terminate at the least fixpoint:
/// `transfer` must be monotone in its input, `join` must compute a least
/// upper bound, and [`Analysis::init`] must be the identity of `join` (⊥
/// for a may analysis, ⊤ for a must analysis whose join is intersection).
pub trait Analysis {
    /// The lattice of facts attached to each node.
    type Domain: Clone + PartialEq;

    /// Forward or backward.
    fn direction(&self) -> Direction;

    /// The value entering the boundary node(s): the entry node for a
    /// forward analysis, every exit node (no successors) for a backward
    /// one.
    fn boundary(&self) -> Self::Domain;

    /// The initial value of every other node input — must be the identity
    /// of [`Analysis::join`].
    fn init(&self) -> Self::Domain;

    /// `into ⊔= from`.
    fn join(&self, into: &mut Self::Domain, from: &Self::Domain);

    /// Apply node `n`'s transfer function to `input`.
    fn transfer(&self, n: usize, input: &Self::Domain) -> Self::Domain;
}

/// A directed graph with a designated entry and a reverse postorder over
/// the nodes reachable from it.
#[derive(Clone, Debug)]
pub struct FlowGraph {
    /// Predecessors per node.
    pub preds: Vec<Vec<usize>>,
    /// Successors per node.
    pub succs: Vec<Vec<usize>>,
    /// Reverse postorder over reachable nodes, entry first.
    pub rpo: Vec<usize>,
    /// Position of each node in `rpo` (`usize::MAX` = unreachable).
    pub rpo_pos: Vec<usize>,
    /// The entry node.
    pub entry: usize,
}

impl FlowGraph {
    /// Adopt a `liw_ir` CFG unchanged (same edges, same reverse postorder).
    pub fn from_cfg(cfg: &Cfg) -> FlowGraph {
        FlowGraph {
            preds: cfg
                .preds
                .iter()
                .map(|ps| ps.iter().map(|p| p.index()).collect())
                .collect(),
            succs: cfg
                .succs
                .iter()
                .map(|ss| ss.iter().map(|s| s.index()).collect())
                .collect(),
            rpo: cfg.rpo.iter().map(|b| b.index()).collect(),
            rpo_pos: cfg.rpo_pos.clone(),
            entry: cfg.entry.index(),
        }
    }

    /// Build a graph over `n` nodes from an edge list, computing the
    /// reverse postorder from `entry` with the same DFS the `liw_ir` CFG
    /// uses.
    pub fn from_edges(n: usize, entry: usize, edges: &[(usize, usize)]) -> FlowGraph {
        assert!(entry < n, "entry out of range");
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            succs[a].push(b);
            preds[b].push(a);
        }
        let mut post = Vec::new();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in progress, 2 done
        let mut stack = vec![(entry, 0usize)];
        state[entry] = 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < succs[v].len() {
                let nxt = succs[v][*i];
                *i += 1;
                if state[nxt] == 0 {
                    state[nxt] = 1;
                    stack.push((nxt, 0));
                }
            } else {
                state[v] = 2;
                post.push(v);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        FlowGraph {
            preds,
            succs,
            rpo,
            rpo_pos,
            entry,
        }
    }

    /// Number of nodes (reachable or not).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Whether `n` is reachable from the entry.
    pub fn is_reachable(&self, n: usize) -> bool {
        self.rpo_pos[n] != usize::MAX
    }
}

/// The solved dataflow facts plus iteration diagnostics.
#[derive(Clone, Debug)]
pub struct Solution<D> {
    /// Per node: the joined value *entering* the transfer function (at
    /// block entry for a forward analysis, at block exit for a backward
    /// one). Unreachable nodes keep [`Analysis::init`].
    pub input: Vec<D>,
    /// Per node: `transfer(input)` (at block exit forward, at block entry
    /// backward). Unreachable nodes keep [`Analysis::init`].
    pub output: Vec<D>,
    /// Transfer applications performed.
    pub steps: u64,
    /// `false` when the step limit was hit before the worklist drained —
    /// the termination guard against non-monotone clients; the facts are
    /// then a best-effort under-approximation.
    pub converged: bool,
}

/// Run `analysis` over `g` to a fixpoint, with a hard cap of `max_steps`
/// transfer applications (the termination guard).
///
/// For a monotone analysis over a lattice of height `h`,
/// `g.rpo.len() * (h + 1)` steps always suffice; pass any comfortable
/// upper bound. See [`steps_bound`] for the powerset-domain default.
pub fn solve<A: Analysis>(g: &FlowGraph, analysis: &A, max_steps: u64) -> Solution<A::Domain> {
    let n = g.len();
    let dir = analysis.direction();

    // Iteration order: RPO for forward, postorder (reversed RPO) for
    // backward, so a pass tends to visit producers before consumers.
    let order: Vec<usize> = match dir {
        Direction::Forward => g.rpo.clone(),
        Direction::Backward => g.rpo.iter().rev().copied().collect(),
    };
    let mut posn = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        posn[b] = i;
    }

    let deps: &Vec<Vec<usize>> = match dir {
        Direction::Forward => &g.preds,
        Direction::Backward => &g.succs,
    };
    let users: &Vec<Vec<usize>> = match dir {
        Direction::Forward => &g.succs,
        Direction::Backward => &g.preds,
    };
    let is_boundary = |b: usize| match dir {
        Direction::Forward => b == g.entry,
        Direction::Backward => g.succs[b].is_empty(),
    };

    let mut input: Vec<A::Domain> = vec![analysis.init(); n];
    let mut output: Vec<A::Domain> = vec![analysis.init(); n];
    let mut work: BTreeSet<usize> = (0..order.len()).collect();
    let mut steps = 0u64;
    let mut converged = true;

    while let Some(&i) = work.iter().next() {
        if steps >= max_steps {
            converged = false;
            break;
        }
        steps += 1;
        work.remove(&i);
        let b = order[i];

        let mut inp = if is_boundary(b) {
            analysis.boundary()
        } else {
            analysis.init()
        };
        for &d in &deps[b] {
            if posn[d] != usize::MAX {
                analysis.join(&mut inp, &output[d]);
            }
        }
        let out = analysis.transfer(b, &inp);
        input[b] = inp;
        if out != output[b] {
            output[b] = out;
            for &u in &users[b] {
                if posn[u] != usize::MAX {
                    work.insert(posn[u]);
                }
            }
        }
    }

    Solution {
        input,
        output,
        steps,
        converged,
    }
}

/// A safe step budget for a monotone powerset analysis: each of the
/// `nodes` reachable nodes can be re-processed at most once per lattice
/// level (`bits + 1`), plus slack for the initial seeding pass.
pub fn steps_bound(nodes: usize, bits: usize) -> u64 {
    (nodes as u64 + 1) * (bits as u64 + 2) + 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;

    /// Forward may analysis: out = (in − kill) ∪ gen.
    struct GenKill {
        gen: Vec<BitSet>,
        kill: Vec<BitSet>,
        bits: usize,
        boundary: BitSet,
    }

    impl Analysis for GenKill {
        type Domain = BitSet;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> BitSet {
            self.boundary.clone()
        }
        fn init(&self) -> BitSet {
            BitSet::new(self.bits)
        }
        fn join(&self, into: &mut BitSet, from: &BitSet) {
            into.union_with(from);
        }
        fn transfer(&self, n: usize, input: &BitSet) -> BitSet {
            let mut out = input.clone();
            out.subtract(&self.kill[n]);
            out.union_with(&self.gen[n]);
            out
        }
    }

    #[test]
    fn diamond_joins_both_arms() {
        // 0 → {1,2} → 3; node 1 gens bit 1, node 2 gens bit 2.
        let g = FlowGraph::from_edges(4, 0, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let bits = 4;
        let mut a = GenKill {
            gen: vec![BitSet::new(bits); 4],
            kill: vec![BitSet::new(bits); 4],
            bits,
            boundary: BitSet::new(bits),
        };
        a.gen[1].insert(1);
        a.gen[2].insert(2);
        let sol = solve(&g, &a, steps_bound(4, bits));
        assert!(sol.converged);
        assert_eq!(sol.input[3].iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn loop_reaches_fixpoint_and_unreachable_stays_init() {
        // 0 → 1 ⇄ 2, node 3 unreachable; gen at 2 must flow around the
        // loop into 1's input.
        let g = FlowGraph::from_edges(4, 0, &[(0, 1), (1, 2), (2, 1)]);
        let bits = 2;
        let mut a = GenKill {
            gen: vec![BitSet::new(bits); 4],
            kill: vec![BitSet::new(bits); 4],
            bits,
            boundary: BitSet::new(bits),
        };
        a.gen[2].insert(0);
        let sol = solve(&g, &a, steps_bound(4, bits));
        assert!(sol.converged);
        assert!(sol.input[1].contains(0), "loop-carried fact");
        assert!(!g.is_reachable(3));
        assert!(sol.output[3].is_empty());
    }

    #[test]
    fn step_limit_reports_non_convergence() {
        /// Deliberately non-monotone: output oscillates between {0} and {}.
        struct Oscillator;
        impl Analysis for Oscillator {
            type Domain = BitSet;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn boundary(&self) -> BitSet {
                BitSet::new(1)
            }
            fn init(&self) -> BitSet {
                BitSet::new(1)
            }
            fn join(&self, into: &mut BitSet, from: &BitSet) {
                into.union_with(from);
            }
            fn transfer(&self, _n: usize, input: &BitSet) -> BitSet {
                let mut out = BitSet::new(1);
                if !input.contains(0) {
                    out.insert(0);
                }
                out
            }
        }
        // A self-loop feeds the flipped output straight back into the
        // node's own input, so the fixpoint never settles.
        let g = FlowGraph::from_edges(1, 0, &[(0, 0)]);
        let sol = solve(&g, &Oscillator, 1000);
        assert!(!sol.converged, "oscillator must hit the step cap");
        assert_eq!(sol.steps, 1000);
    }
}
