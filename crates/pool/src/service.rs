//! Persistent service pool with bounded admission — the long-lived
//! counterpart to [`map_indexed`](crate::map_indexed).
//!
//! `map_indexed` is batch-shaped: all work is known up front, workers exit
//! when the deques drain. A daemon needs the opposite: workers that live
//! for the process lifetime, jobs that arrive one at a time from
//! connection handlers, and **admission control** so a traffic burst is
//! refused quickly (HTTP 429 upstream) instead of queueing without bound.
//!
//! The capacity model is `workers + queue_depth`: a pool with `W` workers
//! and depth `Q` admits a job while fewer than `W` jobs are running or
//! fewer than `Q` are waiting; beyond that [`ServicePool::try_submit`]
//! returns [`SubmitError::Saturated`] without blocking. `queue_depth = 0`
//! therefore still admits up to `W` concurrent jobs — it only forbids
//! *waiting*.
//!
//! Each job runs under `catch_unwind`, so a panicking job marks itself
//! failed (the `panicked` counter) and the worker survives — one poisoned
//! request never takes the daemon down. [`ServicePool::drain`] implements
//! graceful shutdown: refuse new work, finish everything queued and
//! in-flight, join the workers.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A unit of work for the pool. Results travel out through whatever the
/// closure captures (typically an `mpsc::SyncSender` back to the
/// connection handler).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`ServicePool::try_submit`] refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue and workers are full — retry later (HTTP 429 upstream).
    Saturated,
    /// [`ServicePool::begin_drain`] has run — the pool is shutting down
    /// (HTTP 503 upstream).
    ShuttingDown,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    in_flight: usize,
    draining: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    ready: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    panicked: AtomicU64,
}

/// Point-in-time pool occupancy and lifetime counters, for `/v1/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs waiting in the queue right now.
    pub queued: usize,
    /// Jobs running on a worker right now.
    pub in_flight: usize,
    /// Jobs ever admitted.
    pub submitted: u64,
    /// Jobs that ran to completion (including panicked ones).
    pub completed: u64,
    /// Jobs refused with [`SubmitError::Saturated`].
    pub rejected: u64,
    /// Jobs whose closure panicked (worker survived).
    pub panicked: u64,
}

/// A fixed-size worker pool with a bounded admission queue. See the
/// module docs for the capacity model.
pub struct ServicePool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_count: usize,
    queue_depth: usize,
}

impl ServicePool {
    /// Spawn `workers` worker threads (`0` = auto, see
    /// [`effective_jobs`](crate::effective_jobs)) admitting at most
    /// `queue_depth` waiting jobs beyond the running ones.
    pub fn new(workers: usize, queue_depth: usize) -> ServicePool {
        let worker_count = crate::effective_jobs(workers);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parmem-svc-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        ServicePool {
            shared,
            workers,
            worker_count,
            queue_depth,
        }
    }

    /// Worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Admit `job` if there is capacity; never blocks.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.draining {
            return Err(SubmitError::ShuttingDown);
        }
        // Capacity = running slots + waiting slots. A job bound for an
        // idle worker is briefly "queued", so compare against both.
        if state.queue.len() + state.in_flight >= self.worker_count + self.queue_depth {
            drop(state);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Saturated);
        }
        state.queue.push_back(job);
        drop(state);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Stop admitting new jobs (subsequent submits get
    /// [`SubmitError::ShuttingDown`]); already-admitted jobs still run.
    /// Callable from any thread — a `/v1/shutdown` handler flips this,
    /// the main thread later calls [`drain`](ServicePool::drain).
    pub fn begin_drain(&self) {
        self.shared.state.lock().unwrap().draining = true;
        self.shared.ready.notify_all();
    }

    /// Whether [`begin_drain`](ServicePool::begin_drain) has run.
    pub fn is_draining(&self) -> bool {
        self.shared.state.lock().unwrap().draining
    }

    /// Graceful shutdown: stop admitting, run everything already queued,
    /// wait for in-flight jobs, join the workers.
    pub fn drain(mut self) {
        self.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Current occupancy and lifetime counters.
    pub fn stats(&self) -> PoolStats {
        let state = self.shared.state.lock().unwrap();
        PoolStats {
            queued: state.queue.len(),
            in_flight: state.in_flight,
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared.ready.wait(state).unwrap();
            }
        };
        // Panic isolation: a poisoned job is counted and dropped, the
        // worker thread lives on to serve the next request.
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        shared.completed.fetch_add(1, Ordering::Relaxed);
        shared.state.lock().unwrap().in_flight -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn recv_ok<T>(rx: &mpsc::Receiver<T>) -> T {
        rx.recv_timeout(Duration::from_secs(10)).expect("job ran")
    }

    #[test]
    fn runs_submitted_jobs() {
        let pool = ServicePool::new(2, 4);
        let (tx, rx) = mpsc::channel();
        for i in 0..8u32 {
            let tx = tx.clone();
            // Capacity 2+4=6 < 8, so pace the submissions.
            loop {
                let tx2 = tx.clone();
                match pool.try_submit(Box::new(move || tx2.send(i).unwrap())) {
                    Ok(()) => break,
                    Err(SubmitError::Saturated) => std::thread::sleep(Duration::from_millis(1)),
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        }
        let mut got: Vec<u32> = (0..8).map(|_| recv_ok(&rx)).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.submitted, 8);
        pool.drain();
    }

    #[test]
    fn saturation_rejects_without_blocking() {
        let pool = ServicePool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (run_tx, run_rx) = mpsc::channel::<()>();
        // Fill the single worker with a job that blocks on the gate…
        let run = run_tx.clone();
        pool.try_submit(Box::new(move || {
            run.send(()).unwrap();
            gate_rx.recv().unwrap();
        }))
        .unwrap();
        recv_ok(&run_rx); // worker is now occupied
                          // …fill the single queue slot…
        pool.try_submit(Box::new(|| {})).unwrap();
        // …and the next submit must bounce.
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::Saturated)
        );
        assert_eq!(pool.stats().rejected, 1);
        gate_tx.send(()).unwrap();
        pool.drain();
    }

    #[test]
    fn zero_queue_depth_still_admits_up_to_worker_count() {
        let pool = ServicePool::new(2, 0);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = std::sync::Arc::new(Mutex::new(gate_rx));
        let (run_tx, run_rx) = mpsc::channel::<()>();
        for _ in 0..2 {
            let run = run_tx.clone();
            let gate = std::sync::Arc::clone(&gate_rx);
            pool.try_submit(Box::new(move || {
                run.send(()).unwrap();
                let _ = gate.lock().unwrap().recv();
            }))
            .unwrap();
        }
        recv_ok(&run_rx);
        recv_ok(&run_rx); // both workers busy
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::Saturated)
        );
        drop(gate_tx); // release both workers
        pool.drain();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ServicePool::new(1, 4);
        pool.try_submit(Box::new(|| panic!("poisoned request")))
            .unwrap();
        let (tx, rx) = mpsc::channel();
        // The same (sole) worker must still be alive to run this.
        pool.try_submit(Box::new(move || tx.send(42u32).unwrap()))
            .unwrap();
        assert_eq!(recv_ok(&rx), 42);
        // The completion counters bump *after* the job body runs, so give
        // the worker a moment to get there.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.stats().completed < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 2);
        pool.drain();
    }

    #[test]
    fn drain_finishes_queued_work_and_refuses_new() {
        let pool = ServicePool::new(1, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..5u32 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send(i).unwrap();
            }))
            .unwrap();
        }
        pool.begin_drain();
        assert_eq!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        );
        pool.drain(); // joins only after all 5 queued jobs ran
        let mut got: Vec<u32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..5).collect::<Vec<_>>());
    }
}
