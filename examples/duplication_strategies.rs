//! Compare the paper's two duplication algorithms — per-instruction
//! backtracking (§2.2.1) and the global hitting-set approach (§2.2.2) — on
//! the paper's worked examples and on synthetic adversarial traces.
//!
//! ```text
//! cargo run --example duplication_strategies
//! ```

use parallel_memories::core::prelude::*;
use parallel_memories::core::synth;

fn run_both(label: &str, trace: &AccessTrace) {
    println!(
        "{label}  ({} instructions, k={})",
        trace.instructions.len(),
        trace.modules
    );
    for dup in [
        DuplicationStrategy::Backtrack,
        DuplicationStrategy::HittingSet,
    ] {
        let params = AssignParams {
            duplication: dup,
            ..AssignParams::default()
        };
        let (_, report) = assign_trace(trace, &params);
        println!(
            "  {dup:?}: duplicated {} values with {} extra copies (uncolored {}, residual {})",
            report.multi_copy, report.extra_copies, report.uncolored, report.residual_conflicts
        );
        assert_eq!(report.residual_conflicts, 0);
    }
    println!();
}

fn main() {
    // Paper Fig. 3: K5 on 3 modules — two nodes must be removed, and the
    // choice of placement decides how many copies are needed.
    let fig3 = AccessTrace::from_lists(
        3,
        &[
            &[1, 2, 3],
            &[2, 3, 4],
            &[1, 3, 4],
            &[1, 3, 5],
            &[2, 3, 5],
            &[1, 4, 5],
        ],
    );
    run_both("paper Fig. 3 (K5, k=3)", &fig3);

    // Paper Fig. 8: k=4, V4 removed during coloring; good placement needs 3
    // copies of V4, bad placement needs 4.
    let fig8 = AccessTrace::from_lists(
        4,
        &[&[1, 2, 3, 5], &[4, 2, 3, 5], &[1, 2, 3, 4], &[4, 2, 1, 5]],
    );
    run_both("paper Fig. 8 (k=4)", &fig8);

    // Synthetic adversaries: co-scheduled cliques larger than k.
    for (k, cliques, extra) in [(4, 2, 2), (8, 3, 3)] {
        let t = synth::clique_trace(k, cliques, extra, 42);
        run_both(
            &format!("clique_trace(k={k}, {cliques} cliques, +{extra})"),
            &t,
        );
    }

    // A skewed random workload.
    let spec = synth::TraceSpec {
        values: 48,
        instructions: 300,
        modules: 4,
        min_ops: 2,
        max_ops: 4,
        skew: 0.9,
    };
    run_both("random skewed trace", &synth::random_trace(&spec, 7));
}
