//! Reference interpreter for TAC programs.
//!
//! Runs the IR directly (no scheduling, no memory model). The RLIW simulator
//! must produce byte-identical output for the same program — the integration
//! tests use this as ground truth.

use crate::ast::Ty;
use crate::tac::{eval_op, Instr, Operand, TacProgram, Terminator, Value};

/// Result of an interpreter run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Values printed by `print` statements, in order.
    pub output: Vec<Value>,
    /// Number of TAC instructions executed (terminators included). This is
    /// the "sequential machine" cycle count used by the speed-up experiment.
    pub steps: u64,
}

/// Errors during interpretation.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// Executed more than the step limit — almost certainly an infinite loop.
    OutOfFuel,
    /// Array index out of bounds.
    Bounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::OutOfFuel => write!(f, "step limit exceeded"),
            RunError::Bounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (len {len})")
            }
        }
    }
}

impl std::error::Error for RunError {}

fn zero(ty: Ty) -> Value {
    match ty {
        Ty::Int => Value::Int(0),
        Ty::Real => Value::Real(0.0),
        Ty::Bool => Value::Bool(false),
    }
}

/// Interpret `p` with a step limit (default callers use
/// [`run`] with 100M steps).
pub fn run_with_fuel(p: &TacProgram, mut fuel: u64) -> Result<RunResult, RunError> {
    let mut sp = parmem_obs::span("ir.interp");
    let mut vars: Vec<Value> = p.vars.iter().map(|v| zero(v.ty)).collect();
    let mut arrays: Vec<Vec<Value>> = p.arrays.iter().map(|a| vec![zero(a.elem); a.len]).collect();
    let mut output = Vec::new();
    let mut steps = 0u64;

    let read = |vars: &[Value], o: &Operand| -> Value {
        match o {
            Operand::Const(c) => *c,
            Operand::Var(v) => vars[v.index()],
        }
    };

    let mut block = p.entry;
    'outer: loop {
        let b = p.block(block);
        for inst in &b.instrs {
            if fuel == 0 {
                return Err(RunError::OutOfFuel);
            }
            fuel -= 1;
            steps += 1;
            match inst {
                Instr::Compute { dest, op, lhs, rhs } => {
                    let a = read(&vars, lhs);
                    let b2 = rhs.as_ref().map(|r| read(&vars, r));
                    vars[dest.index()] = eval_op(*op, a, b2);
                }
                Instr::Load { dest, arr, index } => {
                    let i = read(&vars, index).as_int();
                    let store = &arrays[arr.index()];
                    if i < 0 || i as usize >= store.len() {
                        return Err(RunError::Bounds {
                            array: p.array(*arr).name.clone(),
                            index: i,
                            len: store.len(),
                        });
                    }
                    vars[dest.index()] = store[i as usize];
                }
                Instr::Store { arr, index, value } => {
                    let i = read(&vars, index).as_int();
                    let v = read(&vars, value);
                    let store = &mut arrays[arr.index()];
                    if i < 0 || i as usize >= store.len() {
                        return Err(RunError::Bounds {
                            array: p.array(*arr).name.clone(),
                            index: i,
                            len: store.len(),
                        });
                    }
                    store[i as usize] = v;
                }
                Instr::Print { value } => {
                    output.push(read(&vars, value));
                }
                Instr::Select {
                    cond,
                    if_true,
                    if_false,
                    dest,
                } => {
                    vars[dest.index()] = if read(&vars, cond).as_bool() {
                        read(&vars, if_true)
                    } else {
                        read(&vars, if_false)
                    };
                }
            }
        }
        if fuel == 0 {
            return Err(RunError::OutOfFuel);
        }
        fuel -= 1;
        steps += 1;
        match &b.term {
            Terminator::Jump(t) => block = *t,
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                block = if read(&vars, cond).as_bool() {
                    *then_to
                } else {
                    *else_to
                };
            }
            Terminator::Halt => break 'outer,
        }
    }

    sp.attr("steps", steps);
    Ok(RunResult { output, steps })
}

/// Interpret with a generous default step limit (10^8).
pub fn run(p: &TacProgram) -> Result<RunResult, RunError> {
    run_with_fuel(p, 100_000_000)
}

/// Convenience: parse, lower and run MiniLang source.
pub fn run_source(src: &str) -> Result<RunResult, crate::Error> {
    let ast = crate::parser::parse(src)?;
    let tac = crate::lower::lower(&ast)?;
    Ok(run(&tac)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outputs(src: &str) -> Vec<Value> {
        run_source(src).unwrap().output
    }

    #[test]
    fn arithmetic_and_print() {
        let o = outputs("program t; var x: int; begin x := 2 + 3 * 4; print x; print x - 1; end.");
        assert_eq!(o, vec![Value::Int(14), Value::Int(13)]);
    }

    #[test]
    fn while_loop_sums() {
        let o = outputs(
            "program t; var i, s: int;
             begin
               i := 1; s := 0;
               while i <= 10 do begin s := s + i; i := i + 1; end;
               print s;
             end.",
        );
        assert_eq!(o, vec![Value::Int(55)]);
    }

    #[test]
    fn for_and_downto() {
        let o = outputs(
            "program t; var i, s: int;
             begin
               s := 0;
               for i := 1 to 4 do s := s + i;
               print s;
               for i := 4 downto 1 do s := s - i;
               print s;
             end.",
        );
        assert_eq!(o, vec![Value::Int(10), Value::Int(0)]);
    }

    #[test]
    fn if_else_branches() {
        let o = outputs(
            "program t; var x: int;
             begin
               x := 5;
               if x > 3 then print 1; else print 0;
               if x < 3 then print 1; else print 0;
             end.",
        );
        assert_eq!(o, vec![Value::Int(1), Value::Int(0)]);
    }

    #[test]
    fn arrays_roundtrip() {
        let o = outputs(
            "program t; var a: array[8] of int; i: int;
             begin
               for i := 0 to 7 do a[i] := i * i;
               print a[0]; print a[3]; print a[7];
             end.",
        );
        assert_eq!(o, vec![Value::Int(0), Value::Int(9), Value::Int(49)]);
    }

    #[test]
    fn real_math() {
        let o = outputs(
            "program t; var x: real;
             begin x := sqrt(16.0) + 1.0 / 2.0; print x; end.",
        );
        assert_eq!(o, vec![Value::Real(4.5)]);
    }

    #[test]
    fn intrinsics() {
        let o = outputs(
            "program t; var x: real; i: int;
             begin
               x := abs(-2.5); print x;
               i := abs(-7); print i;
               i := trunc(3.99); print i;
               x := exp(0.0); print x;
             end.",
        );
        assert_eq!(
            o,
            vec![
                Value::Real(2.5),
                Value::Int(7),
                Value::Int(3),
                Value::Real(1.0)
            ]
        );
    }

    #[test]
    fn variables_start_at_zero() {
        let o = outputs("program t; var x: int; y: real; begin print x; print y; end.");
        assert_eq!(o, vec![Value::Int(0), Value::Real(0.0)]);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let ast =
            crate::parser::parse("program t; var x: int; begin while true do x := x + 1; end.")
                .unwrap();
        let tac = crate::lower::lower(&ast).unwrap();
        assert_eq!(run_with_fuel(&tac, 1000), Err(RunError::OutOfFuel));
    }

    #[test]
    fn bounds_error_is_reported() {
        let r = run_source(
            "program t; var a: array[4] of int; i: int;
             begin i := 9; a[i] := 1; end.",
        );
        assert!(r.is_err());
    }

    #[test]
    fn step_count_is_positive() {
        let r = run_source("program t; var x: int; begin x := 1; end.").unwrap();
        assert!(r.steps >= 2); // one instr + halt
    }
}
