//! Live `/metrics` endpoint, end to end over real TCP: the `serve-metrics`
//! stub and a `synth --assign` run with `--metrics-addr` are both spawned
//! as child processes, their bound port read off the advertised
//! `listening on http://…/metrics` stderr line, and the endpoint scraped
//! twice with a plain `std::net::TcpStream` (no curl). The scraped
//! families are diffed against an expected-names list — this doubles as
//! the CI metrics-smoke job.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Families every scrape must expose, whatever the process is doing.
const EXPECTED_ALWAYS: &[&str] = &[
    "parmem_alloc_live_bytes",
    "parmem_alloc_peak_bytes",
    "parmem_metrics_scrapes_total",
    "parmem_uptime_seconds",
];

/// Families a completed `synth --assign` run must additionally expose:
/// pipeline counters from the coloring heuristic plus the live progress
/// gauges for the phases that ran.
const EXPECTED_SYNTH_ASSIGN: &[&str] = &[
    "parmem_assign_urgency_picks",
    "parmem_progress_done",
    "parmem_progress_total",
];

fn spawn_parmem(args: &[&str], linger_ms: Option<u64>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_parmem"));
    cmd.args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if let Some(ms) = linger_ms {
        cmd.env("PARMEM_METRICS_LINGER_MS", ms.to_string());
    }
    cmd.spawn().expect("spawn parmem")
}

/// Read the child's stderr until the telemetry layer advertises its bound
/// address, returning the port and a reader positioned after that line.
fn wait_for_port(child: &mut Child) -> (u16, BufReader<std::process::ChildStderr>) {
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read child stderr");
        assert!(n > 0, "child exited before advertising the metrics port");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            let addr = rest.trim_end().trim_end_matches("/metrics");
            let port: u16 = addr
                .rsplit(':')
                .next()
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| panic!("unparseable listen line: {line}"));
            return (port, reader);
        }
    }
}

/// One HTTP/1.1 GET over a raw TcpStream; returns (status line, body).
fn http_get(port: u16, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Metric families named in an exposition (the `# TYPE <name> …` lines).
fn families(body: &str) -> Vec<&str> {
    body.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect()
}

fn scrape_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
}

#[test]
fn serve_metrics_stub_serves_conformant_text_twice() {
    let mut child = spawn_parmem(
        &[
            "serve-metrics",
            "--metrics-addr",
            "127.0.0.1:0",
            "--max-requests",
            "2",
        ],
        None,
    );
    let (port, _reader) = wait_for_port(&mut child);

    let (status, first) = http_get(port, "/metrics");
    assert!(status.contains("200"), "first scrape: {status}");
    let fams = families(&first);
    for name in EXPECTED_ALWAYS {
        assert!(fams.contains(name), "first scrape misses {name}:\n{first}");
    }
    // Conformance: every family announces HELP before TYPE.
    for name in &fams {
        let help = first.find(&format!("# HELP {name} ")).unwrap_or(usize::MAX);
        let ty = first.find(&format!("# TYPE {name} ")).unwrap_or(0);
        assert!(help < ty, "{name}: HELP must precede TYPE");
    }

    let (_, second) = http_get(port, "/metrics");
    let s1 = scrape_value(&first, "parmem_metrics_scrapes_total").expect("scrape counter");
    let s2 = scrape_value(&second, "parmem_metrics_scrapes_total").expect("scrape counter");
    assert!(s2 > s1, "scrape counter did not advance: {s1} -> {s2}");

    // --max-requests 2 bounds the acceptor, so the stub exits on its own.
    let status = child.wait().expect("child exit");
    assert!(status.success(), "serve-metrics exited with {status:?}");
}

#[test]
fn synth_assign_serves_live_metrics_while_running() {
    // 10^4-value synthetic workload; the linger keeps the endpoint up long
    // enough to take both readings even if assignment outraces the scraper.
    let mut child = spawn_parmem(
        &[
            "synth",
            "-n",
            "10000",
            "--assign",
            "--metrics-addr",
            "127.0.0.1:0",
        ],
        Some(4000),
    );
    let (port, mut reader) = wait_for_port(&mut child);
    // Keep draining stderr so the child never blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        rest
    });

    let (status, first) = http_get(port, "/metrics");
    assert!(status.contains("200"), "first scrape: {status}");

    // Give the pipeline a moment, then diff the family set against the
    // expected-names list on a second scrape.
    std::thread::sleep(Duration::from_millis(500));
    let (_, second) = http_get(port, "/metrics");
    let fams = families(&second);
    let missing: Vec<&&str> = EXPECTED_ALWAYS
        .iter()
        .chain(EXPECTED_SYNTH_ASSIGN)
        .filter(|name| !fams.contains(*name))
        .collect();
    assert!(
        missing.is_empty(),
        "second scrape misses {missing:?}:\n{second}"
    );
    // Progress gauges carry the phase label of real pipeline phases.
    assert!(
        second.contains("parmem_progress_done{phase=\"assign.components\"}"),
        "no assign.components progress gauge:\n{second}"
    );
    assert!(
        scrape_value(&second, "parmem_metrics_scrapes_total").unwrap_or(0.0) >= 2.0,
        "endpoint did not count both scrapes"
    );

    let status = child.wait().expect("child exit");
    let stderr = drain.join().expect("drain stderr");
    assert!(status.success(), "synth exited with {status:?}\n{stderr}");
    assert!(!first.is_empty());
}
