//! Deterministic reports for `parmem lint`: run the static analyses (and
//! optionally the compile-time conflict predictor) over each (program, k)
//! job and render text or JSON that is byte-identical across `--jobs`
//! settings (results come back in submission order, and every analysis is
//! clock-free).
//!
//! The CLI subcommand and the golden snapshot tests share this module, so
//! the snapshots pin exactly what users see.

use std::fmt::Write as _;

use parmem_core::layout::ArrayPolicy;
use parmem_driver::Session;
use parmem_lint::LintReport;
use rliw_sim::pipeline::CompileOptions;

/// One lint job: a program at a module count.
#[derive(Clone, Debug)]
pub struct LintJobSpec {
    /// Display name (workload name or file stem).
    pub program: String,
    /// MiniLang source text.
    pub source: String,
    /// Number of memory modules `k` assumed by the layout-aware lints and
    /// the conflict predictor.
    pub k: usize,
    /// Front-end options (unroll / optimize), matching `parmem batch`.
    pub opts: CompileOptions,
    /// Whether to run the static conflict predictor and cross-check it
    /// against the simulator's measured counters.
    pub predict: bool,
    /// Seed for the uniform-random placement the t_ave cross-check runs.
    pub seed: u64,
    /// Compile-time array placement policy: when set (and `predict` is
    /// on), the report carries per-policy measured-vs-modeled rows.
    pub array_policy: Option<ArrayPolicy>,
}

/// What one lint job produced.
#[derive(Clone, Debug)]
pub struct LintJobResult {
    /// The job that ran.
    pub program: String,
    /// Module count.
    pub k: usize,
    /// `Ok` with the report, or a pipeline error string.
    pub outcome: Result<LintReport, String>,
}

/// Run one lint job through the session layer.
pub fn run_lint_job(spec: &LintJobSpec) -> LintJobResult {
    let mut sp = parmem_obs::span("lint.job");
    sp.attr("program", spec.program.clone());
    sp.attr("k", spec.k);
    let mut session = Session::new(spec.k)
        .with_opts(spec.opts)
        .with_seed(spec.seed);
    if let Some(policy) = spec.array_policy {
        session = session.with_array_policy(policy);
    }
    let outcome = session
        .lint(&spec.program, &spec.source, spec.predict)
        .map_err(|e| e.to_string());
    LintJobResult {
        program: spec.program.clone(),
        k: spec.k,
        outcome,
    }
}

/// Run every job on the batch engine's work-stealing pool; results come
/// back in submission order regardless of `jobs`.
pub fn run_lint_jobs(specs: Vec<LintJobSpec>, jobs: usize) -> Vec<LintJobResult> {
    parmem_batch::pool::map_indexed(specs, jobs, |_, spec| run_lint_job(&spec))
}

/// Total diagnostics across all successful jobs.
pub fn diag_count(results: &[LintJobResult]) -> usize {
    results
        .iter()
        .filter_map(|r| r.outcome.as_ref().ok())
        .map(|rep| rep.diags.len())
        .sum()
}

/// Number of jobs that failed in the pipeline or whose predicted-vs-measured
/// check fell outside the documented tolerance.
pub fn failure_count(results: &[LintJobResult]) -> usize {
    results
        .iter()
        .filter(|r| match &r.outcome {
            Ok(rep) => rep.predict.as_ref().is_some_and(|p| !p.within_tolerance()),
            Err(_) => true,
        })
        .count()
}

/// Human-readable corpus report: one section per job plus a summary line.
pub fn to_text(results: &[LintJobResult]) -> String {
    let mut s = String::new();
    for r in results {
        match &r.outcome {
            Ok(rep) => s.push_str(&rep.to_text()),
            Err(e) => {
                let _ = writeln!(s, "== {} (k={}): error: {}", r.program, r.k, e);
            }
        }
    }
    let _ = writeln!(
        s,
        "{} program(s), {} diagnostic(s), {} failure(s)",
        results.len(),
        diag_count(results),
        failure_count(results)
    );
    s
}

/// Deterministic JSON report (`parmem-lint-report/v1`).
pub fn to_json(results: &[LintJobResult]) -> String {
    let mut s = String::from("{\"schema\":\"parmem-lint-report/v1\",\"jobs\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match &r.outcome {
            Ok(rep) => s.push_str(&rep.to_json()),
            Err(e) => {
                let _ = write!(
                    s,
                    "{{\"program\":\"{}\",\"k\":{},\"error\":\"{}\"}}",
                    r.program.replace('\\', "\\\\").replace('"', "\\\""),
                    r.k,
                    e.replace('\\', "\\\\").replace('"', "\\\"")
                );
            }
        }
    }
    let _ = write!(
        s,
        "],\"diagnostics\":{},\"failures\":{}}}",
        diag_count(results),
        failure_count(results)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, k: usize) -> LintJobSpec {
        LintJobSpec {
            program: name.into(),
            source: workloads::by_name(name).unwrap().source.into(),
            k,
            opts: CompileOptions::default(),
            predict: true,
            seed: 0xC0FFEE,
            array_policy: None,
        }
    }

    #[test]
    fn report_is_deterministic_across_jobs() {
        let a = run_lint_jobs(vec![spec("FFT", 2), spec("SORT", 4)], 1);
        let b = run_lint_jobs(vec![spec("FFT", 2), spec("SORT", 4)], 4);
        assert_eq!(to_json(&a), to_json(&b));
        assert_eq!(to_text(&a), to_text(&b));
    }

    #[test]
    fn corpus_predictions_stay_within_tolerance() {
        let rs = run_lint_jobs(vec![spec("FFT", 4), spec("COLOR", 4)], 0);
        assert_eq!(failure_count(&rs), 0, "{}", to_text(&rs));
    }
}
