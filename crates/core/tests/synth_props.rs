//! Property tests for the [`ScaleSpec`] workload generator — the gate in
//! front of the scale path: if the generator's structural guarantees hold
//! (determinism, planted cliques, exact component counts, edge budgets) and
//! its graphs round-trip through the parallel CSR builder bit-for-bit, the
//! large-n benchmarks downstream are measuring what they claim to.

use std::collections::BTreeMap;

use proptest::prelude::*;

use parmem_core::graph::ConflictGraph;
use parmem_core::synth::{scale_graph, scale_trace, scale_workload, ScaleSpec};

/// Specs kept sparse enough (target well under half the intra-block pair
/// capacity) that the bounded top-up rounds always reach the exact target.
fn arb_spec() -> impl Strategy<Value = ScaleSpec> {
    (
        1usize..=4,   // components
        16usize..=96, // values per component
        0usize..=4,   // cliques
        3usize..=9,   // clique_size
        4usize..=8,   // modules
        1usize..=4,   // avg degree
    )
        .prop_map(
            |(components, per_comp, cliques, clique_size, modules, deg)| {
                let values = components * per_comp;
                ScaleSpec {
                    values,
                    edges: values * deg / 2,
                    cliques,
                    clique_size,
                    components,
                    modules,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same `(spec, seed)` ⇒ byte-identical edge list, plan and graph.
    #[test]
    fn same_seed_is_byte_identical(spec in arb_spec(), seed in 0u64..1024) {
        let a = scale_workload(&spec, seed);
        let b = scale_workload(&spec, seed);
        prop_assert_eq!(&a.edges, &b.edges);
        prop_assert_eq!(&a.cliques, &b.cliques);
        prop_assert_eq!(&a.blocks, &b.blocks);
        prop_assert_eq!(
            scale_graph(&spec, seed, 1).digest(),
            scale_graph(&spec, seed, 1).digest()
        );
    }

    /// Every planted clique is an actual clique of the generated graph.
    #[test]
    fn planted_cliques_are_cliques(spec in arb_spec(), seed in 0u64..1024) {
        let w = scale_workload(&spec, seed);
        let g = ConflictGraph::from_sorted_edges(spec.values, &w.edges, 1);
        prop_assert_eq!(w.cliques.len(), spec.cliques);
        for clique in &w.cliques {
            prop_assert!(g.is_clique(clique), "planted set {clique:?} is not a clique");
        }
        // The bitset adjacency agrees.
        let badj = g.bit_adjacency(0);
        for clique in &w.cliques {
            prop_assert!(badj.is_clique(&g, clique));
        }
    }

    /// Edge count lands exactly on the target when the target clears the
    /// structural floor (trees + cliques), and never below the floor.
    #[test]
    fn edge_count_within_tolerance(spec in arb_spec(), seed in 0u64..1024) {
        let w = scale_workload(&spec, seed);
        prop_assert!(w.edges.len() >= w.forced_edges);
        prop_assert_eq!(w.edges.len(), spec.edges.max(w.forced_edges));
    }

    /// The graph has exactly `spec.components` connected components and the
    /// blocks partition the vertex range with no cross-block edge.
    #[test]
    fn component_count_matches_spec(spec in arb_spec(), seed in 0u64..1024) {
        let w = scale_workload(&spec, seed);
        let g = ConflictGraph::from_sorted_edges(spec.values, &w.edges, 1);
        prop_assert_eq!(g.connected_components().len(), spec.components);
        prop_assert_eq!(w.blocks.len(), spec.components);
        prop_assert_eq!(w.blocks[0].0, 0);
        prop_assert_eq!(w.blocks[w.blocks.len() - 1].1 as usize, spec.values);
        for pair in w.blocks.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0, "blocks must tile the range");
        }
        let block_of = |v: u32| w.blocks.partition_point(|&(s, _)| s <= v) - 1;
        for &(a, b, _) in &w.edges {
            prop_assert_eq!(block_of(a), block_of(b), "edge {a}-{b} crosses blocks");
        }
    }

    /// The generated graph round-trips: parallel CSR assembly from the edge
    /// list, the sequential assembly, and the trace-driven builder all equal
    /// a naive pair-map reference.
    #[test]
    fn round_trips_through_csr_construction(spec in arb_spec(), seed in 0u64..1024) {
        let w = scale_workload(&spec, seed);
        let seq = ConflictGraph::from_sorted_edges(spec.values, &w.edges, 1);
        let par = ConflictGraph::from_sorted_edges(spec.values, &w.edges, 8);
        prop_assert_eq!(seq.digest(), par.digest());

        let trace = scale_trace(&spec, seed);
        let from_trace = ConflictGraph::build(&trace);
        prop_assert_eq!(seq.digest(), from_trace.digest());

        // Naive reference: pair → conf map over the trace.
        let mut reference: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for inst in &trace.instructions {
            let ops: Vec<u32> = inst.iter().map(|v| v.0).collect();
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    let k = (ops[i].min(ops[j]), ops[i].max(ops[j]));
                    *reference.entry(k).or_insert(0) += 1;
                }
            }
        }
        let produced: BTreeMap<(u32, u32), u32> = seq
            .edges()
            .map(|(u, v, c)| ((seq.value(u).0, seq.value(v).0), c))
            .collect();
        prop_assert_eq!(produced, reference);
    }
}
