//! Compatibility shim: the Fig. 10 copy-placement algorithm moved into the
//! unified [`crate::layout`] module (which plans scalar copies *and*
//! per-array schemes together). Existing imports keep working.

pub use crate::layout::place_values;
