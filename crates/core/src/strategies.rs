//! The three storage-allocation strategies evaluated in paper §3 (Table 1).
//!
//! * **STOR1** — one conflict graph over *all* variables and temporaries of
//!   the program (no size restriction).
//! * **STOR2** — two stages: first assign the values live across regions
//!   (globals), considering only their mutual conflicts; then process each
//!   region, assigning its local values with the globals held fixed.
//! * **STOR3** — restrict graph size by splitting the instruction stream
//!   into two groups processed one after the other (values assigned by the
//!   first group stay fixed for the second).

use std::collections::HashSet;
use std::sync::OnceLock;

use crate::assignment::{assign_trace_into, AssignParams, Assignment, AssignmentReport};
use crate::types::{AccessTrace, OperandSet, ValueId};

/// A program's instruction stream partitioned into regions, with the set of
/// values live across region boundaries. Produced by the compiler front end
/// (`liw-ir` + `liw-sched`); constructible by hand for tests.
#[derive(Clone, Debug)]
pub struct RegionizedTrace {
    /// Number of memory modules `k`.
    pub modules: usize,
    /// Per-region instruction streams, in program order.
    pub regions: Vec<Vec<OperandSet>>,
    /// Values used in more than one region ("global" data values).
    pub globals: HashSet<ValueId>,
}

impl RegionizedTrace {
    /// Derive the global set automatically: a value is global iff it appears
    /// in two or more regions.
    pub fn with_inferred_globals(modules: usize, regions: Vec<Vec<OperandSet>>) -> Self {
        let mut count: std::collections::HashMap<ValueId, usize> = Default::default();
        for region in &regions {
            let vals: HashSet<ValueId> = region.iter().flat_map(|i| i.iter()).collect();
            for v in vals {
                *count.entry(v).or_insert(0) += 1;
            }
        }
        let globals = count
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(v, _)| v)
            .collect();
        RegionizedTrace {
            modules,
            regions,
            globals,
        }
    }

    /// The whole program as one flat trace.
    pub fn flat(&self) -> AccessTrace {
        AccessTrace::new(
            self.modules,
            self.regions.iter().flatten().cloned().collect(),
        )
    }
}

/// The memory-module assignment strategy — which slice of the program each
/// conflict graph covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// All conflicts at once (unbounded graph).
    Stor1,
    /// Globals first (globals-only conflicts), then per-region locals.
    Stor2,
    /// Instruction stream split into `groups` consecutive chunks, processed
    /// sequentially. The paper's experiment used two groups.
    Stor3 {
        /// Number of consecutive chunks the stream is split into.
        groups: usize,
    },
    /// Exact branch-and-bound assignment (provided by `parmem-exact` via
    /// [`install_exact_solver`]; falls back to STOR1 when uninstalled).
    Exact,
}

/// One row of the strategy registry: everything a front end (CLI, batch,
/// bench) needs to enumerate, parse, and describe a strategy. This table is
/// the single source of truth — there are no hand-maintained `match` sites
/// over strategy flags elsewhere.
#[derive(Clone, Copy, Debug)]
pub struct StrategyInfo {
    /// The strategy this row describes.
    pub strategy: Strategy,
    /// Display name (`STOR1`/`STOR2`/`STOR3`/`EXACT`).
    pub name: &'static str,
    /// The `--stor` flag value that selects it (`1`/`2`/`3`/`exact`).
    pub flag: &'static str,
    /// One-line description for `--help` output.
    pub description: &'static str,
}

/// The strategy registry, in canonical order. Paper heuristics first, then
/// the exact solver.
pub const STRATEGY_REGISTRY: &[StrategyInfo] = &[
    StrategyInfo {
        strategy: Strategy::Stor1,
        name: "STOR1",
        flag: "1",
        description: "one conflict graph over the whole program",
    },
    StrategyInfo {
        strategy: Strategy::Stor2,
        name: "STOR2",
        flag: "2",
        description: "globals first, then per-region locals",
    },
    StrategyInfo {
        strategy: Strategy::STOR3,
        name: "STOR3",
        flag: "3",
        description: "instruction stream split into two groups",
    },
    StrategyInfo {
        strategy: Strategy::Exact,
        name: "EXACT",
        flag: "exact",
        description: "branch-and-bound exact assignment with certificates",
    },
];

impl Strategy {
    /// The paper's STOR3 configuration (two instruction groups).
    pub const STOR3: Strategy = Strategy::Stor3 { groups: 2 };

    /// Display name (`STOR1`/`STOR2`/`STOR3`/`EXACT`).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Stor1 => "STOR1",
            Strategy::Stor2 => "STOR2",
            Strategy::Stor3 { .. } => "STOR3",
            Strategy::Exact => "EXACT",
        }
    }

    /// The registry row for this strategy.
    pub fn info(&self) -> &'static StrategyInfo {
        STRATEGY_REGISTRY
            .iter()
            .find(|i| i.name == self.name())
            .expect("every strategy has a registry row")
    }

    /// Parse a `--stor` flag value (`1`, `2`, `3`, `exact`; names like
    /// `STOR1`/`stor2`/`EXACT` also accepted).
    pub fn parse(s: &str) -> Option<Strategy> {
        STRATEGY_REGISTRY
            .iter()
            .find(|i| i.flag.eq_ignore_ascii_case(s) || i.name.eq_ignore_ascii_case(s))
            .map(|i| i.strategy)
    }

    /// Every registered strategy, in canonical order.
    pub fn all() -> impl Iterator<Item = Strategy> {
        STRATEGY_REGISTRY.iter().map(|i| i.strategy)
    }

    /// The paper's three heuristics (what `--stor all` sweeps).
    pub fn heuristics() -> impl Iterator<Item = Strategy> {
        STRATEGY_REGISTRY
            .iter()
            .filter(|i| i.strategy != Strategy::Exact)
            .map(|i| i.strategy)
    }
}

/// The exact-solver entry point installed by `parmem-exact`: given the flat
/// trace and the assignment parameters, place every distinct value
/// (single-copy) into `Assignment`. Residual repair happens in
/// [`run_strategy`]'s common epilogue.
pub type ExactSolverFn = fn(&AccessTrace, &AssignParams, &mut Assignment);

static EXACT_SOLVER: OnceLock<ExactSolverFn> = OnceLock::new();

/// Install the exact solver used by [`Strategy::Exact`]. `parmem-exact`
/// calls this from its `install()`; later calls are ignored (first wins).
/// Returns `true` if this call installed the solver.
pub fn install_exact_solver(f: ExactSolverFn) -> bool {
    EXACT_SOLVER.set(f).is_ok()
}

/// Whether an exact solver has been installed.
pub fn exact_solver_installed() -> bool {
    EXACT_SOLVER.get().is_some()
}

/// Run one strategy over a regionized program. The returned report is always
/// evaluated against the *full* flat trace, so residual-conflict and copy
/// counts are comparable across strategies.
pub fn run_strategy(
    rt: &RegionizedTrace,
    strategy: Strategy,
    params: &AssignParams,
) -> (Assignment, AssignmentReport) {
    let full = rt.flat();
    let mut a = Assignment::new(rt.modules);

    match strategy {
        Strategy::Stor1 => {
            assign_trace_into(&full, params, &mut a);
        }
        Strategy::Stor2 => {
            // Stage 1: globals only. Each instruction is projected onto its
            // global operands; instructions with < 2 globals contribute no
            // conflicts but still place their global values.
            let global_insts: Vec<OperandSet> = full
                .instructions
                .iter()
                .map(|i| i.filtered(|v| rt.globals.contains(&v)))
                .filter(|i| !i.is_empty())
                .collect();
            let gtrace = AccessTrace::new(rt.modules, global_insts);
            assign_trace_into(&gtrace, params, &mut a);
            // Stage 2: one region at a time, globals fixed.
            for region in &rt.regions {
                let rtrace = AccessTrace::new(rt.modules, region.clone());
                assign_trace_into(&rtrace, params, &mut a);
            }
        }
        Strategy::Stor3 { groups } => {
            let groups = groups.max(1);
            let insts = &full.instructions;
            let chunk = insts.len().div_ceil(groups).max(1);
            for slice in insts.chunks(chunk) {
                let strace = AccessTrace::new(rt.modules, slice.to_vec());
                assign_trace_into(&strace, params, &mut a);
            }
        }
        Strategy::Exact => match EXACT_SOLVER.get() {
            Some(solve) => solve(&full, params, &mut a),
            // Uninstalled (core used standalone): fall back to the STOR1
            // heuristic so the variant still produces a valid assignment.
            None => {
                assign_trace_into(&full, params, &mut a);
            }
        },
    }

    // Re-evaluate against the full program. Staged strategies can leave
    // conflicts that the per-stage repair never saw; fix them here so every
    // strategy delivers the conflict-free guarantee and pays for it in
    // copies (exactly the paper's trade-off: restricted graphs → more
    // duplication).
    let all_values: Vec<ValueId> = full.distinct_values();
    let pre_residual = a.residual_conflicts(&full);
    let mut repair_copies = 0;
    if pre_residual > 0 {
        let before = a.total_copies();
        crate::duplication::backtrack_duplicate(&full, &all_values, &mut a);
        repair_copies = a.total_copies() - before;
    }

    let report = AssignmentReport {
        single_copy: a.single_copy_count(),
        multi_copy: a.multi_copy_count(),
        extra_copies: a.extra_copies(),
        uncolored: 0, // per-stage detail not meaningful across stages
        atoms: 0,
        residual_conflicts: a.residual_conflicts(&full),
        repair_copies,
    };
    (a, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::AssignParams;

    fn ops(ids: &[u32]) -> OperandSet {
        OperandSet::new(ids.iter().map(|&i| ValueId(i)).collect())
    }

    fn sample_program() -> RegionizedTrace {
        // Region 0 uses {1,2,3,10}, region 1 uses {4,5,6,10}; V10 is global.
        // Each region's conflict graph is 3-colorable (no K4), so STOR1 can
        // solve the whole program without duplication.
        RegionizedTrace::with_inferred_globals(
            3,
            vec![
                vec![ops(&[1, 2, 10]), ops(&[2, 3, 10])],
                vec![ops(&[4, 5, 10]), ops(&[5, 6, 10])],
            ],
        )
    }

    #[test]
    fn globals_are_inferred() {
        let rt = sample_program();
        assert_eq!(rt.globals.len(), 1);
        assert!(rt.globals.contains(&ValueId(10)));
    }

    #[test]
    fn all_strategies_end_conflict_free() {
        let rt = sample_program();
        let params = AssignParams::default();
        for strategy in [Strategy::Stor1, Strategy::Stor2, Strategy::STOR3] {
            let (a, r) = run_strategy(&rt, strategy, &params);
            assert_eq!(r.residual_conflicts, 0, "{}: {r:?}", strategy.name());
            assert_eq!(a.residual_conflicts(&rt.flat()), 0);
            // Every used value must be placed.
            for v in rt.flat().distinct_values() {
                assert!(a.is_placed(v), "{}: {v} unplaced", strategy.name());
            }
        }
    }

    #[test]
    fn stor1_duplicates_no_more_than_staged_strategies_here() {
        // On this easy program STOR1 needs no duplication at all.
        let rt = sample_program();
        let (_, r1) = run_strategy(&rt, Strategy::Stor1, &AssignParams::default());
        assert_eq!(r1.multi_copy, 0, "{r1:?}");
    }

    #[test]
    fn stor3_group_count_is_respected() {
        let rt = sample_program();
        let (a, r) = run_strategy(&rt, Strategy::Stor3 { groups: 3 }, &AssignParams::default());
        assert_eq!(r.residual_conflicts, 0);
        assert_eq!(a.residual_conflicts(&rt.flat()), 0);
    }

    #[test]
    fn flat_concatenates_regions_in_order() {
        let rt = sample_program();
        let flat = rt.flat();
        assert_eq!(flat.instructions.len(), 4);
        assert_eq!(flat.instructions[0], ops(&[1, 2, 10]));
        assert_eq!(flat.instructions[3], ops(&[5, 6, 10]));
    }

    #[test]
    fn registry_parses_flags_and_names() {
        assert_eq!(Strategy::parse("1"), Some(Strategy::Stor1));
        assert_eq!(Strategy::parse("STOR2"), Some(Strategy::Stor2));
        assert_eq!(Strategy::parse("stor3"), Some(Strategy::STOR3));
        assert_eq!(Strategy::parse("exact"), Some(Strategy::Exact));
        assert_eq!(Strategy::parse("EXACT"), Some(Strategy::Exact));
        assert_eq!(Strategy::parse("0"), None);
        assert_eq!(Strategy::all().count(), 4);
        assert_eq!(Strategy::heuristics().count(), 3);
        assert!(Strategy::heuristics().all(|s| s != Strategy::Exact));
        for info in STRATEGY_REGISTRY {
            assert_eq!(info.strategy.name(), info.name);
            assert_eq!(Strategy::parse(info.flag), Some(info.strategy));
        }
    }

    #[test]
    fn exact_without_installed_solver_falls_back_to_stor1() {
        let rt = sample_program();
        let params = AssignParams::default();
        let (a, r) = run_strategy(&rt, Strategy::Exact, &params);
        assert_eq!(r.residual_conflicts, 0, "{r:?}");
        for v in rt.flat().distinct_values() {
            assert!(a.is_placed(v), "{v} unplaced");
        }
    }

    #[test]
    fn single_region_program_all_strategies_agree_on_freedom() {
        let rt = RegionizedTrace::with_inferred_globals(
            4,
            vec![vec![ops(&[1, 2, 3, 4]), ops(&[1, 2, 3, 5])]],
        );
        for s in [Strategy::Stor1, Strategy::Stor2, Strategy::STOR3] {
            let (_, r) = run_strategy(&rt, s, &AssignParams::default());
            assert_eq!(r.residual_conflicts, 0, "{}", s.name());
        }
    }
}
