//! Dense problem representation shared by the solver passes.
//!
//! The access-conflict graph already gives every distinct trace value a
//! dense vertex id (sorted by [`ValueId`](parmem_core::types::ValueId));
//! the instruction view the exact objective needs — which *multi-operand*
//! instructions exist (only those can conflict under a single-copy
//! assignment) and which of them each vertex participates in — is the
//! shared CSR [`InstructionView`] from `parmem-core`, the same structure
//! `parmem-verify` validates certificates against.

use parmem_core::graph::ConflictGraph;
use parmem_core::instview::InstructionView;
use parmem_core::types::AccessTrace;

/// Sentinel for "vertex not yet colored".
pub(crate) const NONE: u8 = u8::MAX;

pub(crate) struct Instance {
    pub graph: ConflictGraph,
    /// Number of vertices (distinct trace values).
    pub n: usize,
    /// Number of memory modules.
    pub k: usize,
    /// Multi-operand instruction/vertex cross-reference, in program order.
    pub view: InstructionView,
}

impl Instance {
    pub fn build(trace: &AccessTrace) -> Instance {
        let graph = ConflictGraph::build(trace);
        let n = graph.len();
        let k = trace.modules;
        let view = InstructionView::build(&graph, trace);
        Instance { graph, n, k, view }
    }

    /// Residual of a complete coloring: the number of multi-operand
    /// instructions with two operands in the same module.
    pub fn residual_of(&self, colors: &[u8]) -> usize {
        self.view.residual_of(colors)
    }
}
