//! Extended workloads beyond the paper's six benchmarks — scientific
//! kernels in the same spirit, used to widen the evaluation sweeps.
//! Each is validated against a Rust reference like the originals.

/// MATMUL — dense 8×8 integer matrix multiply.
pub const MATMUL: &str = r#"
program matmul;
var
  a: array[64] of int;
  b: array[64] of int;
  c: array[64] of int;
  n, i, j, kk, s: int;
begin
  n := 8;
  for i := 0 to n - 1 do begin
    for j := 0 to n - 1 do begin
      a[i * n + j] := (i * 3 + j * 5 + 1) mod 17;
      b[i * n + j] := (i * 7 + j * 2 + 3) mod 13;
    end;
  end;
  for i := 0 to n - 1 do begin
    for j := 0 to n - 1 do begin
      s := 0;
      for kk := 0 to n - 1 do
        s := s + a[i * n + kk] * b[kk * n + j];
      c[i * n + j] := s;
    end;
  end;
  for i := 0 to n * n - 1 do print c[i];
end.
"#;

/// Rust reference for MATMUL.
pub fn matmul_expected() -> Vec<i64> {
    let n = 8usize;
    let mut a = vec![0i64; n * n];
    let mut b = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((i * 3 + j * 5 + 1) % 17) as i64;
            b[i * n + j] = ((i * 7 + j * 2 + 3) % 13) as i64;
        }
    }
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
        }
    }
    c
}

/// STENCIL — 1-D Jacobi relaxation, 20 sweeps over 64 points.
pub const STENCIL: &str = r#"
program stencil;
var
  u: array[64] of real;
  v: array[64] of real;
  n, i, t: int;
begin
  n := 64;
  for i := 0 to n - 1 do
    u[i] := sin(itor(i) * 0.2);
  for t := 1 to 20 do begin
    for i := 1 to n - 2 do
      v[i] := (u[i - 1] + u[i] + u[i + 1]) / 3.0;
    v[0] := u[0];
    v[n - 1] := u[n - 1];
    for i := 0 to n - 1 do
      u[i] := v[i];
  end;
  for i := 0 to n - 1 do print u[i];
end.
"#;

/// Rust reference for STENCIL.
pub fn stencil_expected() -> Vec<f64> {
    let n = 64usize;
    let mut u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
    for _ in 0..20 {
        let mut v = u.clone();
        for i in 1..n - 1 {
            v[i] = (u[i - 1] + u[i] + u[i + 1]) / 3.0;
        }
        u = v;
    }
    u
}

/// HIST — histogram of LCG samples with a final prefix-sum.
pub const HIST: &str = r#"
program hist;
var
  bins: array[16] of int;
  n, i, seed, b: int;
begin
  n := 512;
  for i := 0 to 15 do bins[i] := 0;
  seed := 99;
  for i := 1 to n do begin
    seed := (seed * 1103515245 + 12345) mod 2147483648;
    b := seed mod 16;
    bins[b] := bins[b] + 1;
  end;
  { prefix sum }
  for i := 1 to 15 do
    bins[i] := bins[i] + bins[i - 1];
  for i := 0 to 15 do print bins[i];
end.
"#;

/// Rust reference for HIST.
pub fn hist_expected() -> Vec<i64> {
    let mut bins = [0i64; 16];
    let mut seed = 99i64;
    for _ in 0..512 {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        bins[(seed % 16) as usize] += 1;
    }
    for i in 1..16 {
        bins[i] += bins[i - 1];
    }
    bins.to_vec()
}

/// The extended benchmark list.
pub fn extended() -> Vec<crate::Benchmark> {
    vec![
        crate::Benchmark {
            name: "MATMUL",
            source: MATMUL,
        },
        crate::Benchmark {
            name: "STENCIL",
            source: STENCIL,
        },
        crate::Benchmark {
            name: "HIST",
            source: HIST,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::Value;

    #[test]
    fn matmul_matches_reference() {
        let out = liw_ir::run_source(MATMUL).unwrap().output;
        let exp = matmul_expected();
        assert_eq!(out.len(), exp.len());
        for (g, w) in out.iter().zip(&exp) {
            assert_eq!(*g, Value::Int(*w));
        }
    }

    #[test]
    fn stencil_matches_reference() {
        let out = liw_ir::run_source(STENCIL).unwrap().output;
        let exp = stencil_expected();
        assert_eq!(out.len(), exp.len());
        for (g, w) in out.iter().zip(&exp) {
            match g {
                Value::Real(v) => assert!((v - w).abs() < 1e-9, "{v} vs {w}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn hist_matches_reference() {
        let out = liw_ir::run_source(HIST).unwrap().output;
        let exp = hist_expected();
        for (g, w) in out.iter().zip(&exp) {
            assert_eq!(*g, Value::Int(*w));
        }
        // The prefix sum must end at the sample count.
        assert_eq!(out.last(), Some(&Value::Int(512)));
    }

    #[test]
    fn extended_list_is_complete() {
        let e = extended();
        assert_eq!(e.len(), 3);
        for b in e {
            liw_ir::compile(b.source).unwrap_or_else(|err| panic!("{}: {err}", b.name));
        }
    }
}
