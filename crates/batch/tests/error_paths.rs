//! Error-path tests: every way a job can die must surface as a structured
//! per-job failure — never abort the batch, never poison a worker.
//!
//! Faults are injected with [`FaultInjection`] because the healthy pipeline
//! is hard to break from the outside: the simulator's value semantics are
//! independent of the assignment (a bad assignment only costs cycles), so
//! real divergence and verifier failures have to be manufactured.

use parmem_batch::{
    run_batch, BatchOptions, ErrorPolicy, ExactConfig, FaultInjection, JobError, JobSpec, StageKind,
};

const GOOD: &str = "program good; var i, s: int;
                    begin s := 1; for i := 1 to 9 do s := s + i * s; print s; end.";

fn good(n: usize) -> JobSpec {
    JobSpec::new(format!("GOOD{n}"), GOOD, 4)
}

#[test]
fn panicking_job_is_isolated_from_the_batch() {
    for stage in StageKind::ALL {
        // The exact-gap stage only exists on jobs that request it.
        let mut faulty = good(1).with_fault(FaultInjection::PanicInStage(stage));
        if stage == StageKind::ExactGap {
            faulty = faulty.with_exact_gap(ExactConfig::default());
        }
        let specs = vec![good(0), faulty, good(2)];
        let report = run_batch(
            specs,
            &BatchOptions {
                jobs: 2,
                ..Default::default()
            },
        );
        assert_eq!(report.ok_count(), 2, "stage {stage:?}");
        assert_eq!(report.failed_count(), 1, "stage {stage:?}");
        match &report.results[1].outcome {
            Err(JobError::Panic(msg)) => {
                assert!(
                    msg.contains(stage.as_str()),
                    "panic message should name the stage: {msg}"
                )
            }
            other => panic!("stage {stage:?}: expected Panic, got {other:?}"),
        }
        // The healthy neighbours are untouched.
        assert!(report.results[0].outcome.is_ok());
        assert!(report.results[2].outcome.is_ok());
    }
}

#[test]
fn verify_failure_carries_the_diagnostic_report() {
    let specs = vec![
        good(0),
        good(1).with_fault(FaultInjection::CorruptAssignment),
    ];
    let report = run_batch(specs, &BatchOptions::default());
    assert_eq!(report.ok_count(), 1);
    match &report.results[1].outcome {
        Err(JobError::Verify { report: vreport }) => {
            assert!(!vreport.is_clean());
            assert!(
                vreport
                    .diagnostics
                    .iter()
                    .any(|d| d.code.as_str().starts_with("PM")),
                "diagnostics must carry PMxxx codes: {vreport}"
            );
        }
        other => panic!("expected Verify, got {other:?}"),
    }
    assert_eq!(report.results[1].status(), "verify-error");
    // The batch-level verifier summary aggregates the violation.
    let summary = report.verify_summary();
    assert!(!summary.is_clean());
    assert_eq!(summary.clean, 1);
    assert_eq!(summary.dirty.len(), 1);
    assert!(summary.dirty[0].0.contains("GOOD1"));
}

#[test]
fn interpreter_divergence_is_a_structured_failure() {
    let specs = vec![good(0).with_fault(FaultInjection::CorruptOutput), good(1)];
    let report = run_batch(specs, &BatchOptions::default());
    assert_eq!(report.ok_count(), 1);
    match &report.results[0].outcome {
        Err(JobError::Divergence {
            expected,
            actual,
            first_mismatch,
        }) => {
            // The fault overwrites the first value in place: lengths agree,
            // and the mismatch is located at index 0.
            assert_eq!(expected, actual);
            assert_eq!(*first_mismatch, Some(0));
        }
        other => panic!("expected Divergence, got {other:?}"),
    }
    assert_eq!(report.results[0].status(), "divergence");
}

#[test]
fn compile_error_fails_only_its_own_job() {
    let specs = vec![
        JobSpec::new("BAD", "program bad; begin crash syntax", 4),
        good(1),
    ];
    let report = run_batch(specs, &BatchOptions::default());
    assert!(matches!(
        report.results[0].outcome,
        Err(JobError::Compile(_))
    ));
    assert!(report.results[1].outcome.is_ok());
}

#[test]
fn fail_fast_skips_jobs_after_the_first_failure() {
    // One worker makes the schedule deterministic: the poisoned first job
    // fails before anything else starts.
    let specs = vec![
        good(0).with_fault(FaultInjection::PanicInStage(StageKind::Frontend)),
        good(1),
        good(2),
    ];
    let report = run_batch(
        specs,
        &BatchOptions {
            jobs: 1,
            policy: ErrorPolicy::FailFast,
        },
    );
    assert_eq!(report.failed_count(), 1);
    assert_eq!(report.skipped_count(), 2);
    assert!(matches!(report.results[1].outcome, Err(JobError::Skipped)));
    assert_eq!(report.results[2].status(), "skipped");
}

#[test]
fn collect_all_runs_everything_despite_failures() {
    let specs = vec![
        good(0).with_fault(FaultInjection::PanicInStage(StageKind::Assign)),
        good(1).with_fault(FaultInjection::CorruptAssignment),
        good(2).with_fault(FaultInjection::CorruptOutput),
        good(3),
    ];
    let report = run_batch(
        specs,
        &BatchOptions {
            jobs: 2,
            ..Default::default()
        },
    );
    assert_eq!(report.skipped_count(), 0);
    assert_eq!(report.failed_count(), 3);
    assert_eq!(report.ok_count(), 1);
    let kinds: Vec<&str> = report.results.iter().map(|r| r.status()).collect();
    assert_eq!(kinds, ["panic", "verify-error", "divergence", "ok"]);
    // Structured failures survive every rendering path.
    let json = report.to_json(false);
    for k in ["panic", "verify-error", "divergence"] {
        assert!(json.contains(k), "JSON report must mention {k}");
    }
    assert!(report.to_csv(false).lines().count() == 5);
}
