//! Nested wall-clock spans with key/value attributes.
//!
//! A [`SpanGuard`] is opened with [`crate::span`] and records itself into the
//! global collector when dropped. Nesting comes from a per-thread stack: the
//! span open when a new one starts becomes its parent, so properly scoped
//! guards produce a well-formed forest per thread (work-stealing jobs run a
//! whole pipeline on one thread, so each job's spans form one tree).
//!
//! When tracing is disabled (the default) every entry point is a single
//! relaxed atomic load — no allocation, no clock read, no lock.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static RECORDS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static CLOSED_SPANS: Cell<u64> = const { Cell::new(0) };
}

/// The collector's time origin, fixed at first use so `start_ns` offsets are
/// comparable across threads.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turn span/metric collection on or off (process-wide). Off by default;
/// while off, every instrumentation call is a single atomic load.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // fix the time origin before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when the collector is recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of spans closed on the current thread since it started (monotonic;
/// used by [`crate::stage::StageTimer`] to attribute span counts to stages).
pub fn thread_closed_spans() -> u64 {
    CLOSED_SPANS.with(Cell::get)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// One attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    Uint(u64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Uint(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// A finished span as stored by the collector.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Collector-unique id (allocation order, not deterministic across
    /// worker counts — deterministic exporters omit it).
    pub id: u64,
    /// Id of the span that was open on this thread when this one started.
    pub parent: Option<u64>,
    /// Span name (static instrumentation label like `assign.color`).
    pub name: String,
    /// Start offset from the collector epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Dense per-thread index (1-based, assignment order).
    pub thread: u64,
    /// Attributes in the order they were recorded.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
    start_ns: u64,
    thread: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard for one span; records itself on drop. Inert (zero-cost) when
/// tracing was disabled at open time.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attach an attribute. No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(a) = &mut self.0 {
            a.attrs.push((key, value.into()));
        }
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&a.id) {
                s.pop();
            } else {
                // Out-of-order drop (guard outlived its scope): remove
                // wherever it is so the stack stays usable.
                s.retain(|&id| id != a.id);
            }
        });
        CLOSED_SPANS.with(|c| c.set(c.get() + 1));
        let rec = SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            start_ns: a.start_ns,
            dur_ns,
            thread: a.thread,
            attrs: a.attrs,
        };
        crate::flight::record_span(&rec);
        if let Ok(mut records) = RECORDS.lock() {
            records.push(rec);
        }
    }
}

/// Open a span. Returns an inert guard (no allocation performed) when
/// tracing is disabled.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let start = Instant::now();
    SpanGuard(Some(ActiveSpan {
        id,
        parent,
        name: name.to_string(),
        start,
        start_ns: start.duration_since(epoch()).as_nanos() as u64,
        thread: thread_id(),
        attrs: Vec::new(),
    }))
}

/// Drain all finished spans out of the collector.
pub(crate) fn take_records() -> Vec<SpanRecord> {
    RECORDS
        .lock()
        .map(|mut g| std::mem::take(&mut *g))
        .unwrap_or_default()
}

/// Clone all finished spans without draining (live-snapshot path).
pub(crate) fn snapshot_records() -> Vec<SpanRecord> {
    RECORDS.lock().map(|g| g.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state with the exporter tests; the
    // crate-level `test_lock` serializes them.
    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        set_enabled(false);
        let before = take_records().len();
        {
            let mut sp = span("quiet");
            sp.attr("x", 1u64);
            assert!(!sp.is_recording());
        }
        assert_eq!(take_records().len(), before.min(0));
    }

    #[test]
    fn nesting_assigns_parents() {
        let _guard = crate::test_lock();
        set_enabled(true);
        take_records();
        {
            let _a = span("outer");
            {
                let mut b = span("inner");
                b.attr("n", 3u64);
            }
        }
        set_enabled(false);
        let recs = take_records();
        assert_eq!(recs.len(), 2);
        let inner = recs.iter().find(|r| r.name == "inner").unwrap();
        let outer = recs.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.attrs, vec![("n", AttrValue::Uint(3))]);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn closed_span_counter_advances() {
        let _guard = crate::test_lock();
        set_enabled(true);
        let before = thread_closed_spans();
        drop(span("counted"));
        assert_eq!(thread_closed_spans(), before + 1);
        set_enabled(false);
        take_records();
    }
}
