//! `parmem` — command-line front end to the whole reproduction.
//!
//! ```text
//! parmem assign <trace-file> [--backtrack] [--no-atoms]
//!               [--array-policy interleaved|hash|block|auto]
//!     Assign memory modules for a text access trace (see
//!     `parmem_core::trace_io` for the format) and print the module map.
//!     With `--array-policy`, the assignment is additionally wrapped in a
//!     unified `MemoryLayout` plan, verified (PM301–PM303), and its
//!     digest printed (traces carry no arrays, so the plan covers the
//!     scalar assignment alone).
//!
//! parmem compile <minilang-file> [-k <modules>] [--unroll <factor>]
//!                [--no-opt] [--stor 1|2|3]
//!     Compile a MiniLang program, assign modules, simulate on the RLIW,
//!     and report cycles / conflicts / speed-up.
//!
//! parmem run <minilang-file>
//!     Interpret a MiniLang program directly and print its output.
//!
//! parmem verify <file> [-k <modules>] [--json] [--backtrack] [--no-atoms]
//!                [--stor 1|2|3|exact] [--exact]
//!     Statically re-derive and check every pipeline invariant. The file is
//!     either a MiniLang program (full pipeline, all checks including the
//!     renaming proof and the static-vs-simulated differential) or a text
//!     access trace (assignment checks only). Violations are printed as
//!     stable `PMxxx` diagnostics; exit status is nonzero unless clean.
//!     With `--exact`, the target (a workload name or MiniLang file) is
//!     compiled, the exact solver produces an optimality certificate, and
//!     the certificate is independently re-validated (PM201–PM206).
//!
//! parmem exact [workload ...] [--all] [-k 2,4] [--budget-nodes N]
//!              [--budget-ms N] [--no-portfolio] [--seed S] [--jobs N]
//!              [--format text|json] [--out <file>] [--unroll <factor>]
//!              [--no-opt]
//!     Run the exact branch-and-bound assignment solver on each
//!     (workload, k) job, report certified bounds [lower, upper] on the
//!     minimum residual-conflict count, the paper heuristic's residual, and
//!     the optimality gap, and re-validate every certificate with
//!     `parmem verify`'s PM2xx checks. Output is byte-identical across
//!     `--jobs` settings (the default budget is clock-free).
//!
//! parmem batch [workload ...] [--all] [-k 2,4,8] [--stor 1|2|3|exact|all]
//!              [--jobs N] [--json|--csv] [--timings] [--out <file>]
//!              [--fail-fast] [--seed S] [--unroll <factor>] [--no-opt]
//!              [--array-policy interleaved|hash|block|auto]
//!     Run the full compile→assign→verify→simulate pipeline over every
//!     (workload, k, strategy) job on a work-stealing thread pool and print
//!     a deterministic report (text, JSON, or CSV). Without workload names,
//!     runs the paper's six benchmarks; `--all` adds the extended kernels.
//!     Stdout is byte-identical across `--jobs` settings; wall-time and
//!     allocation metrics appear only with `--timings` (stdout) or in the
//!     `--out` JSON file, and the batch wall time goes to stderr.
//!
//! parmem lint [workload-or-file ...] [--all] [-k 2,4] [--json] [--predict]
//!             [--deny] [--jobs N] [--out <file>] [--seed S]
//!             [--unroll <factor>] [--no-opt]
//!             [--array-policy interleaved|hash|block|auto]
//!     Run the static analyses (fixpoint liveness / reaching definitions /
//!     definite-init / constant & stride propagation) over each
//!     (program, k) job and print the `PMLxxx` lint diagnostics. With
//!     `--predict`, additionally compute the compile-time conflict
//!     estimates t_min / t_ave / t_max per program (the paper's Table 2
//!     quantities, derived without executing anything) and cross-check
//!     them against the simulator's measured per-module transfer counters.
//!     Without names, lints the paper's six benchmarks; `--all` adds the
//!     extended kernels; a positional that is not a workload name is read
//!     as a MiniLang file. Exit status is nonzero if any pipeline stage
//!     fails or a prediction falls outside the documented tolerance;
//!     `--deny` additionally fails on any lint diagnostic. Stdout is
//!     byte-identical across `--jobs` settings.
//!
//! parmem synth [-n <values>] [--edges <E>] [--cliques <C>]
//!              [--clique-size <S>] [--components <P>] [-k <modules>]
//!              [--seed S] [--jobs N] [--check] [--assign] [--out <file>]
//!     Generate a seeded synthetic scale workload (per-component spanning
//!     trees + planted cliques + random intra-component edges), build its
//!     conflict graph through the parallel CSR path, and print deterministic
//!     structure stats including the graph digest. `--check` rebuilds the
//!     graph from the emitted access trace and fails unless both builds are
//!     byte-identical; `--assign` runs the full assignment pipeline on the
//!     workload and reports the copy/conflict counts; `--out` writes the
//!     access trace in the text format `parmem assign` reads. Stdout is
//!     byte-identical across `--jobs` settings.
//!
//! parmem trace <workload-or-file> [-k <modules>] [--stor 1|2|3]
//!              [--format tree|json|chrome|metrics] [--out <file>]
//!              [--deterministic] [--validate] [--seed S]
//!              [--unroll <factor>] [--no-opt] [--backtrack] [--no-atoms]
//!              [--array-policy interleaved|hash|block|auto]
//!     Run one full pipeline job with span tracing enabled and export the
//!     profile: a human span tree (default), nested JSON, a Chrome
//!     trace-event file (load it in Perfetto or `chrome://tracing`), or a
//!     Prometheus-style metrics dump. `--deterministic` omits wall times
//!     and thread ids so the output is byte-identical across runs;
//!     `--validate` checks the Chrome trace for balanced begin/end nesting.
//!
//! parmem serve [--addr ADDR] [--jobs N] [--cache-bytes B]
//!              [--queue-depth D] [--max-requests N] [--metrics-only]
//!     Assignment-as-a-service daemon: binds ADDR (default 127.0.0.1:9185;
//!     port 0 picks a free port, printed to stderr) and serves
//!     `POST /v1/{assign,compile,exact,lint}` (JSON bodies naming a
//!     workload, inline MiniLang source, or — assign only — a seeded synth
//!     spec, plus the same knobs the CLI takes as flags), multiplexed onto
//!     a bounded pool of N pipeline workers. Responses are cached
//!     content-addressed (LRU under a byte budget B, e.g. `64M`; strong
//!     ETags, If-None-Match → 304); past D queued jobs the daemon answers
//!     `429 Retry-After` instead of queueing further. `GET /v1/stats`
//!     reports cache/queue/latency counters; `/metrics`, `/healthz`, and
//!     `/` serve the live-telemetry endpoint on the same listener
//!     (`--metrics-only` serves just those). SIGTERM or
//!     `POST /v1/shutdown` drains gracefully: stop admitting, finish
//!     in-flight work, exit. `--max-requests N` exits after N connections.
//!
//! parmem serve-metrics [--metrics-addr ADDR] [--max-requests N]
//!     Deprecated alias for `parmem serve --metrics-only` (old default
//!     port 127.0.0.1:9184); prints a deprecation note to stderr.
//!
//! Every subcommand also accepts:
//!   --profile             print a timed span tree + metrics dump to stderr
//!   --trace-out <file>    write a Chrome trace of the whole command
//!   --trace-summary <f>   write the deterministic span tree + metrics dump
//!                         (byte-identical across runs and `--jobs`)
//!
//! Live telemetry (long-running subcommands):
//!   --flight-dump <file>  arm the flight recorder: on panic or command
//!                         failure, write the last N events + live metric
//!                         snapshot as a Chrome-trace-compatible JSON
//!                         artifact (assign, compile, verify, batch, trace,
//!                         exact, lint, synth)
//!   --metrics-addr ADDR   serve live Prometheus text over HTTP for the
//!                         duration of the run (batch, exact, lint, synth);
//!                         set PARMEM_METRICS_LINGER_MS to hold the endpoint
//!                         open briefly after the work finishes
//!   PARMEM_HEARTBEAT=1    echo per-phase progress heartbeats (done/total,
//!                         elapsed, ETA) to stderr
//!
//! Unknown options are rejected with an error listing what the subcommand
//! accepts. All argument parsing goes through `parmem_driver::CommonArgs`,
//! and every pipeline-running subcommand drives the stages through
//! `parmem_driver::Session`.
//! ```

use std::process::ExitCode;

use parallel_memories::batch::{self, BatchOptions, ErrorPolicy};
use parallel_memories::core::prelude::*;
use parallel_memories::core::trace_io;
use parallel_memories::driver::{args, CommonArgs, Session, TelemetryConfig};
use parallel_memories::obs;
use parallel_memories::sim::ArrayPlacement;
use parallel_memories::verify;

// Per-stage allocation metrics are measured by the obs counting allocator;
// installing it here is what makes the `alloc_bytes`/`allocs` fields of
// `--timings` reports nonzero.
#[global_allocator]
static ALLOC: parallel_memories::batch::metrics::CountingAlloc =
    parallel_memories::batch::metrics::CountingAlloc;

type CliError = Box<dyn std::error::Error + Send + Sync>;

/// Per-subcommand argument contract: boolean flags and value-taking
/// options (the uniform profiling options are accepted implicitly).
fn arg_spec(cmd: &str) -> Option<(&'static [&'static str], &'static [&'static str])> {
    match cmd {
        "assign" => Some((
            &["--backtrack", "--no-atoms"],
            &["--array-policy", "--flight-dump"],
        )),
        "compile" => Some((
            &["--no-opt"],
            &["-k", "--stor", "--unroll", "--flight-dump"],
        )),
        "run" => Some((&[], &[])),
        "verify" => Some((
            &[
                "--json",
                "--backtrack",
                "--no-atoms",
                "--exact",
                "--no-portfolio",
            ],
            &[
                "-k",
                "--stor",
                "--budget-nodes",
                "--budget-ms",
                "--seed",
                "--flight-dump",
            ],
        )),
        "exact" => Some((
            &["--all", "--no-portfolio", "--no-opt"],
            &[
                "-k",
                "--budget-nodes",
                "--budget-ms",
                "--seed",
                "--jobs",
                "--format",
                "--out",
                "--unroll",
                "--flight-dump",
                "--metrics-addr",
            ],
        )),
        "batch" => Some((
            &[
                "--all",
                "--json",
                "--csv",
                "--timings",
                "--fail-fast",
                "--no-opt",
                "--backtrack",
                "--no-atoms",
            ],
            &[
                "-k",
                "--stor",
                "--jobs",
                "--out",
                "--seed",
                "--unroll",
                "--array-policy",
                "--flight-dump",
                "--metrics-addr",
            ],
        )),
        "lint" => Some((
            &["--all", "--json", "--predict", "--deny", "--no-opt"],
            &[
                "-k",
                "--jobs",
                "--out",
                "--seed",
                "--unroll",
                "--array-policy",
                "--flight-dump",
                "--metrics-addr",
            ],
        )),
        "trace" => Some((
            &[
                "--deterministic",
                "--validate",
                "--no-opt",
                "--backtrack",
                "--no-atoms",
            ],
            &[
                "-k",
                "--stor",
                "--format",
                "--out",
                "--seed",
                "--unroll",
                "--array-policy",
                "--flight-dump",
            ],
        )),
        "synth" => Some((
            &["--check", "--assign", "--backtrack", "--no-atoms"],
            &[
                "-n",
                "--edges",
                "--cliques",
                "--clique-size",
                "--components",
                "-k",
                "--seed",
                "--jobs",
                "--out",
                "--flight-dump",
                "--metrics-addr",
            ],
        )),
        "serve" => Some((
            &["--metrics-only"],
            &[
                "--addr",
                "--jobs",
                "--cache-bytes",
                "--queue-depth",
                "--max-requests",
                "--flight-dump",
            ],
        )),
        // Deprecated alias for `serve --metrics-only` (kept so existing
        // scrape setups keep working; prints a deprecation note).
        "serve-metrics" => Some((&[], &["--metrics-addr", "--max-requests"])),
        _ => None,
    }
}

fn main() -> ExitCode {
    // Register the exact solver so `--stor exact` works in every
    // subcommand that dispatches through `run_strategy`.
    parallel_memories::exact::install();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cmd = raw.first().map(String::as_str).unwrap_or("");

    let Some((flags, value_opts)) = arg_spec(cmd) else {
        eprintln!(
            "usage: parmem <assign|compile|run|verify|batch|trace|exact|lint|synth|serve> [file|workloads] [options]"
        );
        eprintln!("       see crate docs for details");
        return ExitCode::from(2);
    };
    let a = match CommonArgs::parse(cmd, &raw[1..], flags, value_opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("parmem: {e}");
            return ExitCode::from(2);
        }
    };

    // `trace` manages the collector itself; every other subcommand gets the
    // uniform profiling flags handled here so the instrumentation in the
    // library crates lights up without per-command plumbing.
    let trace_out = a.value("--trace-out").map(str::to_string);
    let trace_summary = a.value("--trace-summary").map(str::to_string);
    let profiling =
        cmd != "trace" && (a.flag("--profile") || trace_out.is_some() || trace_summary.is_some());
    if profiling {
        obs::set_enabled(true);
    }

    // Live telemetry: arm the flight recorder / `/metrics` endpoint before
    // dispatch so the hot paths stream into them. The serve daemon (and its
    // `serve-metrics` alias) binds its own endpoint and must not go through
    // the guard twice — it still gets the flight recorder.
    let telemetry_cfg = if cmd == "serve" || cmd == "serve-metrics" {
        TelemetryConfig {
            flight_dump: a.value("--flight-dump").map(std::path::PathBuf::from),
            ..TelemetryConfig::default()
        }
    } else {
        TelemetryConfig::from_args(&a)
    };
    let telemetry = match telemetry_cfg.start() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parmem: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match cmd {
        "assign" => cmd_assign(&a),
        "compile" => cmd_compile(&a),
        "run" => cmd_run(&a),
        "verify" => cmd_verify(&a),
        "batch" => cmd_batch(&a),
        "trace" => cmd_trace(&a),
        "exact" => cmd_exact(&a),
        "lint" => cmd_lint(&a),
        "synth" => cmd_synth(&a),
        "serve" => cmd_serve(&a, false),
        "serve-metrics" => cmd_serve(&a, true),
        _ => unreachable!("arg_spec gates the dispatch"),
    };

    let result = if profiling {
        obs::set_enabled(false);
        let session = obs::take();
        result.and_then(|()| {
            if let Some(path) = &trace_out {
                std::fs::write(path, session.chrome_trace())?;
            }
            if let Some(path) = &trace_summary {
                let mut summary = session.span_tree(false);
                summary.push('\n');
                summary.push_str(&session.metrics_text());
                std::fs::write(path, summary)?;
            }
            if a.flag("--profile") {
                eprint!("{}", session.span_tree(true));
                eprint!("{}", session.metrics_text());
            }
            Ok(())
        })
    } else {
        result
    };

    // A failing command is as dump-worthy as a panic: write the flight
    // artifact (if configured) before the endpoint lingers and shuts down.
    if let Err(e) = &result {
        telemetry.dump_error(&e.to_string());
    }
    telemetry.finish();

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("parmem: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_assign(a: &CommonArgs) -> Result<(), CliError> {
    let path = a.file_arg()?;
    let text = std::fs::read_to_string(&path)?;
    let named = trace_io::parse_trace(&text)?;
    let params = args::assign_params(a);
    let (assignment, report) = assign_trace(&named.trace, &params);

    let k = named.trace.modules;
    println!(
        "{} instructions, {} values, {} modules",
        named.trace.instructions.len(),
        named.names.len(),
        k
    );
    let header: Vec<String> = (0..k as u16).map(|m| format!("M{}", m + 1)).collect();
    let width = named
        .names
        .iter()
        .map(|n| n.len())
        .max()
        .unwrap_or(2)
        .max(5);
    println!("{:>width$}  {}", "value", header.join(" "));
    for v in named.trace.distinct_values() {
        let copies = assignment.copies(v);
        let row: Vec<String> = (0..k as u16)
            .map(|m| {
                if copies.contains(ModuleId(m)) {
                    format!("{:<2}", "x")
                } else {
                    format!("{:<2}", "-")
                }
            })
            .collect();
        println!("{:>width$}  {}", named.name(v), row.join(" "));
    }
    println!(
        "\nsingle-copy {}  duplicated {}  extra copies {}  residual conflicts {}",
        report.single_copy, report.multi_copy, report.extra_copies, report.residual_conflicts
    );
    if report.residual_conflicts > 0 {
        println!("warning: some instructions have more operands than modules");
    }
    if let Some(policy) = args::array_policy(a)? {
        // Text traces carry no array metadata, so the unified plan covers
        // the scalar assignment alone; arrays stay at zero.
        let layout = plan_layout(k, policy, assignment.clone(), &[]);
        let digest = layout.digest();
        let check = verify::verify_layout(&layout, digest);
        println!(
            "layout: policy={} arrays={} digest={:016x} ({})",
            layout.policy.name(),
            layout.arrays.len(),
            digest,
            if check.is_clean() { "clean" } else { "DIRTY" }
        );
        for d in &check.diagnostics {
            println!("  {d}");
        }
        if !check.is_clean() {
            return Err("layout verification failed".into());
        }
    }
    Ok(())
}

fn cmd_compile(a: &CommonArgs) -> Result<(), CliError> {
    let path = a.file_arg()?;
    let src = std::fs::read_to_string(&path)?;
    let k = a.parsed::<usize>("-k")?.unwrap_or(8);
    let session = Session::new(k)
        .with_strategy(args::strategy(a)?)
        .with_opts(args::compile_options(a)?);

    let prog = session.compile(&src)?;
    let trace = prog.sched.access_trace();
    println!(
        "compiled `{path}`: {} long words (static), {} data values, k={k}",
        trace.instructions.len(),
        trace.distinct_values().len()
    );
    let (assignment, report) = session.assign(&prog);
    println!(
        "{}: single-copy {}  duplicated {}  residual conflicts {}",
        session.strategy.name(),
        report.single_copy,
        report.multi_copy,
        report.residual_conflicts
    );
    let run = session.verified_run(&prog, &assignment, ArrayPlacement::Interleaved)?;
    println!(
        "executed {} words in {} cycles  (transfer time {}Δ, scalar-conflict words {})",
        run.stats.words, run.stats.cycles, run.stats.transfer_time, run.stats.scalar_conflict_words
    );
    println!(
        "speed-up over sequential: {:.0}%",
        (run.speedup - 1.0) * 100.0
    );
    if !run.stats.output.is_empty() {
        println!("\noutput ({} values):", run.stats.output.len());
        for v in &run.stats.output {
            println!("  {v}");
        }
    }
    Ok(())
}

fn cmd_verify(a: &CommonArgs) -> Result<(), CliError> {
    if a.flag("--exact") {
        return cmd_verify_exact(a);
    }
    let path = a.file_arg()?;
    let text = std::fs::read_to_string(&path)?;
    let params = args::assign_params(a);

    let report = if text.trim_start().starts_with("program") {
        // MiniLang source: run the whole pipeline and check all invariants.
        // `without_optimizer` matches the historical plain-compile behavior
        // of this subcommand (the checker re-derives, it does not optimize).
        let k = a.parsed::<usize>("-k")?.unwrap_or(8);
        let session = Session::new(k)
            .with_strategy(args::strategy(a)?)
            .with_params(params)
            .without_optimizer();
        let prog = session.compile(&text)?;
        let (assignment, areport) = session.assign(&prog);
        session.verify(&prog, &assignment, Some(&areport))
    } else {
        // Text access trace: assignment-level checks only.
        let named = trace_io::parse_trace(&text)?;
        let (assignment, areport) = assign_trace(&named.trace, &params);
        verify::verify_trace(&named.trace, &assignment, Some(&areport))
    };

    if a.flag("--json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} invariant violation(s)", report.diagnostics.len()).into())
    }
}

/// `parmem verify --exact`: solve one workload/file exactly and re-validate
/// the resulting certificate against the trace (PM201–PM206).
fn cmd_verify_exact(a: &CommonArgs) -> Result<(), CliError> {
    let target = a.target_arg()?;
    let (program, source) = args::resolve_program(&target)?;
    let k = a.parsed::<usize>("-k")?.unwrap_or(4);
    let session = Session::new(k).without_optimizer();
    let prog = session.compile(&source)?;
    let trace = prog.sched.access_trace();
    let cfg = args::exact_config(a)?;
    let cert = parallel_memories::exact::solve_certificate(&trace, &cfg);
    let heuristic =
        parallel_memories::exact::heuristic_single_copy_residual(&trace, &AssignParams::default());
    let report = verify::verify_certificate(&trace, &cert, Some(heuristic));
    if a.flag("--json") {
        println!(
            "{{\"schema\":\"parmem-verify-exact/v1\",\"program\":\"{program}\",\"heuristic_residual\":{heuristic},\"certificate\":{},\"report\":{}}}",
            cert.to_json(),
            report.to_json()
        );
    } else {
        println!(
            "{program} k={k}: certificate status={} bounds=[{},{}] heuristic={} gap={}",
            cert.status.as_str(),
            cert.lower,
            cert.upper,
            heuristic,
            heuristic as isize - cert.lower as isize
        );
        print!("{report}");
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} certificate violation(s)", report.diagnostics.len()).into())
    }
}

/// `parmem exact`: the gap sweep — exact bounds vs heuristic residual per
/// (workload, k), with every certificate independently re-validated.
fn cmd_exact(a: &CommonArgs) -> Result<(), CliError> {
    use parallel_memories::exact_report::{self, ExactJobSpec};

    let benches = args::select_benchmarks(a)?;
    let ks = args::k_list(a, &[2, 4])?;
    let cfg = args::exact_config(a)?;
    let opts = args::compile_options(a)?;

    let mut specs = Vec::with_capacity(benches.len() * ks.len());
    for b in &benches {
        for &k in &ks {
            specs.push(ExactJobSpec {
                program: b.name.to_string(),
                source: b.source.to_string(),
                k,
                cfg,
                opts,
                params: AssignParams::default(),
            });
        }
    }
    let results = exact_report::run_exact_jobs(specs, a.parsed("--jobs")?.unwrap_or(0));

    let format = a.value("--format").unwrap_or("text");
    let output = match format {
        "text" => exact_report::to_text(&results),
        "json" => {
            let mut j = exact_report::to_json(&results);
            j.push('\n');
            j
        }
        other => return Err(format!("bad --format `{other}` (text|json)").into()),
    };
    match a.value("--out") {
        Some(path) => std::fs::write(path, &output)?,
        None => print!("{output}"),
    }

    let failed = results
        .iter()
        .filter(|r| match &r.outcome {
            Ok(m) => m.verify_diags > 0,
            Err(_) => true,
        })
        .count();
    if failed == 0 {
        Ok(())
    } else {
        Err(format!("{failed} job(s) failed or produced dirty certificates").into())
    }
}

/// `parmem lint`: static PML diagnostics and (with `--predict`) the
/// compile-time conflict model cross-checked against the simulator.
fn cmd_lint(a: &CommonArgs) -> Result<(), CliError> {
    use parallel_memories::lint_report::{self, LintJobSpec};

    // Positionals may be workload names or MiniLang files; without any, the
    // paper corpus (or `--all` extended corpus) is linted.
    let programs: Vec<(String, String)> = if a.positionals().is_empty() {
        args::select_benchmarks(a)?
            .into_iter()
            .map(|b| (b.name.to_string(), b.source.to_string()))
            .collect()
    } else {
        a.positionals()
            .iter()
            .map(|t| args::resolve_program(t))
            .collect::<Result<_, _>>()?
    };
    let ks = args::k_list(a, &[4])?;
    let opts = args::compile_options(a)?;
    let predict = a.flag("--predict");
    let seed: u64 = a.parsed("--seed")?.unwrap_or(0xC0FFEE);
    let array_policy = args::array_policy(a)?;

    let mut specs = Vec::with_capacity(programs.len() * ks.len());
    for (program, source) in &programs {
        for &k in &ks {
            specs.push(LintJobSpec {
                program: program.clone(),
                source: source.clone(),
                k,
                opts,
                predict,
                seed,
                array_policy,
            });
        }
    }
    let results = lint_report::run_lint_jobs(specs, a.parsed("--jobs")?.unwrap_or(0));

    let output = if a.flag("--json") {
        let mut j = lint_report::to_json(&results);
        j.push('\n');
        j
    } else {
        lint_report::to_text(&results)
    };
    match a.value("--out") {
        Some(path) => std::fs::write(path, &output)?,
        None => print!("{output}"),
    }

    let failures = lint_report::failure_count(&results);
    let diags = lint_report::diag_count(&results);
    if failures > 0 {
        Err(format!("{failures} job(s) failed or predicted out of tolerance").into())
    } else if a.flag("--deny") && diags > 0 {
        Err(format!("{diags} lint diagnostic(s) with --deny").into())
    } else {
        Ok(())
    }
}

/// `parmem synth`: seeded synthetic scale workloads through the parallel
/// CSR build, with optional round-trip check and full-pipeline assignment.
/// Every line printed is deterministic in `(spec, seed)` — never in `--jobs`.
fn cmd_synth(a: &CommonArgs) -> Result<(), CliError> {
    use parallel_memories::core::graph::ConflictGraph;
    use parallel_memories::core::synth::{scale_trace, scale_workload, ScaleSpec};

    let values = a.parsed::<usize>("-n")?.unwrap_or(1_000);
    let spec = ScaleSpec {
        values,
        edges: a.parsed("--edges")?.unwrap_or(values.saturating_mul(4)),
        cliques: a.parsed("--cliques")?.unwrap_or(4),
        clique_size: a.parsed("--clique-size")?.unwrap_or(10),
        components: a.parsed("--components")?.unwrap_or(4),
        modules: a.parsed("-k")?.unwrap_or(8),
    };
    if spec.values < 2 * spec.components {
        return Err(format!(
            "-n {} is too small for --components {} (need at least 2 values per component)",
            spec.values, spec.components
        )
        .into());
    }
    let seed: u64 = a.parsed("--seed")?.unwrap_or(0xC0FFEE);
    let jobs: usize = a.parsed("--jobs")?.unwrap_or(0);

    let w = scale_workload(&spec, seed);
    let g = ConflictGraph::from_sorted_edges(spec.values, &w.edges, jobs);
    println!(
        "synth: {} values, {} edges ({} forced), {} components, {} cliques (size {}), k={}, seed {seed}",
        spec.values,
        w.edges.len(),
        w.forced_edges,
        spec.components,
        w.cliques.len(),
        spec.clique_size,
        spec.modules
    );
    let max_degree = (0..g.len() as u32).map(|v| g.degree(v)).max().unwrap_or(0);
    println!(
        "graph: digest {:016x}, max degree {max_degree}, {} components",
        g.digest(),
        g.connected_components().len()
    );

    let need_trace = a.flag("--check") || a.flag("--assign") || a.value("--out").is_some();
    let trace = need_trace.then(|| scale_trace(&spec, seed));

    if a.flag("--check") {
        let trace = trace.as_ref().expect("built above");
        let from_trace = ConflictGraph::build_with_jobs(trace, jobs);
        if from_trace.digest() != g.digest() {
            return Err("trace-built graph diverges from direct CSR assembly".into());
        }
        println!(
            "check: trace round-trip ok ({} instructions)",
            trace.instructions.len()
        );
    }
    if a.flag("--assign") {
        let trace = trace.as_ref().expect("built above");
        let params = AssignParams {
            jobs,
            ..args::assign_params(a)
        };
        let (_, r) = assign_trace(trace, &params);
        println!(
            "assign: single-copy {}  duplicated {}  extra copies {}  uncolored {}  atoms {}  residual conflicts {}",
            r.single_copy, r.multi_copy, r.extra_copies, r.uncolored, r.atoms, r.residual_conflicts
        );
    }
    if let Some(path) = a.value("--out") {
        let trace = trace.as_ref().expect("built above");
        std::fs::write(path, trace_io::format_trace(trace, None))?;
    }
    Ok(())
}

/// `parmem serve-metrics`: stand-alone `/metrics` endpoint. The first slice
/// of the ROADMAP daemon — it binds the same std-only HTTP server the
/// long-running subcommands use via `--metrics-addr`, enables the obs
/// collector, and blocks until the acceptor stops (`--max-requests N`
/// bounds it for scripted runs; Ctrl-C otherwise).
/// Parse a byte-size value with an optional `K`/`M`/`G` suffix
/// (binary: `64M` = 64 MiB).
fn parse_byte_size(text: &str) -> Result<usize, CliError> {
    let (digits, shift) = match text.as_bytes().last() {
        Some(b'K' | b'k') => (&text[..text.len() - 1], 10),
        Some(b'M' | b'm') => (&text[..text.len() - 1], 20),
        Some(b'G' | b'g') => (&text[..text.len() - 1], 30),
        _ => (text, 0),
    };
    let n: usize = digits
        .parse()
        .map_err(|_| format!("bad byte size `{text}` (expected e.g. 1048576, 64M, 1G)"))?;
    n.checked_shl(shift)
        .filter(|&v| v >> shift == n)
        .ok_or_else(|| format!("byte size `{text}` overflows").into())
}

/// `parmem serve` — the assignment-as-a-service daemon — and its
/// deprecated `serve-metrics` alias (which forces `--metrics-only` and
/// keeps the old default port so existing scrape setups still work).
fn cmd_serve(a: &CommonArgs, legacy: bool) -> Result<(), CliError> {
    let addr = if legacy {
        eprintln!("parmem: `serve-metrics` is deprecated; use `parmem serve --metrics-only`");
        a.value("--metrics-addr").unwrap_or("127.0.0.1:9184")
    } else {
        a.value("--addr").unwrap_or("127.0.0.1:9185")
    };
    let defaults = parallel_memories::serve::ServeConfig::default();
    let config = parallel_memories::serve::ServeConfig {
        addr: addr.to_string(),
        jobs: a.parsed::<usize>("--jobs")?.unwrap_or(0),
        cache_bytes: match a.value("--cache-bytes") {
            Some(text) => parse_byte_size(text)?,
            None => defaults.cache_bytes,
        },
        queue_depth: a
            .parsed::<usize>("--queue-depth")?
            .unwrap_or(defaults.queue_depth),
        max_requests: a.parsed::<u64>("--max-requests")?,
        metrics_only: legacy || a.flag("--metrics-only"),
        debug_hooks: std::env::var("PARMEM_SERVE_DEBUG").as_deref() == Ok("1"),
        ..defaults
    };
    // Live snapshots feed the daemon's /metrics page.
    obs::set_enabled(true);
    let daemon =
        parallel_memories::serve::Daemon::start(config).map_err(|e| format!("{addr}: {e}"))?;
    let name = if legacy { "serve-metrics" } else { "serve" };
    eprintln!(
        "{name}: listening on http://{}/metrics",
        daemon.local_addr()
    );
    daemon.wait();
    Ok(())
}

fn cmd_run(a: &CommonArgs) -> Result<(), CliError> {
    let path = a.file_arg()?;
    let src = std::fs::read_to_string(&path)?;
    let result = liw_ir::run_source(&src)?;
    for v in &result.output {
        println!("{v}");
    }
    eprintln!("({} steps)", result.steps);
    Ok(())
}

fn cmd_trace(a: &CommonArgs) -> Result<(), CliError> {
    let target = a.target_arg()?;
    let (program, source) = args::resolve_program(&target)?;
    let k = a.parsed::<usize>("-k")?.unwrap_or(8);
    let mut session = Session::new(k)
        .with_strategy(args::strategy(a)?)
        .with_opts(args::compile_options(a)?)
        .with_params(args::assign_params(a))
        .with_seed(a.parsed("--seed")?.unwrap_or(0xC0FFEE));
    if let Some(policy) = args::array_policy(a)? {
        session = session.with_array_policy(policy);
    }

    // Run the one job with the collector live, then drain it exactly once.
    obs::set_enabled(true);
    let result = session.run(program, source);
    obs::set_enabled(false);
    let obs_session = obs::take();

    let deterministic = a.flag("--deterministic");
    let format = a.value("--format").unwrap_or("tree");
    let output = match format {
        "tree" => obs_session.span_tree(!deterministic),
        "json" => obs_session.to_json(!deterministic),
        "chrome" => obs_session.chrome_trace(),
        "metrics" => obs_session.metrics_text(),
        other => return Err(format!("bad --format `{other}` (tree|json|chrome|metrics)").into()),
    };

    if a.flag("--validate") {
        let chrome = if format == "chrome" {
            output.clone()
        } else {
            obs_session.chrome_trace()
        };
        let stats = obs::validate_chrome_trace(&chrome).map_err(|e| format!("trace: {e}"))?;
        eprintln!(
            "trace ok: {} span(s) on {} thread(s), {} metadata event(s)",
            stats.spans, stats.threads, stats.metadata
        );
    }

    match a.value("--out") {
        Some(path) => std::fs::write(path, &output)?,
        None => print!("{output}"),
    }

    let outcome = &result.outcome;
    match outcome {
        Ok(out) => {
            eprintln!(
                "job {} k={} {}: {} words in {} cycles, speed-up {:.2}x",
                result.spec.program,
                result.spec.k,
                result.spec.strategy.name(),
                out.words,
                out.cycles,
                out.speedup
            );
            if let Some(p) = &out.planned {
                eprintln!(
                    "planned placement {}: {} array(s), transfer time {}, layout {:016x}",
                    p.policy, p.arrays, p.transfer_time, p.layout_digest
                );
            }
            Ok(())
        }
        Err(e) => Err(format!("job {} failed: {e}", result.spec.program).into()),
    }
}

fn cmd_batch(a: &CommonArgs) -> Result<(), CliError> {
    let benches = args::select_benchmarks(a)?;
    let ks = args::k_list(a, &[2, 4, 8])?;

    let strategies: Vec<Strategy> = match a.value("--stor") {
        None => vec![Strategy::Stor1],
        // The paper's three heuristics; `exact` must be asked for by name.
        Some("all") => Strategy::heuristics().collect(),
        Some(v) => match Strategy::parse(v) {
            Some(st) => vec![st],
            None => return Err(format!("bad --stor `{v}` (1|2|3|exact|all)").into()),
        },
    };

    let seed: u64 = a.parsed("--seed")?.unwrap_or(0xC0FFEE);
    let opts = args::compile_options(a)?;
    let params = args::assign_params(a);
    let array_policy = args::array_policy(a)?;

    let mut specs = batch::sweep_jobs(&benches, &ks, &strategies, seed);
    for s in &mut specs {
        s.opts = opts;
        s.params = params;
        s.array_policy = array_policy;
    }

    let batch_opts = BatchOptions {
        jobs: a.parsed("--jobs")?.unwrap_or(0),
        policy: if a.flag("--fail-fast") {
            ErrorPolicy::FailFast
        } else {
            ErrorPolicy::CollectAll
        },
    };
    let n_jobs = specs.len();
    let report = batch::run_batch(specs, &batch_opts);

    let timings = a.flag("--timings");
    if a.flag("--json") {
        println!("{}", report.to_json(timings));
    } else if a.flag("--csv") {
        print!("{}", report.to_csv(timings));
    } else {
        print!("{}", report.format_text_with(timings));
    }
    if let Some(path) = a.value("--out") {
        // The file report always carries timings — it is the CI artifact.
        std::fs::write(path, report.to_json(true))?;
    }
    eprintln!(
        "batch: {n_jobs} job(s) on {} worker(s) in {:.1} ms",
        report.workers,
        report.wall_ns as f64 / 1e6
    );
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} job(s) failed, {} skipped",
            report.failed_count(),
            report.skipped_count()
        )
        .into())
    }
}
