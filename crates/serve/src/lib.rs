//! parmem-serve: assignment-as-a-service.
//!
//! The ninth subsystem: a long-lived, std-only HTTP daemon that serves
//! the paper's pipelines over `POST /v1/{assign,compile,exact,lint}` —
//! the same deterministic JSON reports the CLI emits, multiplexed onto a
//! bounded [`ServicePool`](parmem_pool::ServicePool) of pipeline workers.
//!
//! What makes it a *service* rather than a CLI in a loop:
//!
//! - **Content-addressed caching** ([`cache`]): responses are pure
//!   functions of `(program digest, k, strategy, options digest)`, so
//!   they are cached under that address with LRU byte-budget eviction and
//!   strong-ETag `If-None-Match` revalidation (304s). A second,
//!   intermediate cache ([`intermediates`]) keys the *frontend stage's*
//!   TAC on `(source, unroll)` alone, so same-program/different-`k`
//!   requests skip re-parsing even though their response addresses
//!   differ.
//! - **Admission control** ([`daemon`]): a bounded queue in front of the
//!   worker pool answers `429 Retry-After` at saturation instead of
//!   queueing unboundedly; per-request wall and exact-solver budgets are
//!   clamped server-side; a panicking pipeline job costs one 500, never a
//!   worker.
//! - **Graceful drain**: SIGTERM or `POST /v1/shutdown` stops admission,
//!   finishes everything in flight, then exits.
//! - **One HTTP stack**: `/metrics`, `/healthz`, and `/v1/stats`
//!   (cache + queue + per-endpoint latency histograms, [`stats`]) ride
//!   the same listener — this crate absorbs what `parmem serve-metrics`
//!   used to run standalone.
//!
//! The protocol ([`protocol`]) is strict: unknown members are 400s naming
//! the accepted set, mirroring the CLI's exit-2 unknown-flag audit.

#![deny(missing_docs)]

pub mod cache;
pub mod daemon;
pub mod intermediates;
pub mod protocol;
pub mod stats;

pub use cache::{CacheKey, CacheStats, CachedResponse, ResponseCache};
pub use daemon::{Daemon, ServeConfig};
pub use intermediates::{IntermediateCache, IntermediateStats};
pub use protocol::{parse_request, ApiRequest, Endpoint, Source};
pub use stats::{EndpointStats, ServeStats};
