//! Measured-vs-modeled transfer time for every compile-time array
//! placement policy over the paper's benchmark corpus, emitted as
//! `BENCH_placement.json` for the CI artifact and checked against a
//! committed baseline.
//!
//! For each (workload, k, policy) the full pipeline runs with the policy
//! threaded through the unified `MemoryLayout` plan, and the simulator's
//! measured transfer time is recorded next to the uniform-placement
//! analytic model (the paper's `t_ave = Σ i·Δ·p(i)`). Interleaved, hash,
//! and block placements are fully deterministic — no random draw is
//! involved — so every measured number is exactly reproducible; the hash
//! policy is additionally required to land within the lint crate's
//! documented `T_AVE_TOLERANCE` of the uniform model (Hanlon-style
//! hashing is the scheme that statistical model describes).
//!
//! ```text
//! cargo run --release -p parmem-bench --bin placement \
//!     [-- [out.json] [--check-baseline <baseline.json>]]
//! ```
//!
//! With `--check-baseline`, exits nonzero if any measured transfer time
//! moved at all (the placements are deterministic; any drift is a real
//! behaviour change) or if a hash row left the model tolerance.

use std::fmt::Write as _;
use std::process::ExitCode;

use parmem_core::layout::ArrayPolicy;
use parmem_driver::{run_job, JobSpec};
use parmem_lint::T_AVE_TOLERANCE;

const KS: [usize; 2] = [4, 8];

struct Row {
    program: String,
    k: usize,
    policy: &'static str,
    arrays: usize,
    t_min: u64,
    t_model: f64,
    t_measured: u64,
    t_max: u64,
    layout_digest: u64,
}

impl Row {
    /// Relative error of the measured time against the uniform model.
    fn rel_err(&self) -> f64 {
        if self.t_model == 0.0 {
            return 0.0;
        }
        (self.t_measured as f64 - self.t_model).abs() / self.t_model
    }

    /// The statistical model describes uniform-random placement; only the
    /// hash policy approximates that, so only hash rows are held to the
    /// tolerance (interleaved/block are expected to beat or miss it).
    fn within(&self) -> bool {
        self.policy != "hash" || self.rel_err() <= T_AVE_TOLERANCE
    }
}

fn measure() -> Vec<Row> {
    let mut rows = Vec::new();
    for b in workloads::benchmarks() {
        for k in KS {
            for policy in ArrayPolicy::CONCRETE {
                let spec = JobSpec::new(b.name, b.source, k).with_array_policy(policy);
                let out = run_job(&spec)
                    .outcome
                    .unwrap_or_else(|e| panic!("{} k={k} {}: {e}", b.name, policy.name()));
                let planned = out
                    .planned
                    .unwrap_or_else(|| panic!("{} k={k}: no planned summary", b.name));
                rows.push(Row {
                    program: b.name.to_string(),
                    k,
                    policy: planned.policy,
                    arrays: planned.arrays,
                    t_min: out.table2.t_min,
                    t_model: planned.t_ave_model,
                    t_measured: planned.transfer_time,
                    t_max: out.table2.t_max,
                    layout_digest: planned.layout_digest,
                });
            }
        }
    }
    rows
}

fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("{\"schema\":\"parmem-bench-placement/v1\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"program\":\"{}\",\"k\":{},\"policy\":\"{}\",\"arrays\":{},\"t_min\":{},\
             \"t_model\":{:.4},\"t_measured\":{},\"t_max\":{},\"rel_err\":{:.4},\
             \"within\":{},\"layout_digest\":\"{:016x}\"}}",
            r.program,
            r.k,
            r.policy,
            r.arrays,
            r.t_min,
            r.t_model,
            r.t_measured,
            r.t_max,
            r.rel_err(),
            r.within(),
            r.layout_digest
        );
    }
    s.push_str("]}\n");
    s
}

fn format_table(rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>2} {:<11} {:>6} | {:>8} {:>10} {:>10} {:>8} {:>8} | model",
        "program", "k", "policy", "arrays", "t_min", "t_model", "t_meas", "t_max", "rel_err"
    );
    let _ = writeln!(s, "{}", "-".repeat(92));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>2} {:<11} {:>6} | {:>8} {:>10.1} {:>10} {:>8} {:>8.4} | {}",
            r.program,
            r.k,
            r.policy,
            r.arrays,
            r.t_min,
            r.t_model,
            r.t_measured,
            r.t_max,
            r.rel_err(),
            if r.within() { "ok" } else { "OUT" }
        );
    }
    s
}

/// Minimal field extraction from our own fixed-format row objects — the
/// baseline is always a previous run of this binary, so no general JSON
/// parser is needed (the workspace is registry-free by design).
fn baseline_rows(text: &str) -> Vec<(String, usize, String, u64)> {
    fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\":");
        let start = obj.find(&pat)? + pat.len();
        let rest = &obj[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim_matches('"'))
    }
    text.split("{\"program\":")
        .skip(1)
        .filter_map(|chunk| {
            let obj = format!("{{\"program\":{chunk}");
            Some((
                field(&obj, "program")?.to_string(),
                field(&obj, "k")?.parse().ok()?,
                field(&obj, "policy")?.to_string(),
                field(&obj, "t_measured")?.parse().ok()?,
            ))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--check-baseline")
        .and_then(|i| args.get(i + 1).cloned());
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != baseline_path.as_deref())
        .cloned()
        .unwrap_or_else(|| "BENCH_placement.json".to_string());

    let rows = measure();
    print!("{}", format_table(&rows));
    std::fs::write(&out_path, to_json(&rows)).expect("write report");
    eprintln!("wrote {out_path}");

    if let Some(out) = rows.iter().find(|r| !r.within()) {
        eprintln!(
            "FAIL: {} k={} hash measured {} vs model {:.1} — rel err {:.4} > {}",
            out.program,
            out.k,
            out.t_measured,
            out.t_model,
            out.rel_err(),
            T_AVE_TOLERANCE
        );
        return ExitCode::FAILURE;
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        let base = baseline_rows(&text);
        let mut regressions = 0;
        for r in &rows {
            match base
                .iter()
                .find(|(p, k, pol, _)| *p == r.program && *k == r.k && *pol == r.policy)
            {
                None => {
                    eprintln!(
                        "note: {} k={} {} not in baseline (new row)",
                        r.program, r.k, r.policy
                    );
                }
                Some((_, _, _, base_t)) => {
                    // Planned placements are deterministic: any movement in
                    // the measured transfer time is a behaviour change, not
                    // noise, so the check is exact equality.
                    if r.t_measured != *base_t {
                        eprintln!(
                            "REGRESSION: {} k={} {} t_measured {} != baseline {}",
                            r.program, r.k, r.policy, r.t_measured, base_t
                        );
                        regressions += 1;
                    }
                }
            }
        }
        if regressions > 0 {
            eprintln!("FAIL: {regressions} drift(s) vs {path}");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed ({path})");
    }
    ExitCode::SUCCESS
}
