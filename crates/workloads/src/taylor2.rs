//! TAYLOR2 — Taylor coefficients of a *real* analytic function
//! (paper §3, test case 2).
//!
//! Computes the series of two functions of a real input series `g`:
//! `f = exp(g)` (product recurrence) and `h = 1/(1-g)` (geometric
//! recurrence), printing both.

/// MiniLang source of TAYLOR2.
pub const SRC: &str = r#"
program taylor2;
var
  g: array[32] of real;
  f: array[32] of real;
  h: array[32] of real;
  n, i, kk: int;
  s, t: real;
begin
  n := 24;
  { input series: g(x) with g0 = 0 so 1/(1-g) is well defined }
  g[0] := 0.0;
  for i := 1 to n do
    g[i] := 1.0 / itor(i * i + 1);

  { f = exp(g):  n*f(n) = sum over k=1..n of k*g(k)*f(n-k) }
  f[0] := exp(g[0]);
  for i := 1 to n do begin
    s := 0.0;
    for kk := 1 to i do
      s := s + itor(kk) * g[kk] * f[i - kk];
    f[i] := s / itor(i);
  end;

  { h = 1/(1-g):  h(n) = sum over k=1..n of g(k)*h(n-k),  h(0) = 1/(1-g(0)) }
  h[0] := 1.0 / (1.0 - g[0]);
  for i := 1 to n do begin
    t := 0.0;
    for kk := 1 to i do
      t := t + g[kk] * h[i - kk];
    h[i] := t * h[0];
  end;

  for i := 0 to n do print f[i];
  for i := 0 to n do print h[i];
end.
"#;

/// Rust reference for the same two recurrences.
pub fn expected() -> Vec<f64> {
    let n = 24usize;
    let mut g = vec![0.0f64; n + 1];
    for (i, gi) in g.iter_mut().enumerate().skip(1) {
        *gi = 1.0 / ((i * i) as f64 + 1.0);
    }
    let mut f = vec![0.0f64; n + 1];
    f[0] = g[0].exp();
    for i in 1..=n {
        let s: f64 = (1..=i).map(|k| k as f64 * g[k] * f[i - k]).sum();
        f[i] = s / i as f64;
    }
    let mut h = vec![0.0f64; n + 1];
    h[0] = 1.0 / (1.0 - g[0]);
    for i in 1..=n {
        let t: f64 = (1..=i).map(|k| g[k] * h[i - k]).sum();
        h[i] = t * h[0];
    }
    f.into_iter().chain(h).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::Value;

    #[test]
    fn matches_reference_implementation() {
        let out = liw_ir::run_source(SRC).unwrap().output;
        let exp = expected();
        assert_eq!(out.len(), exp.len());
        for (got, want) in out.iter().zip(&exp) {
            match got {
                Value::Real(v) => {
                    assert!((v - want).abs() < 1e-9, "got {v}, want {want}")
                }
                other => panic!("expected real, got {other:?}"),
            }
        }
    }

    #[test]
    fn exp_of_zero_series_head_is_one() {
        let out = liw_ir::run_source(SRC).unwrap().output;
        match out[0] {
            Value::Real(v) => assert!((v - 1.0).abs() < 1e-12, "f0 = e^0 = 1, got {v}"),
            ref other => panic!("{other:?}"),
        }
    }
}
