//! Criterion benchmarks for the Fig. 4 coloring heuristic: scaling with
//! graph size (the paper claims O((n+e)·log(n+e))) and comparison with
//! plain first-fit coloring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parmem_core::baseline::first_fit_coloring;
use parmem_core::coloring::{color_graph, ModuleChoice};
use parmem_core::graph::ConflictGraph;
use parmem_core::synth::{random_trace, TraceSpec};
use parmem_core::types::ModuleSet;

fn bench_coloring_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_scaling");
    for (values, instructions) in [(64, 200), (256, 800), (1024, 3200), (4096, 12800)] {
        let spec = TraceSpec {
            values,
            instructions,
            modules: 8,
            min_ops: 2,
            max_ops: 8,
            skew: 0.8,
        };
        let trace = random_trace(&spec, 42);
        let g = ConflictGraph::build(&trace);
        group.bench_with_input(BenchmarkId::new("fig4_heuristic", values), &g, |b, g| {
            b.iter(|| color_graph(g, 8, ModuleChoice::LowestIndex, |_| ModuleSet::EMPTY))
        });
        group.bench_with_input(BenchmarkId::new("graph_build", values), &trace, |b, t| {
            b.iter(|| ConflictGraph::build(t))
        });
    }
    group.finish();
}

fn bench_coloring_vs_first_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_vs_first_fit");
    let spec = TraceSpec {
        values: 512,
        instructions: 1600,
        modules: 8,
        min_ops: 3,
        max_ops: 8,
        skew: 0.8,
    };
    let trace = random_trace(&spec, 7);
    let g = ConflictGraph::build(&trace);
    group.bench_function("fig4_heuristic", |b| {
        b.iter(|| color_graph(&g, 8, ModuleChoice::LowestIndex, |_| ModuleSet::EMPTY))
    });
    group.bench_function("first_fit", |b| b.iter(|| first_fit_coloring(&trace)));
    group.finish();
}

criterion_group!(benches, bench_coloring_scaling, bench_coloring_vs_first_fit);
criterion_main!(benches);
