//! Cache correctness beyond the unit tests: the LRU byte-budget cache
//! against a naive reference model under arbitrary op sequences, exact
//! hit accounting under a many-threaded hammer, and the determinism
//! contract the whole design rests on — a cached replay is byte-identical
//! to a fresh computation of the same request.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Mutex;

use parmem_serve::cache::{CacheKey, ResponseCache};
use parmem_serve::{Daemon, ServeConfig};
use proptest::prelude::*;

fn key(n: u64) -> CacheKey {
    CacheKey {
        endpoint: 0,
        program: n,
        k: 4,
        strategy: 0,
        opts: 0,
    }
}

/// The naive model: a flat map of `(body, last-used tick)` with the same
/// tick discipline as the real cache, evicting the minimum tick while
/// over budget.
struct ModelCache {
    budget: usize,
    tick: u64,
    entries: std::collections::BTreeMap<u64, (String, u64)>,
    hits: u64,
    misses: u64,
}

impl ModelCache {
    fn new(budget: usize) -> ModelCache {
        ModelCache {
            budget,
            tick: 0,
            entries: std::collections::BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn bytes(&self) -> usize {
        self.entries.values().map(|(b, _)| b.len()).sum()
    }

    fn lookup(&mut self, k: u64) -> Option<String> {
        self.tick += 1;
        match self.entries.get_mut(&k) {
            Some((body, tick)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(body.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, k: u64, body: String) {
        if body.len() > self.budget {
            return;
        }
        self.entries.remove(&k);
        while self.bytes() + body.len() > self.budget {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .expect("over budget implies an entry")
                .0;
            self.entries.remove(&victim);
        }
        self.tick += 1;
        self.entries.insert(k, (body, self.tick));
    }
}

proptest! {
    /// Any interleaving of lookups and inserts (op 0 = lookup, 1 = insert)
    /// over a small key space and a tight budget: the real cache and the
    /// model agree on membership, bodies, byte usage, and hit/miss counts
    /// after every operation.
    #[test]
    fn lru_matches_reference_model(
        budget in 16usize..128,
        ops in proptest::collection::vec((0u8..2, 0u64..6, 1usize..48), 1..120),
    ) {
        let mut real = ResponseCache::new(budget);
        let mut model = ModelCache::new(budget);
        for (op, k, len) in ops {
            if op == 0 {
                let got = real.lookup(&key(k)).map(|c| c.body);
                let want = model.lookup(k);
                prop_assert_eq!(got, want, "lookup({})", k);
            } else {
                let body: String = "x".repeat(len) + &k.to_string();
                real.insert(key(k), body.clone());
                model.insert(k, body);
            }
            prop_assert_eq!(real.bytes(), model.bytes());
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert!(real.bytes() <= budget);
            let s = real.stats();
            prop_assert_eq!((s.hits, s.misses), (model.hits, model.misses));
        }
    }
}

/// Many threads against the shared (mutex-wrapped, as the daemon holds it)
/// cache: with a budget too large to evict, every lookup of a pre-inserted
/// key is a hit and every other a miss — the counters must account for
/// each one exactly, whatever the interleaving.
#[test]
fn concurrent_hammer_counts_every_hit_and_miss() {
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 200;
    let cache = Mutex::new(ResponseCache::new(1 << 20));
    for k in 0..THREADS {
        cache
            .lock()
            .unwrap()
            .insert(key(k), format!("body-{k}"))
            .expect("fits");
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            s.spawn(move || {
                for i in 0..ROUNDS {
                    let present = (t + i) % THREADS;
                    let hit = cache.lock().unwrap().lookup(&key(present));
                    assert_eq!(hit.expect("pre-inserted").body, format!("body-{present}"));
                    assert!(cache.lock().unwrap().lookup(&key(1000 + t)).is_none());
                }
            });
        }
    });
    let c = cache.lock().unwrap();
    assert_eq!(c.stats().hits, THREADS * ROUNDS);
    assert_eq!(c.stats().misses, THREADS * ROUNDS);
    assert_eq!(c.len(), THREADS as usize);
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut resp = String::new();
    conn.read_to_string(&mut resp).unwrap();
    let (head, payload) = resp.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status");
    (status, head.to_string(), payload.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut resp = String::new();
    conn.read_to_string(&mut resp).unwrap();
    let (head, payload) = resp.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status");
    (status, head.to_string(), payload.to_string())
}

fn test_daemon() -> Daemon {
    Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
}

/// The caching bargain itself: a cached replay must be byte-identical to
/// a fresh computation. Two independent daemons, same request — daemon A
/// answers from cache on its second call, daemon B computes fresh; all
/// bodies and ETags agree.
#[test]
fn cached_replay_is_byte_identical_to_fresh_compute() {
    let a = test_daemon();
    let b = test_daemon();
    for body in [
        r#"{"workload":"FFT","k":4}"#,
        r#"{"workload":"SORT","k":2,"strategy":"3","seed":9}"#,
        r#"{"synth":{"values":500,"components":2},"k":8}"#,
    ] {
        let (s1, h1, fresh_a) = post(a.local_addr(), "/v1/assign", body);
        assert_eq!(s1, 200, "{fresh_a}");
        assert!(h1.contains("X-Parmem-Cache: miss"));
        let (_, h2, cached_a) = post(a.local_addr(), "/v1/assign", body);
        assert!(h2.contains("X-Parmem-Cache: hit"));
        let (_, _, fresh_b) = post(b.local_addr(), "/v1/assign", body);
        assert_eq!(cached_a, fresh_a, "replay differs from its own compute");
        assert_eq!(
            cached_a, fresh_b,
            "replay differs from an independent daemon"
        );
        let etag = |h: &str| {
            h.lines()
                .find_map(|l| l.strip_prefix("ETag: ").map(str::to_string))
                .expect("etag")
        };
        assert_eq!(etag(&h1), etag(&h2));
    }
    a.shutdown();
    b.shutdown();
}

/// Mixed traffic from many clients against one daemon: every response is
/// a 200, bodies for the same request are identical across threads, and
/// the daemon's accounting adds up (`hits + misses == requests`).
#[test]
fn daemon_survives_concurrent_mixed_traffic() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 6;
    let daemon = test_daemon();
    let addr = daemon.local_addr();
    let requests = [
        r#"{"workload":"FFT","k":4}"#,
        r#"{"workload":"SORT","k":4}"#,
        r#"{"workload":"COLOR","k":2}"#,
    ];
    let bodies: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    (0..ROUNDS)
                        .map(|i| {
                            let req = requests[(t + i) % requests.len()];
                            let (status, _, body) = post(addr, "/v1/assign", req);
                            assert_eq!(status, 200, "{body}");
                            format!("{req}\u{0}{body}")
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Same request → same body, across every thread.
    let mut seen: std::collections::BTreeMap<&str, &str> = Default::default();
    for tagged in bodies.iter().flatten() {
        let (req, body) = tagged.split_once('\u{0}').unwrap();
        assert_eq!(*seen.entry(req).or_insert(body), body, "{req}");
    }
    assert_eq!(seen.len(), requests.len());

    // The daemon's accounting covers every request: each was either a
    // cache hit or a computed miss, and each distinct request computed at
    // least once.
    let (_, _, stats) = get(addr, "/v1/stats");
    let field = |name: &str| -> u64 {
        stats
            .split(&format!("\"{name}\":"))
            .nth(1)
            .and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|d| d.parse().ok())
            })
            .unwrap_or_else(|| panic!("no `{name}` in {stats}"))
    };
    assert_eq!(
        field("hits") + field("misses"),
        (THREADS * ROUNDS) as u64,
        "{stats}"
    );
    assert!(field("misses") >= requests.len() as u64, "{stats}");
    assert_eq!(field("panicked"), 0, "{stats}");
    daemon.shutdown();
}
