//! Per-endpoint request counters and latency histograms for `/v1/stats`
//! and the Prometheus exposition.
//!
//! All cells are relaxed atomics — the recording path is a handful of
//! `fetch_add`s on the connection thread, and readers tolerate slightly
//! stale values (these are operational gauges, not part of any
//! deterministic report).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds of the latency buckets, in microseconds. The last bucket
/// is implicit `+Inf`. Spans sub-millisecond cache hits through
/// multi-second exact solves.
pub const BUCKET_BOUNDS_US: [u64; 8] = [
    250, 1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000, 4_096_000,
];

/// The endpoints tracked individually; everything else lands in `other`.
pub const ENDPOINTS: [&str; 7] = [
    "assign", "compile", "exact", "lint", "stats", "metrics", "other",
];

/// Counters and a latency histogram for one endpoint.
#[derive(Default)]
pub struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
}

impl EndpointStats {
    fn record(&self, status: u16, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with status >= 400.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn json(&self) -> String {
        let mut s = format!(
            "{{\"requests\":{},\"errors\":{},\"latency_us\":{{\"sum\":{},\"buckets\":[",
            self.requests(),
            self.errors(),
            self.sum_us.load(Ordering::Relaxed)
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let le = BUCKET_BOUNDS_US
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "\"+Inf\"".to_string());
            let _ = write!(s, "[{},{}]", le, b.load(Ordering::Relaxed));
        }
        s.push_str("]}}");
        s
    }
}

/// Per-endpoint stats for the whole daemon.
#[derive(Default)]
pub struct ServeStats {
    endpoints: [EndpointStats; ENDPOINTS.len()],
}

impl ServeStats {
    /// The index to pass to [`record`](ServeStats::record) for a path's
    /// endpoint label.
    pub fn endpoint_index(label: &str) -> usize {
        ENDPOINTS
            .iter()
            .position(|&e| e == label)
            .unwrap_or(ENDPOINTS.len() - 1)
    }

    /// Record one finished request.
    pub fn record(&self, endpoint: usize, status: u16, elapsed: Duration) {
        self.endpoints[endpoint.min(ENDPOINTS.len() - 1)].record(status, elapsed);
    }

    /// Stats for one endpoint (by [`endpoint_index`](Self::endpoint_index)).
    pub fn endpoint(&self, idx: usize) -> &EndpointStats {
        &self.endpoints[idx.min(ENDPOINTS.len() - 1)]
    }

    /// The `"endpoints"` member of the `/v1/stats` document.
    pub fn json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, e)) in ENDPOINTS.iter().zip(&self.endpoints).enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", name, e.json());
        }
        s.push('}');
        s
    }

    /// Append Prometheus families for request counts, error counts, and
    /// the latency histogram (one `le`-labelled series per bucket).
    pub fn prometheus(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "# HELP parmem_serve_requests_total requests served, by endpoint"
        );
        let _ = writeln!(out, "# TYPE parmem_serve_requests_total counter");
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            let _ = writeln!(
                out,
                "parmem_serve_requests_total{{endpoint=\"{name}\"}} {}",
                e.requests()
            );
        }
        let _ = writeln!(
            out,
            "# HELP parmem_serve_errors_total responses with status >= 400, by endpoint"
        );
        let _ = writeln!(out, "# TYPE parmem_serve_errors_total counter");
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            let _ = writeln!(
                out,
                "parmem_serve_errors_total{{endpoint=\"{name}\"}} {}",
                e.errors()
            );
        }
        let _ = writeln!(
            out,
            "# HELP parmem_serve_latency_us request latency histogram, microseconds"
        );
        let _ = writeln!(out, "# TYPE parmem_serve_latency_us histogram");
        for (name, e) in ENDPOINTS.iter().zip(&self.endpoints) {
            let mut cumulative = 0u64;
            for (i, b) in e.buckets.iter().enumerate() {
                cumulative += b.load(Ordering::Relaxed);
                let le = BUCKET_BOUNDS_US
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = writeln!(
                    out,
                    "parmem_serve_latency_us_bucket{{endpoint=\"{name}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "parmem_serve_latency_us_sum{{endpoint=\"{name}\"}} {}",
                e.sum_us.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "parmem_serve_latency_us_count{{endpoint=\"{name}\"}} {cumulative}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bucket_and_counters() {
        let s = ServeStats::default();
        let assign = ServeStats::endpoint_index("assign");
        s.record(assign, 200, Duration::from_micros(100)); // bucket 0
        s.record(assign, 429, Duration::from_millis(2)); // bucket 2 (<=4000us)
        s.record(assign, 200, Duration::from_secs(10)); // +Inf bucket
        let e = s.endpoint(assign);
        assert_eq!(e.requests(), 3);
        assert_eq!(e.errors(), 1);
        assert_eq!(e.buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(e.buckets[2].load(Ordering::Relaxed), 1);
        assert_eq!(e.buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unknown_labels_fold_into_other() {
        assert_eq!(ServeStats::endpoint_index("nonsense"), ENDPOINTS.len() - 1);
    }

    #[test]
    fn json_and_prometheus_render_every_endpoint() {
        let s = ServeStats::default();
        s.record(ServeStats::endpoint_index("exact"), 200, Duration::ZERO);
        let j = s.json();
        for name in ENDPOINTS {
            assert!(j.contains(&format!("\"{name}\":")), "{j}");
        }
        let mut p = String::new();
        s.prometheus(&mut p);
        assert!(p.contains("parmem_serve_requests_total{endpoint=\"exact\"} 1"));
        assert!(p.contains("le=\"+Inf\""));
        // HELP precedes TYPE for every family (Prometheus conformance).
        for fam in [
            "parmem_serve_requests_total",
            "parmem_serve_errors_total",
            "parmem_serve_latency_us",
        ] {
            let help = p.find(&format!("# HELP {fam} ")).unwrap();
            let ty = p.find(&format!("# TYPE {fam} ")).unwrap();
            assert!(help < ty, "{fam}");
        }
    }
}
