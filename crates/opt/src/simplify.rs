//! Control-flow simplification: fold constant branches, thread trivial
//! jumps, merge straight-line block pairs, and drop unreachable blocks.
//! Bigger basic blocks give the LIW list scheduler more to pack.

use std::collections::HashMap;

use liw_ir::tac::{Block, BlockId, Operand, TacProgram, Terminator, Value};

/// Run CFG simplification to a fixpoint. Returns the rewritten program and
/// the number of rewrites applied.
pub fn simplify_cfg(p: &TacProgram) -> (TacProgram, usize) {
    let mut cur = p.clone();
    let mut total = 0usize;
    loop {
        let mut changed = 0usize;
        changed += fold_constant_branches(&mut cur);
        changed += thread_empty_jumps(&mut cur);
        changed += merge_linear_pairs(&mut cur);
        changed += drop_unreachable(&mut cur);
        total += changed;
        if changed == 0 {
            break;
        }
    }
    (cur, total)
}

/// `if const goto A else B` → `goto A|B`.
fn fold_constant_branches(p: &mut TacProgram) -> usize {
    let mut n = 0;
    for b in &mut p.blocks {
        if let Terminator::Branch {
            cond: Operand::Const(c),
            then_to,
            else_to,
        } = &b.term
        {
            let target = if matches!(c, Value::Bool(true) | Value::Int(1)) || c.as_bool() {
                *then_to
            } else {
                *else_to
            };
            b.term = Terminator::Jump(target);
            n += 1;
        }
    }
    n
}

/// Retarget edges that point at an empty block whose terminator is an
/// unconditional jump.
fn thread_empty_jumps(p: &mut TacProgram) -> usize {
    // Resolve chains with cycle protection.
    let resolve = |p: &TacProgram, start: BlockId| -> BlockId {
        let mut seen = vec![false; p.blocks.len()];
        let mut cur = start;
        loop {
            if seen[cur.index()] {
                return cur; // cycle of empty jumps: leave as is
            }
            seen[cur.index()] = true;
            let b = &p.blocks[cur.index()];
            match (&b.instrs.is_empty(), &b.term) {
                (true, Terminator::Jump(t)) if *t != cur => cur = *t,
                _ => return cur,
            }
        }
    };

    let mut n = 0;
    let targets: Vec<BlockId> = (0..p.blocks.len() as u32).map(BlockId).collect();
    let resolved: HashMap<BlockId, BlockId> = targets.iter().map(|&t| (t, resolve(p, t))).collect();

    let entry_resolved = resolved[&p.entry];
    if entry_resolved != p.entry {
        p.entry = entry_resolved;
        n += 1;
    }
    for b in &mut p.blocks {
        match &mut b.term {
            Terminator::Jump(t) => {
                let r = resolved[t];
                if r != *t {
                    *t = r;
                    n += 1;
                }
            }
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                let rt = resolved[then_to];
                if rt != *then_to {
                    *then_to = rt;
                    n += 1;
                }
                let re = resolved[else_to];
                if re != *else_to {
                    *else_to = re;
                    n += 1;
                }
            }
            Terminator::Halt => {}
        }
    }
    n
}

/// Merge `a -> b` when `a` jumps unconditionally to `b` and `b` has no
/// other predecessors (and `b != a`, `b != entry`).
fn merge_linear_pairs(p: &mut TacProgram) -> usize {
    // Count predecessors.
    let nb = p.blocks.len();
    let mut preds = vec![0usize; nb];
    for b in &p.blocks {
        for s in b.term.successors() {
            preds[s.index()] += 1;
        }
    }
    let mut n = 0;
    for a in 0..nb {
        let target = match &p.blocks[a].term {
            Terminator::Jump(t) => *t,
            _ => continue,
        };
        if target.index() == a || target == p.entry || preds[target.index()] != 1 {
            continue;
        }
        // Move b's contents into a.
        let b_block = std::mem::replace(
            &mut p.blocks[target.index()],
            Block {
                instrs: Vec::new(),
                term: Terminator::Halt,
            },
        );
        let a_block = &mut p.blocks[a];
        a_block.instrs.extend(b_block.instrs);
        a_block.term = b_block.term;
        // b is now unreachable; preds bookkeeping for one merge per pass is
        // enough — iterate at the driver level.
        n += 1;
        break;
    }
    n
}

/// Remove unreachable blocks, compacting ids.
fn drop_unreachable(p: &mut TacProgram) -> usize {
    let nb = p.blocks.len();
    let mut reach = vec![false; nb];
    let mut stack = vec![p.entry];
    reach[p.entry.index()] = true;
    while let Some(b) = stack.pop() {
        for s in p.blocks[b.index()].term.successors() {
            if !reach[s.index()] {
                reach[s.index()] = true;
                stack.push(s);
            }
        }
    }
    let dropped = reach.iter().filter(|&&r| !r).count();
    if dropped == 0 {
        return 0;
    }
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    let mut new_blocks = Vec::with_capacity(nb - dropped);
    for (i, b) in p.blocks.iter().enumerate() {
        if reach[i] {
            remap.insert(BlockId(i as u32), BlockId(new_blocks.len() as u32));
            new_blocks.push(b.clone());
        }
    }
    for b in &mut new_blocks {
        match &mut b.term {
            Terminator::Jump(t) => *t = remap[t],
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                *then_to = remap[then_to];
                *else_to = remap[else_to];
            }
            Terminator::Halt => {}
        }
    }
    p.entry = remap[&p.entry];
    p.blocks = new_blocks;
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::{compile, run};

    fn opt(src: &str) -> (TacProgram, TacProgram) {
        let p = compile(src).unwrap();
        let (q, _) = simplify_cfg(&p);
        assert_eq!(
            run(&p).unwrap().output,
            run(&q).unwrap().output,
            "simplify changed semantics\n{}",
            q.to_text()
        );
        (p, q)
    }

    #[test]
    fn merges_if_diamond_after_execution_preserved() {
        let (p, q) = opt("program t; var x: int;
             begin
               x := 1;
               if x > 0 then x := 2; else x := 3;
               print x;
             end.");
        assert!(q.blocks.len() <= p.blocks.len());
    }

    #[test]
    fn constant_branch_folds_and_dead_arm_drops() {
        // The front end folds `2 > 1` to a constant operand; simplify must
        // turn the branch into a jump and drop the dead arm.
        let (p, q) = opt("program t; var x: int;
             begin
               if 2 > 1 then x := 1; else x := 2;
               print x;
             end.");
        assert!(
            q.blocks.len() < p.blocks.len(),
            "{} -> {} blocks",
            p.blocks.len(),
            q.blocks.len()
        );
        // No conditional branches remain.
        assert!(q
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Branch { .. })));
    }

    #[test]
    fn linear_chain_collapses_to_one_block() {
        let (_, q) = opt("program t; var x: int;
             begin
               if 1 > 2 then x := 9; else x := 7;
               print x;
             end.");
        assert_eq!(q.blocks.len(), 1, "{}", q.to_text());
    }

    #[test]
    fn loops_survive_simplification() {
        let (_, q) = opt("program t; var i, s: int;
             begin
               s := 0;
               for i := 1 to 5 do s := s + i;
               print s;
             end.");
        // The loop's branch must remain.
        assert!(q
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. })));
    }

    #[test]
    fn unreachable_blocks_are_dropped() {
        let (p, q) = opt("program t; var x: int;
             begin
               while false do x := x + 1;
               print x;
             end.");
        assert!(q.blocks.len() < p.blocks.len());
    }
}
