//! The *access conflict graph* (paper §2).
//!
//! Nodes are data values; an edge joins two values that appear as operands of
//! the same long instruction. Each edge carries `conf(u,v)`, the number of
//! instructions in which both endpoints occur — the weight source for the
//! coloring heuristic of Fig. 4.

use crate::types::{AccessTrace, OperandSet, ValueId};

/// Instruction count below which [`ConflictGraph::build_with_jobs`] stays on
/// the plain sequential path — fanning out over the pool costs more than the
/// build itself at paper scale, and keeping small traces single-threaded
/// keeps their observability spans on one thread.
const PAR_BUILD_MIN_INSTRUCTIONS: usize = 4096;

/// Instructions per shard for parallel pair counting. Fixed (not derived
/// from the worker count) so the shard decomposition — and therefore every
/// intermediate — is identical at any `--jobs`.
const PAR_SHARD_INSTRUCTIONS: usize = 8192;

/// Edge-list length below which the parallel CSR fill is not worth the
/// scatter bookkeeping; `assemble` handles the rest.
const PAR_ASSEMBLE_MIN_EDGES: usize = 1 << 16;

/// Minimum degree for a vertex to earn a dedicated [`BitAdjacency`] row:
/// below this a CSR binary search costs at most ~6 probes and a full bitset
/// row would be wasted memory.
const BIT_ROW_MIN_DEGREE: usize = 64;

/// Access conflict graph over the distinct values of an [`AccessTrace`],
/// stored as an immutable compressed-sparse-row (CSR) structure.
///
/// Vertices are dense (`0..n`) with a mapping back to [`ValueId`]s, so the
/// coloring and decomposition algorithms can use flat arrays. The adjacency
/// of vertex `v` is the slice `neighbors[offsets[v] .. offsets[v+1]]`
/// (sorted ascending), with `conf_weights` parallel to `neighbors` — an
/// edge probe is a binary search of one flat slice (`O(log deg)`), a
/// neighborhood walk is one contiguous scan, and there is no per-edge hash
/// map anywhere in the representation.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    /// Dense vertex -> original value.
    values: Vec<ValueId>,
    /// Dense vertices ordered by their [`ValueId`]; value -> vertex lookup
    /// is a binary search through this permutation.
    by_value: Vec<u32>,
    /// CSR row starts: vertex `v`'s neighbors occupy
    /// `neighbors[offsets[v] as usize .. offsets[v + 1] as usize]`.
    /// Length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated adjacency, sorted ascending within each vertex's row;
    /// no self loops, no duplicates.
    neighbors: Vec<u32>,
    /// `conf(v, neighbors[i])`, parallel to `neighbors`.
    conf_weights: Vec<u32>,
    /// Total number of undirected edges.
    edges: usize,
}

impl ConflictGraph {
    /// Build the conflict graph of `trace`. Every pair of distinct values
    /// co-occurring in an instruction gets an edge; multiplicity is counted
    /// in `conf`.
    pub fn build(trace: &AccessTrace) -> ConflictGraph {
        Self::build_filtered(trace, |_| true)
    }

    /// Build the conflict graph of `trace`, fanning the pair counting and
    /// CSR fill out over `jobs` pool workers (`0` = auto) when the trace is
    /// large enough to pay for it. The result is byte-identical to
    /// [`ConflictGraph::build`] at every worker count: shards are a fixed
    /// size, shard merges are order-independent count sums, and the CSR fill
    /// writes disjoint row ranges of the same sorted edge list.
    pub fn build_with_jobs(trace: &AccessTrace, jobs: usize) -> ConflictGraph {
        let jobs = parmem_pool::effective_jobs(jobs);
        if jobs <= 1 || trace.instructions.len() < PAR_BUILD_MIN_INSTRUCTIONS {
            return Self::build_filtered(trace, |_| true);
        }

        let shards: Vec<&[OperandSet]> =
            trace.instructions.chunks(PAR_SHARD_INSTRUCTIONS).collect();
        // Two passes over the shards (value dedup, then pair counting);
        // inert unless telemetry is enabled.
        let progress = parmem_obs::progress("graph.build.shards", 2 * shards.len() as u64);

        // Distinct values: shard-local sorted dedup, then a merge tournament.
        let local_values = parmem_pool::map_indexed(shards.clone(), jobs, |_, shard| {
            let mut vs: Vec<ValueId> = shard.iter().flat_map(|i| i.iter()).collect();
            vs.sort_unstable();
            vs.dedup();
            progress.tick(1);
            vs
        });
        let values = merge_tournament(local_values, jobs, merge_dedup);

        // Per-shard edge counting: dense normalized pairs, sorted, run-length
        // counted, then pairwise merges summing the counts (sums are
        // associative and commutative, so the tournament shape cannot show).
        let counted = parmem_pool::map_indexed(shards, jobs, |_, shard| {
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for inst in shard {
                let ops: Vec<u32> = inst
                    .iter()
                    .filter_map(|v| values.binary_search(&v).ok().map(|i| i as u32))
                    .collect();
                for i in 0..ops.len() {
                    for j in (i + 1)..ops.len() {
                        pairs.push((ops[i], ops[j]));
                    }
                }
            }
            pairs.sort_unstable();
            let counted = count_runs(pairs);
            progress.tick(1);
            counted
        });
        let edge_list = merge_tournament(counted, jobs, merge_counted);

        Self::assemble_par(values, &edge_list, jobs)
    }

    /// Build the conflict graph considering only values for which `keep`
    /// returns true (used by the STOR2 global/local split, where each stage
    /// sees a projection of the instruction stream).
    pub fn build_filtered(
        trace: &AccessTrace,
        mut keep: impl FnMut(ValueId) -> bool,
    ) -> ConflictGraph {
        let mut values: Vec<ValueId> = trace
            .instructions
            .iter()
            .flat_map(|i| i.iter())
            .filter(|&v| keep(v))
            .collect();
        values.sort_unstable();
        values.dedup();

        // Operand sets are ascending and `values` is sorted, so the dense
        // ids of one instruction come out ascending: every generated pair
        // is already normalized to `a < b`.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for inst in &trace.instructions {
            let ops: Vec<u32> = inst
                .iter()
                .filter_map(|v| values.binary_search(&v).ok().map(|i| i as u32))
                .collect();
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    pairs.push((ops[i], ops[j]));
                }
            }
        }
        pairs.sort_unstable();
        let mut edge_list: Vec<(u32, u32, u32)> = Vec::new();
        for (a, b) in pairs {
            match edge_list.last_mut() {
                Some((la, lb, c)) if *la == a && *lb == b => *c += 1,
                _ => edge_list.push((a, b, 1)),
            }
        }

        Self::assemble(values, &edge_list)
    }

    /// Build directly from dense edge lists (used by tests, the synthetic
    /// generators, and the atom decomposition which works on subgraphs).
    pub fn from_edges(n: usize, edge_list: &[(u32, u32, u32)]) -> ConflictGraph {
        let values: Vec<ValueId> = (0..n as u32).map(ValueId).collect();
        // Normalize to `a < b` keeping the input position, so duplicate
        // mentions of one edge resolve deterministically (last `conf` wins,
        // matching map-insert semantics).
        let mut tmp: Vec<(u32, u32, u32, u32)> = edge_list
            .iter()
            .enumerate()
            .map(|(pos, &(a, b, c))| {
                assert!(a != b, "self loops are not allowed");
                let (a, b) = if a < b { (a, b) } else { (b, a) };
                (a, b, pos as u32, c)
            })
            .collect();
        tmp.sort_unstable();
        let mut dedup: Vec<(u32, u32, u32)> = Vec::with_capacity(tmp.len());
        for (a, b, _, c) in tmp {
            match dedup.last_mut() {
                Some((la, lb, lc)) if *la == a && *lb == b => *lc = c,
                _ => dedup.push((a, b, c)),
            }
        }
        Self::assemble(values, &dedup)
    }

    /// Build directly from an edge list that is already normalized — strictly
    /// ascending `(a, b)` pairs with `a < b`, no duplicates — over the dense
    /// vertices `0..n`, using the parallel CSR fill when the list is large
    /// (`jobs` follows the pool convention, `0` = auto). The synthetic scale
    /// generator emits exactly this shape; the result equals
    /// [`ConflictGraph::from_edges`] on the same list at any worker count.
    pub fn from_sorted_edges(
        n: usize,
        edge_list: &[(u32, u32, u32)],
        jobs: usize,
    ) -> ConflictGraph {
        debug_assert!(edge_list
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        debug_assert!(edge_list.iter().all(|&(a, b, _)| a < b && (b as usize) < n));
        let values: Vec<ValueId> = (0..n as u32).map(ValueId).collect();
        Self::assemble_par(values, edge_list, parmem_pool::effective_jobs(jobs))
    }

    /// Assemble the CSR arrays from a deduplicated normalized edge list
    /// (`a < b`, no self loops, unique pairs).
    fn assemble(values: Vec<ValueId>, edge_list: &[(u32, u32, u32)]) -> ConflictGraph {
        let n = values.len();
        let mut by_value: Vec<u32> = (0..n as u32).collect();
        by_value.sort_unstable_by_key(|&i| values[i as usize]);

        let mut directed: Vec<(u32, u32, u32)> = Vec::with_capacity(edge_list.len() * 2);
        for &(a, b, c) in edge_list {
            directed.push((a, b, c));
            directed.push((b, a, c));
        }
        directed.sort_unstable();

        let mut offsets = vec![0u32; n + 1];
        for &(a, _, _) in &directed {
            offsets[a as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let neighbors: Vec<u32> = directed.iter().map(|&(_, b, _)| b).collect();
        let conf_weights: Vec<u32> = directed.iter().map(|&(_, _, c)| c).collect();

        ConflictGraph {
            values,
            by_value,
            offsets,
            neighbors,
            conf_weights,
            edges: edge_list.len(),
        }
    }

    /// Parallel [`ConflictGraph::assemble`]: count degrees and prefix-sum
    /// sequentially (linear and cheap), then fill disjoint contiguous CSR
    /// segments from pool workers. Each worker owns a contiguous vertex
    /// range, whose rows form one contiguous slice of `neighbors`; scanning
    /// the `(a, b)`-sorted undirected list keeps every row ascending (for a
    /// vertex `v`, reverse entries `(x, v)` with `x < v` all sort before the
    /// forward run `(v, b)` with `b > v`), exactly matching the sequential
    /// sort-based fill.
    fn assemble_par(
        values: Vec<ValueId>,
        edge_list: &[(u32, u32, u32)],
        jobs: usize,
    ) -> ConflictGraph {
        let n = values.len();
        if jobs <= 1 || edge_list.len() < PAR_ASSEMBLE_MIN_EDGES {
            return Self::assemble(values, edge_list);
        }
        let mut by_value: Vec<u32> = (0..n as u32).collect();
        by_value.sort_unstable_by_key(|&i| values[i as usize]);

        let mut offsets = vec![0u32; n + 1];
        for &(a, b, _) in edge_list {
            offsets[a as usize + 1] += 1;
            offsets[b as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let total = offsets[n] as usize;
        let mut neighbors = vec![0u32; total];
        let mut conf_weights = vec![0u32; total];

        // Vertex ranges of roughly equal slot count; range boundaries only
        // decide who writes where, never what is written, so a jobs-dependent
        // partition is still deterministic output-wise.
        let mut bounds = vec![0usize];
        for w in 1..jobs {
            let target = (total * w / jobs) as u32;
            let v = offsets.partition_point(|&o| o < target).min(n);
            if v > *bounds.last().unwrap() {
                bounds.push(v);
            }
        }
        if *bounds.last().unwrap() < n {
            bounds.push(n);
        }

        struct FillTask<'a> {
            lo: usize,
            hi: usize,
            base: usize,
            nbrs: &'a mut [u32],
            confs: &'a mut [u32],
        }
        let mut tasks: Vec<FillTask> = Vec::new();
        {
            let mut nrest: &mut [u32] = &mut neighbors;
            let mut crest: &mut [u32] = &mut conf_weights;
            let mut consumed = 0usize;
            for win in bounds.windows(2) {
                let (lo, hi) = (win[0], win[1]);
                let end = offsets[hi] as usize;
                let (na, nb) = nrest.split_at_mut(end - consumed);
                let (ca, cb) = crest.split_at_mut(end - consumed);
                tasks.push(FillTask {
                    lo,
                    hi,
                    base: consumed,
                    nbrs: na,
                    confs: ca,
                });
                nrest = nb;
                crest = cb;
                consumed = end;
            }
        }
        parmem_pool::map_indexed(tasks, jobs, |_, task| {
            let FillTask {
                lo,
                hi,
                base,
                nbrs,
                confs,
            } = task;
            let mut cursor: Vec<usize> =
                offsets[lo..hi].iter().map(|&o| o as usize - base).collect();
            let (lo, hi) = (lo as u32, hi as u32);
            for &(a, b, c) in edge_list {
                if lo <= a && a < hi {
                    let cur = &mut cursor[(a - lo) as usize];
                    nbrs[*cur] = b;
                    confs[*cur] = c;
                    *cur += 1;
                }
                if lo <= b && b < hi {
                    let cur = &mut cursor[(b - lo) as usize];
                    nbrs[*cur] = a;
                    confs[*cur] = c;
                    *cur += 1;
                }
            }
        });

        ConflictGraph {
            values,
            by_value,
            offsets,
            neighbors,
            conf_weights,
            edges: edge_list.len(),
        }
    }

    /// Order-stable FNV-1a digest of the entire representation (values,
    /// offsets, adjacency, conf weights): two graphs digest equal exactly
    /// when their CSR arrays are identical. The differential scale tests and
    /// the bench harness use this to compare build paths without a full
    /// structural walk.
    pub fn digest(&self) -> u64 {
        fn eat(h: &mut u64, x: u64) {
            *h ^= x;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        eat(&mut h, self.values.len() as u64);
        for v in &self.values {
            eat(&mut h, v.0 as u64);
        }
        for &o in &self.offsets {
            eat(&mut h, o as u64);
        }
        for (&nb, &c) in self.neighbors.iter().zip(&self.conf_weights) {
            eat(&mut h, ((nb as u64) << 32) | c as u64);
        }
        h
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The value a dense vertex represents.
    pub fn value(&self, v: u32) -> ValueId {
        self.values[v as usize]
    }

    /// Dense vertex of a value, if the value occurs in the graph.
    pub fn vertex_of(&self, v: ValueId) -> Option<u32> {
        self.by_value
            .binary_search_by_key(&v, |&i| self.values[i as usize])
            .ok()
            .map(|pos| self.by_value[pos])
    }

    #[inline]
    fn row(&self, v: u32) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Neighbors of a dense vertex, ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.row(v)]
    }

    /// Neighbors of `v` paired with `conf(v, ·)`, ascending by neighbor —
    /// one contiguous scan, no per-edge probes.
    pub fn neighbors_with_conf(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let row = self.row(v);
        self.neighbors[row.clone()]
            .iter()
            .copied()
            .zip(self.conf_weights[row].iter().copied())
    }

    /// Degree of a dense vertex.
    pub fn degree(&self, v: u32) -> usize {
        self.row(v).len()
    }

    /// `conf(u, v)` — how many instructions use both endpoints (0 if no edge).
    pub fn conf(&self, u: u32, v: u32) -> u32 {
        // Probe `u`'s row directly: adjacency is symmetric, so either row
        // answers, and a data-dependent "pick the shorter row" test costs a
        // hard-to-predict branch per probe — more than the O(log deg)
        // search it could save on these short rows.
        let row = self.row(u);
        match self.neighbors[row.clone()].binary_search(&v) {
            Ok(i) => self.conf_weights[row.start + i],
            Err(_) => 0,
        }
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.conf(u, v) > 0
    }

    /// Whether every pair of vertices in `set` is adjacent (i.e. `set`
    /// induces a clique). Used by the clique-separator decomposition.
    pub fn is_clique(&self, set: &[u32]) -> bool {
        for i in 0..set.len() {
            for j in (i + 1)..set.len() {
                if !self.has_edge(set[i], set[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Induced subgraph on `vertices` (dense vertex ids of `self`). The
    /// returned graph's vertex `i` corresponds to `vertices[i]`; its
    /// `value()` mapping is preserved from the parent.
    pub fn induced(&self, vertices: &[u32]) -> ConflictGraph {
        // Local-id lookup: a flat array when the subset is a sizable slice of
        // the graph, a hash map when it is tiny relative to `self` — carving
        // many small components out of a huge graph must cost the components'
        // total size, not O(n) scratch per component.
        let use_map = vertices.len().saturating_mul(16) < self.len();
        let mut flat = Vec::new();
        let mut map: std::collections::HashMap<u32, u32> = Default::default();
        if use_map {
            map.reserve(vertices.len());
            for (i, &v) in vertices.iter().enumerate() {
                map.insert(v, i as u32);
            }
        } else {
            flat = vec![u32::MAX; self.len()];
            for (i, &v) in vertices.iter().enumerate() {
                flat[v as usize] = i as u32;
            }
        }
        let local = |w: u32| -> u32 {
            if use_map {
                map.get(&w).copied().unwrap_or(u32::MAX)
            } else {
                flat[w as usize]
            }
        };
        let values: Vec<ValueId> = vertices.iter().map(|&v| self.value(v)).collect();
        let mut edge_list: Vec<(u32, u32, u32)> = Vec::new();
        for (i, &v) in vertices.iter().enumerate() {
            for (w, c) in self.neighbors_with_conf(v) {
                let j = local(w);
                if j != u32::MAX && (i as u32) < j {
                    edge_list.push((i as u32, j, c));
                }
            }
        }
        edge_list.sort_unstable();
        Self::assemble(values, &edge_list)
    }

    /// Build a [`BitAdjacency`] over this graph spending at most
    /// `budget_words` u64 words on bitset rows (`0` picks a default of
    /// `8·n + 1024` words). Rows go to the highest-degree vertices first
    /// (ties to the lower id) while the budget lasts and degrees stay at or
    /// above [`BIT_ROW_MIN_DEGREE`] — the selection is a pure function of
    /// the graph and the budget, never of thread count or timing.
    pub fn bit_adjacency(&self, budget_words: usize) -> BitAdjacency {
        let n = self.len();
        let words = n.div_ceil(64).max(1);
        let budget = if budget_words == 0 {
            8 * n + 1024
        } else {
            budget_words
        };
        let mut by_degree: Vec<u32> = (0..n as u32).collect();
        by_degree.sort_unstable_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        let mut row_of = vec![u32::MAX; n];
        let mut rows = 0u32;
        for &v in by_degree.iter().take(budget / words) {
            if self.degree(v) < BIT_ROW_MIN_DEGREE {
                break;
            }
            row_of[v as usize] = rows;
            rows += 1;
        }
        let mut bits = vec![0u64; rows as usize * words];
        for v in 0..n as u32 {
            let r = row_of[v as usize];
            if r == u32::MAX {
                continue;
            }
            let row = &mut bits[r as usize * words..(r as usize + 1) * words];
            for &w in self.neighbors(v) {
                row[(w / 64) as usize] |= 1u64 << (w % 64);
            }
        }
        BitAdjacency {
            words,
            row_of,
            bits,
        }
    }

    /// Iterate all edges as `(u, v, conf)` with `u < v`, ascending by
    /// `(u, v)` (a deterministic order, unlike the former hash-map walk).
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.len() as u32).flat_map(move |u| {
            self.neighbors_with_conf(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, c)| (u, v, c))
        })
    }

    /// Connected components as lists of dense vertices (ascending within
    /// each component; components ordered by smallest vertex).
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n as u32 {
            if seen[s as usize] {
                continue;
            }
            let mut comp = Vec::new();
            seen[s as usize] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

/// Bitset adjacency rows for the highest-degree vertices of a
/// [`ConflictGraph`]: an O(1) `has_edge` exactly where the CSR binary search
/// is at its worst, with the search as the fallback everywhere else. Built
/// by [`ConflictGraph::bit_adjacency`]; used by the probe-shaped inner loops
/// (clique checks in the separator decomposition, adjacency tests in the
/// exact solver's clique bound) on graphs with heavy hubs.
#[derive(Clone, Debug)]
pub struct BitAdjacency {
    /// u64 words per row (`ceil(n / 64)`).
    words: usize,
    /// Vertex -> row index, `u32::MAX` when the vertex has no row.
    row_of: Vec<u32>,
    /// Concatenated rows.
    bits: Vec<u64>,
}

impl BitAdjacency {
    /// Number of vertices holding a dedicated bitset row.
    pub fn rows(&self) -> usize {
        self.bits.len() / self.words
    }

    /// Whether `v` has a dedicated row.
    pub fn covers(&self, v: u32) -> bool {
        self.row_of[v as usize] != u32::MAX
    }

    #[inline]
    fn test(&self, row: u32, v: u32) -> bool {
        self.bits[row as usize * self.words + (v / 64) as usize] >> (v % 64) & 1 != 0
    }

    /// Adjacency test: O(1) when either endpoint has a row, CSR binary
    /// search on `g` otherwise. `g` must be the graph this was built from.
    #[inline]
    pub fn has_edge(&self, g: &ConflictGraph, u: u32, v: u32) -> bool {
        let ru = self.row_of[u as usize];
        if ru != u32::MAX {
            return self.test(ru, v);
        }
        let rv = self.row_of[v as usize];
        if rv != u32::MAX {
            return self.test(rv, u);
        }
        g.has_edge(u, v)
    }

    /// [`ConflictGraph::is_clique`] with the bitset fast path.
    pub fn is_clique(&self, g: &ConflictGraph, set: &[u32]) -> bool {
        for i in 0..set.len() {
            for j in (i + 1)..set.len() {
                if !self.has_edge(g, set[i], set[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Repeatedly merge adjacent pairs of sorted lists on the pool until one
/// remains. The merge operator must be associative with order-independent
/// combination of equal keys (ours sum counts), so the tournament shape —
/// which depends on the shard count, not the worker count — never shows in
/// the result.
fn merge_tournament<T: Send>(
    mut lists: Vec<Vec<T>>,
    jobs: usize,
    merge2: impl Fn(Vec<T>, Vec<T>) -> Vec<T> + Sync,
) -> Vec<T> {
    while lists.len() > 1 {
        let mut paired: Vec<(Vec<T>, Option<Vec<T>>)> = Vec::with_capacity(lists.len().div_ceil(2));
        let mut it = lists.into_iter();
        while let Some(a) = it.next() {
            paired.push((a, it.next()));
        }
        lists = parmem_pool::map_indexed(paired, jobs, |_, (a, b)| match b {
            Some(b) => merge2(a, b),
            None => a,
        });
    }
    lists.pop().unwrap_or_default()
}

/// Merge two sorted deduplicated lists into one.
fn merge_dedup(a: Vec<ValueId>, b: Vec<ValueId>) -> Vec<ValueId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge two sorted counted edge lists, summing counts of equal pairs.
fn merge_counted(a: Vec<(u32, u32, u32)>, b: Vec<(u32, u32, u32)>) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ka, kb) = ((a[i].0, a[i].1), (b[j].0, b[j].1));
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((ka.0, ka.1, a[i].2 + b[j].2));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Run-length count a sorted pair list into `(a, b, count)` triples.
fn count_runs(pairs: Vec<(u32, u32)>) -> Vec<(u32, u32, u32)> {
    let mut out: Vec<(u32, u32, u32)> = Vec::new();
    for (a, b) in pairs {
        match out.last_mut() {
            Some((la, lb, c)) if *la == a && *lb == b => *c += 1,
            _ => out.push((a, b, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccessTrace;

    /// The Fig. 1 trace from the paper: instructions {V1 V2 V4}, {V2 V3 V5},
    /// {V2 V3 V4} with three modules.
    fn fig1() -> AccessTrace {
        AccessTrace::from_lists(3, &[&[1, 2, 4], &[2, 3, 5], &[2, 3, 4]])
    }

    #[test]
    fn builds_fig1_graph() {
        let g = ConflictGraph::build(&fig1());
        assert_eq!(g.len(), 5);
        // Edges: 1-2, 1-4, 2-4, 2-3, 2-5, 3-5, 3-4.
        assert_eq!(g.edge_count(), 7);
        let v2 = g.vertex_of(ValueId(2)).unwrap();
        let v3 = g.vertex_of(ValueId(3)).unwrap();
        let v1 = g.vertex_of(ValueId(1)).unwrap();
        let v5 = g.vertex_of(ValueId(5)).unwrap();
        // V2 and V3 co-occur twice.
        assert_eq!(g.conf(v2, v3), 2);
        assert_eq!(g.conf(v1, v2), 1);
        assert_eq!(g.conf(v1, v5), 0);
        assert!(!g.has_edge(v1, v5));
        assert_eq!(g.degree(v2), 4);
    }

    #[test]
    fn filtered_build_projects_values() {
        let t = fig1();
        // Keep only odd values: instructions project to {1}, {3,5}, {3}.
        let g = ConflictGraph::build_filtered(&t, |v| v.0 % 2 == 1);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 1);
        let v3 = g.vertex_of(ValueId(3)).unwrap();
        let v5 = g.vertex_of(ValueId(5)).unwrap();
        assert_eq!(g.conf(v3, v5), 1);
    }

    #[test]
    fn clique_detection() {
        let g = ConflictGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]);
        let v = |i: u32| i;
        assert!(g.is_clique(&[v(0), v(1), v(2)]));
        assert!(!g.is_clique(&[v(0), v(1), v(3)]));
        assert!(g.is_clique(&[v(2), v(3)]));
        assert!(g.is_clique(&[v(0)]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn induced_subgraph_preserves_values_and_conf() {
        let g = ConflictGraph::build(&fig1());
        let v2 = g.vertex_of(ValueId(2)).unwrap();
        let v3 = g.vertex_of(ValueId(3)).unwrap();
        let v5 = g.vertex_of(ValueId(5)).unwrap();
        let sub = g.induced(&[v2, v3, v5]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.edge_count(), 3);
        let s2 = sub.vertex_of(ValueId(2)).unwrap();
        let s3 = sub.vertex_of(ValueId(3)).unwrap();
        assert_eq!(sub.conf(s2, s3), 2);
        assert_eq!(sub.value(s2), ValueId(2));
    }

    #[test]
    fn connected_components_split() {
        let g = ConflictGraph::from_edges(5, &[(0, 1, 1), (2, 3, 1)]);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn from_edges_dedups() {
        let g = ConflictGraph::from_edges(3, &[(0, 1, 2), (1, 0, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.conf(0, 1), 2);
    }

    #[test]
    fn edges_iterate_sorted_with_weights() {
        let g = ConflictGraph::build(&fig1());
        let mut es: Vec<(u32, u32, u32)> = g.edges().collect();
        let sorted = {
            let mut s = es.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(es, sorted, "edges() must come out pre-sorted");
        assert_eq!(es.len(), g.edge_count());
        es.retain(|&(u, v, _)| !g.has_edge(u, v));
        assert!(es.is_empty());
    }

    #[test]
    fn neighbors_with_conf_matches_probes() {
        let g = ConflictGraph::build(&fig1());
        for v in 0..g.len() as u32 {
            let pairs: Vec<(u32, u32)> = g.neighbors_with_conf(v).collect();
            assert_eq!(pairs.len(), g.degree(v));
            for (u, c) in pairs {
                assert_eq!(g.conf(v, u), c);
                assert_eq!(g.conf(u, v), c);
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential_on_large_trace() {
        // Enough instructions to cross PAR_BUILD_MIN_INSTRUCTIONS; a value
        // universe small enough to force shared edges across shards.
        let insts: Vec<OperandSet> = (0..6000u32)
            .map(|i| {
                let a = (i * 7) % 97;
                let b = (i * 13 + 1) % 97;
                let c = (i * 29 + 2) % 97;
                OperandSet::new(vec![ValueId(a), ValueId(b), ValueId(c)])
            })
            .collect();
        let t = AccessTrace::new(4, insts);
        let seq = ConflictGraph::build(&t);
        for jobs in [2, 3, 8] {
            let par = ConflictGraph::build_with_jobs(&t, jobs);
            assert_eq!(par.digest(), seq.digest(), "jobs={jobs}");
            assert_eq!(par.len(), seq.len());
            assert_eq!(par.edge_count(), seq.edge_count());
        }
    }

    #[test]
    fn from_sorted_edges_matches_from_edges() {
        let n = 400usize;
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for a in 0..n as u32 {
            for off in 1..=3u32 {
                let b = a + off * 7;
                if (b as usize) < n {
                    edges.push((a, b, 1 + (a + b) % 4));
                }
            }
        }
        edges.sort_unstable();
        let reference = ConflictGraph::from_edges(n, &edges);
        for jobs in [1, 4] {
            let fast = ConflictGraph::from_sorted_edges(n, &edges, jobs);
            assert_eq!(fast.digest(), reference.digest(), "jobs={jobs}");
        }
    }

    #[test]
    fn digest_distinguishes_graphs() {
        let a = ConflictGraph::from_edges(3, &[(0, 1, 1)]);
        let b = ConflictGraph::from_edges(3, &[(0, 1, 2)]);
        let c = ConflictGraph::from_edges(3, &[(0, 2, 1)]);
        assert_ne!(a.digest(), b.digest(), "conf weight must show");
        assert_ne!(a.digest(), c.digest(), "edge identity must show");
        assert_eq!(
            a.digest(),
            ConflictGraph::from_edges(3, &[(0, 1, 1)]).digest()
        );
    }

    #[test]
    fn bit_adjacency_agrees_with_csr() {
        // A star forces one high-degree hub past BIT_ROW_MIN_DEGREE.
        let n = 200usize;
        let mut edges: Vec<(u32, u32, u32)> = (1..n as u32).map(|v| (0, v, 1)).collect();
        edges.push((5, 9, 1));
        let g = ConflictGraph::from_edges(n, &edges);
        let badj = g.bit_adjacency(0);
        assert!(badj.covers(0), "the hub must earn a row");
        assert_eq!(badj.rows(), 1, "leaves are below the degree floor");
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    assert_eq!(badj.has_edge(&g, u, v), g.has_edge(u, v), "({u},{v})");
                }
            }
        }
        assert!(badj.is_clique(&g, &[0, 5, 9]));
        assert!(!badj.is_clique(&g, &[0, 5, 10]));
    }

    #[test]
    fn bit_adjacency_budget_zero_rows_still_answers() {
        let g = ConflictGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        // Tiny budget, tiny degrees: no rows at all, pure fallback.
        let badj = g.bit_adjacency(1);
        assert_eq!(badj.rows(), 0);
        assert!(badj.has_edge(&g, 0, 1));
        assert!(!badj.has_edge(&g, 0, 2));
    }

    #[test]
    fn induced_with_unsorted_vertex_order_keeps_lookup() {
        let g = ConflictGraph::build(&fig1());
        let v2 = g.vertex_of(ValueId(2)).unwrap();
        let v3 = g.vertex_of(ValueId(3)).unwrap();
        let v5 = g.vertex_of(ValueId(5)).unwrap();
        // Vertex order deliberately not ascending by value.
        let sub = g.induced(&[v5, v2, v3]);
        assert_eq!(sub.value(0), ValueId(5));
        assert_eq!(sub.vertex_of(ValueId(5)), Some(0));
        assert_eq!(sub.vertex_of(ValueId(2)), Some(1));
        assert_eq!(sub.conf(1, 2), 2);
    }
}
