//! Cross-request cache for the frontend stage's TAC.
//!
//! The response cache ([`crate::cache`]) addresses *whole bodies* — it
//! only helps when the entire request repeats. But the most expensive
//! shared prefix of the pipeline, the frontend (parse + unroll), depends
//! on the source text and the unroll factor **alone** — not on `k`, the
//! strategy, the optimizer, the seed, or the endpoint (see
//! [`Session::frontend`]). A client sweeping one program across
//! `k ∈ {2,4,8}` or across strategies re-parses the same text on every
//! miss. This cache keys the front-ended [`TacProgram`] on exactly that
//! stage's inputs, so same-program/different-`k` requests skip straight
//! to optimize → schedule via [`Session::compile_tac`].
//!
//! Correctness contract: an entry under a key **is** the frontend's
//! output for that `(source, unroll)` pair — the daemon only ever inserts
//! what [`Session::frontend`] just returned. Eviction is
//! least-recently-used under an entry-count budget (TAC programs are
//! small and uniform, unlike response bodies). The frontend runs
//! *outside* the lock, so a racing miss may compute the same TAC twice;
//! the second insert replaces the first with an identical program, which
//! is benign.
//!
//! [`Session::frontend`]: parmem_driver::Session::frontend
//! [`Session::compile_tac`]: parmem_driver::Session::compile_tac

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use liw_ir::tac::TacProgram;
use parmem_driver::Session;
use rliw_sim::pipeline::PipelineError;

use crate::cache::fnv1a;

/// Lifetime counters, exposed via `/v1/stats` (`"intermediates"`) and
/// `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntermediateStats {
    /// Frontend runs skipped because the TAC was already cached.
    pub hits: u64,
    /// Frontend runs that had to parse.
    pub misses: u64,
    /// Entries currently held.
    pub entries: u64,
}

struct Entry {
    tac: Arc<TacProgram>,
    tick: u64,
}

struct Inner {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, Entry>,
    recency: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
}

/// The LRU frontend-TAC cache. Internally synchronized; the daemon holds
/// one in an `Arc` shared with every pool worker.
pub struct IntermediateCache {
    inner: Mutex<Inner>,
}

/// Cache key: FNV-1a over the source text, a `0xFF` separator, and the
/// unroll factor (0 = no unrolling) — the only compile option the
/// frontend consumes. Requests can only set the factor (the protocol
/// leaves the rest of `UnrollConfig` at its defaults), so the factor
/// fully determines the unroll behaviour here.
fn frontend_key(source: &str, session: &Session) -> u64 {
    let factor = session.opts.unroll.map(|u| u.factor as u64).unwrap_or(0);
    let mut bytes = Vec::with_capacity(source.len() + 9);
    bytes.extend_from_slice(source.as_bytes());
    bytes.push(0xFF);
    bytes.extend_from_slice(&factor.to_le_bytes());
    fnv1a(&bytes)
}

impl IntermediateCache {
    /// An empty cache holding at most `capacity` front-ended programs.
    pub fn new(capacity: usize) -> IntermediateCache {
        IntermediateCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                tick: 0,
                map: HashMap::new(),
                recency: BTreeMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The front-ended TAC for `source` under the session's compile
    /// options — from the cache when present, running
    /// [`Session::frontend`] (outside the lock) otherwise. Parse errors
    /// are never cached.
    pub fn frontend(
        &self,
        session: &Session,
        source: &str,
    ) -> Result<Arc<TacProgram>, PipelineError> {
        let key = frontend_key(source, session);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                let old = entry.tick;
                entry.tick = tick;
                let tac = Arc::clone(&entry.tac);
                inner.recency.remove(&old);
                inner.recency.insert(tick, key);
                inner.hits += 1;
                return Ok(tac);
            }
            inner.misses += 1;
        }
        let tac = Arc::new(session.frontend(source)?);
        let mut inner = self.inner.lock().unwrap();
        if let Some(old) = inner.map.remove(&key) {
            inner.recency.remove(&old.tick);
        }
        while inner.map.len() >= inner.capacity {
            let (&oldest, &victim) = inner
                .recency
                .iter()
                .next()
                .expect("len >= capacity >= 1 implies a recency entry");
            inner.map.remove(&victim);
            inner.recency.remove(&oldest);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.recency.insert(tick, key);
        inner.map.insert(
            key,
            Entry {
                tac: Arc::clone(&tac),
                tick,
            },
        );
        Ok(tac)
    }

    /// Lifetime counters plus the current entry count.
    pub fn stats(&self) -> IntermediateStats {
        let inner = self.inner.lock().unwrap();
        IntermediateStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len() as u64,
        }
    }

    /// The `"intermediates"` member of the `/v1/stats` document.
    pub fn stats_json(&self) -> String {
        let s = self.stats();
        format!(
            "{{\"hits\":{},\"misses\":{},\"entries\":{}}}",
            s.hits, s.misses, s.entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program c; var x: int; begin x := 2; print x * 3; end.";

    #[test]
    fn second_request_hits_even_across_k() {
        let cache = IntermediateCache::new(8);
        let a = cache.frontend(&Session::new(4), SRC).unwrap();
        let b = cache.frontend(&Session::new(8), SRC).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "k must not split the frontend key");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn unroll_factor_splits_the_key() {
        let cache = IntermediateCache::new(8);
        let plain = Session::new(4);
        let opts = rliw_sim::pipeline::CompileOptions {
            unroll: Some(liw_ir::unroll::UnrollConfig {
                factor: 4,
                ..liw_ir::unroll::UnrollConfig::default()
            }),
            ..rliw_sim::pipeline::CompileOptions::default()
        };
        let unrolled = Session::new(4).with_opts(opts);
        let src = "program u; var i, s: int;
            begin s := 0; for i := 1 to 12 do s := s + i; print s; end.";
        let a = cache.frontend(&plain, src).unwrap();
        let b = cache.frontend(&unrolled, src).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = IntermediateCache::new(8);
        assert!(cache.frontend(&Session::new(4), "program broken(").is_err());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn eviction_is_lru_by_entry_count() {
        let cache = IntermediateCache::new(2);
        let mk = |n: u32| format!("program p{n}; var x: int; begin x := {n}; print x; end.");
        let s = Session::new(4);
        cache.frontend(&s, &mk(1)).unwrap();
        cache.frontend(&s, &mk(2)).unwrap();
        cache.frontend(&s, &mk(1)).unwrap(); // bump 1; 2 becomes LRU
        cache.frontend(&s, &mk(3)).unwrap(); // evicts 2
        assert_eq!(cache.stats().entries, 2);
        cache.frontend(&s, &mk(1)).unwrap();
        let st = cache.stats();
        assert_eq!(st.hits, 2, "program 1 stayed resident");
        assert_eq!(st.misses, 3);
        cache.frontend(&s, &mk(2)).unwrap();
        assert_eq!(cache.stats().misses, 4, "program 2 was evicted");
    }
}
