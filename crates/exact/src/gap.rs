//! Heuristic-vs-exact gap measurement.
//!
//! The comparison point is the paper's weighted-urgency coloring (Fig. 4)
//! restricted to single copies: color the full conflict graph, then place
//! any uncolored values greedily (fewest newly conflicting instructions,
//! lowest module on ties). Because that is *some* single-copy assignment,
//! its residual can never beat a certified optimum — the gap
//! `heuristic - lower` is non-negative whenever the certificate is valid,
//! which the property tests and PM206 both enforce.

use parmem_core::assignment::{AssignParams, Assignment};
use parmem_core::coloring::color_graph;
use parmem_core::graph::ConflictGraph;
use parmem_core::types::{AccessTrace, ModuleId, ModuleSet};

use crate::certificate::Certificate;

/// Residual-conflict count of the heuristic single-copy assignment.
pub fn heuristic_single_copy_residual(trace: &AccessTrace, params: &AssignParams) -> usize {
    let k = trace.modules;
    if k == 0 {
        return 0;
    }
    let g = ConflictGraph::build(trace);
    let col = color_graph(&g, k, params.module_choice, |_| ModuleSet::EMPTY);
    let mut a = Assignment::new(k);
    for &(v, m) in &col.assigned {
        a.set_copies(g.value(v), ModuleSet::singleton(m));
    }
    for &v in &col.unassigned {
        let val = g.value(v);
        let mut best = (usize::MAX, ModuleId(0));
        for m in 0..k {
            let m = ModuleId(m as u16);
            a.set_copies(val, ModuleSet::singleton(m));
            let r = a.residual_conflicts(trace);
            if r < best.0 {
                best = (r, m);
            }
        }
        a.set_copies(val, ModuleSet::singleton(best.1));
    }
    a.residual_conflicts(trace)
}

/// One workload's heuristic-vs-exact comparison.
#[derive(Clone, Copy, Debug)]
pub struct GapInfo {
    /// Residual of the heuristic single-copy assignment.
    pub heuristic_residual: usize,
    /// Certified lower bound on the optimal residual.
    pub lower: usize,
    /// Best residual the exact solver achieved.
    pub upper: usize,
    /// Whether `lower == upper` (the gap is closed).
    pub optimal: bool,
}

impl GapInfo {
    /// Gap between the heuristic and the certified lower bound; `>= 0` for
    /// any valid certificate.
    pub fn gap(&self) -> isize {
        self.heuristic_residual as isize - self.lower as isize
    }

    /// Compare a heuristic run against a certificate.
    pub fn measure(trace: &AccessTrace, params: &AssignParams, cert: &Certificate) -> GapInfo {
        GapInfo {
            heuristic_residual: heuristic_single_copy_residual(trace, params),
            lower: cert.lower,
            upper: cert.upper,
            optimal: cert.lower == cert.upper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_residual_is_zero_on_an_easy_trace() {
        let trace = AccessTrace::from_lists(2, &[&[0, 1], &[1, 2]]);
        assert_eq!(
            heuristic_single_copy_residual(&trace, &AssignParams::default()),
            0
        );
    }

    #[test]
    fn heuristic_residual_sees_the_forced_conflict() {
        // K3 on 2 modules: any single-copy assignment conflicts once.
        let trace = AccessTrace::from_lists(2, &[&[0, 1, 2]]);
        assert!(heuristic_single_copy_residual(&trace, &AssignParams::default()) >= 1);
    }
}
