//! Conflict-graph micro-benchmark: CSR [`ConflictGraph`] vs. the pre-CSR
//! HashMap representation, emitted as `BENCH_graph.json` for the CI
//! artifact and checked against a committed baseline.
//!
//! For FFT, LIVERMORE, and SYNTH at k ∈ {2, 4} the benchmark builds both
//! graph representations from the scheduled access trace and times two
//! kernels on each:
//!
//! * **edge probe** — a fixed LCG stream of `conf(u, v)` lookups (the hot
//!   operation of the assignment heuristics and the exact solver's bound
//!   computation);
//! * **coloring sweep** — repeated weighted greedy coloring, whose inner
//!   loop scans a vertex's whole neighborhood accumulating conf weights —
//!   the access pattern of `color_graph`'s urgency bookkeeping. On CSR this
//!   is one contiguous `neighbors_with_conf` zip; on the old representation
//!   every neighbor's weight was a separate HashMap probe.
//!
//! Both kernels accumulate checksums that must agree between the two
//! representations, so the speed comparison is also a correctness check.
//! Checksums and graph shapes are deterministic and gated against the
//! baseline; wall-clock timings are informational (CI machines vary).
//!
//! ```text
//! cargo run --release -p parmem-bench --bin graph_bench \
//!     [-- [out.json] [--check-baseline <baseline.json>]]
//! ```
//!
//! With `--check-baseline`, exits nonzero if any deterministic field
//! (vertex count, edge count, probe checksum, coloring checksum, colored
//! count) diverges from the baseline.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use parmem_core::graph::ConflictGraph;
use parmem_core::types::{AccessTrace, ValueId};
use parmem_driver::Session;

const WORKLOADS: [&str; 3] = ["FFT", "LIVERMORE", "SYNTH"];
const KS: [usize; 2] = [2, 4];
/// Edge probes per timing run (LCG-generated, identical for both reps).
const PROBES: usize = 500_000;
/// Full greedy-coloring sweeps per timing run.
const COLOR_ITERS: usize = 400;
/// Timed samples per kernel; the reported time is the fastest sample, taken
/// after one untimed warm-up, with the two representations alternating so
/// neither systematically benefits from cache or frequency ramp-up.
const SAMPLES: usize = 5;

/// The pre-CSR formulation the refactor replaced: a HashMap from normalized
/// vertex pairs to conflict weights plus per-vertex adjacency lists.
struct MapGraph {
    n: usize,
    adj: Vec<Vec<u32>>,
    conf: HashMap<(u32, u32), u32>,
}

fn pair(u: u32, v: u32) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl MapGraph {
    fn build(trace: &AccessTrace) -> MapGraph {
        let mut values: Vec<ValueId> = trace.instructions.iter().flat_map(|i| i.iter()).collect();
        values.sort_unstable();
        values.dedup();
        let index: HashMap<ValueId, u32> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut g = MapGraph {
            n: values.len(),
            adj: vec![Vec::new(); values.len()],
            conf: HashMap::new(),
        };
        for inst in &trace.instructions {
            let ops: Vec<u32> = inst.iter().map(|v| index[&v]).collect();
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    let (u, v) = pair(ops[i], ops[j]);
                    let w = g.conf.entry((u, v)).or_insert(0);
                    if *w == 0 {
                        g.adj[u as usize].push(v);
                        g.adj[v as usize].push(u);
                    }
                    *w += 1;
                }
            }
        }
        g
    }

    fn conf(&self, u: u32, v: u32) -> u32 {
        self.conf.get(&pair(u, v)).copied().unwrap_or(0)
    }
}

/// Deterministic probe-pair stream shared by both representations.
struct Lcg(u64);

impl Lcg {
    fn next_pair(&mut self, n: u32) -> (u32, u32) {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((self.0 >> 33) % n as u64) as u32;
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = ((self.0 >> 33) % n as u64) as u32;
        (u, v)
    }
}

/// One pass over the LCG probe stream summing `conf`; returns the checksum.
fn probe_pass(n: usize, conf: &impl Fn(u32, u32) -> u32) -> u64 {
    let mut rng = Lcg(0x5DEECE66D);
    let mut sum = 0u64;
    for _ in 0..PROBES {
        let (u, v) = rng.next_pair(n as u32);
        sum = sum.wrapping_add(black_box(conf(u, v)) as u64);
    }
    sum
}

/// One deterministic weighted greedy coloring pass: visit vertices in index
/// order, scan the whole neighborhood once accumulating both the forbidden
/// module set and the total conf weight (the urgency numerator in
/// `color_graph`), then take the lowest free module or leave the vertex
/// uncolored. `neighbors` yields `(neighbor, conf)` pairs.
fn greedy_pass(
    n: usize,
    k: usize,
    neighbors: &impl Fn(u32, &mut dyn FnMut(u32, u32)),
) -> (usize, u64) {
    let mut color: Vec<i32> = vec![-1; n];
    let mut colored = 0usize;
    let mut checksum = 0u64;
    for v in 0..n as u32 {
        let mut forbidden = 0u64;
        let mut weight = 0u64;
        neighbors(v, &mut |w, c| {
            weight += c as u64;
            let wc = color[w as usize];
            if wc >= 0 {
                forbidden |= 1 << wc;
            }
        });
        let free = (!forbidden).trailing_zeros() as usize;
        if free < k {
            color[v as usize] = free as i32;
            colored += 1;
            checksum = checksum
                .wrapping_add((v as u64 + 1).wrapping_mul(free as u64 + 1))
                .wrapping_add(weight.wrapping_mul(31));
        }
    }
    (colored, checksum)
}

/// Time two competing kernels with alternating samples: one untimed warm-up
/// of each, then SAMPLES rounds of (a, b), keeping each side's fastest
/// sample. Returns `((result_a, ns_a), (result_b, ns_b))`.
fn race<T>(mut a: impl FnMut() -> T, mut b: impl FnMut() -> T) -> ((T, u64), (T, u64)) {
    black_box(a());
    black_box(b());
    let (mut best_a, mut best_b) = (u64::MAX, u64::MAX);
    let (mut out_a, mut out_b) = (None, None);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        out_a = Some(black_box(a()));
        best_a = best_a.min(start.elapsed().as_nanos() as u64);
        let start = Instant::now();
        out_b = Some(black_box(b()));
        best_b = best_b.min(start.elapsed().as_nanos() as u64);
    }
    ((out_a.unwrap(), best_a), (out_b.unwrap(), best_b))
}

struct Row {
    program: String,
    k: usize,
    // Deterministic, gated against the baseline.
    n: usize,
    edges: usize,
    probe_checksum: u64,
    color_checksum: u64,
    colored: usize,
    // Wall-clock, informational.
    csr_probe_ns: u64,
    map_probe_ns: u64,
    csr_color_ns: u64,
    map_color_ns: u64,
}

impl Row {
    fn probe_speedup(&self) -> f64 {
        self.map_probe_ns as f64 / self.csr_probe_ns.max(1) as f64
    }

    fn color_speedup(&self) -> f64 {
        self.map_color_ns as f64 / self.csr_color_ns.max(1) as f64
    }
}

fn measure() -> Vec<Row> {
    let mut rows = Vec::new();
    for name in WORKLOADS {
        let bench = workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        for k in KS {
            let prog = Session::new(k)
                .without_optimizer()
                .compile(bench.source)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let trace = prog.sched.access_trace();
            let csr = ConflictGraph::build(&trace);
            let map = MapGraph::build(&trace);
            assert_eq!(csr.len(), map.n, "{name} k={k}: vertex count");
            assert_eq!(csr.edge_count(), map.conf.len(), "{name} k={k}: edges");

            let ((csr_sum, csr_probe_ns), (map_sum, map_probe_ns)) = race(
                || probe_pass(csr.len(), &|u, v| csr.conf(u, v)),
                || probe_pass(map.n, &|u, v| map.conf(u, v)),
            );
            assert_eq!(csr_sum, map_sum, "{name} k={k}: probe checksums diverge");

            let csr_sweep = |v: u32, f: &mut dyn FnMut(u32, u32)| {
                for (w, c) in csr.neighbors_with_conf(v) {
                    f(w, c);
                }
            };
            let map_sweep = |v: u32, f: &mut dyn FnMut(u32, u32)| {
                for &w in &map.adj[v as usize] {
                    f(w, map.conf(v, w));
                }
            };
            let run = |sweep: &dyn Fn(u32, &mut dyn FnMut(u32, u32))| {
                let mut out = (0, 0);
                for _ in 0..COLOR_ITERS {
                    out = greedy_pass(csr.len(), k, &sweep);
                }
                out
            };
            let (
                ((csr_colored, csr_check), csr_color_ns),
                ((map_colored, map_check), map_color_ns),
            ) = race(|| run(&csr_sweep), || run(&map_sweep));
            // The map adjacency is unsorted, but the greedy pass visits
            // vertices in index order and neither a neighbor's color nor the
            // weight sum depends on scan order, so the results must coincide.
            assert_eq!(csr_colored, map_colored, "{name} k={k}: colored count");
            assert_eq!(csr_check, map_check, "{name} k={k}: color checksum");

            rows.push(Row {
                program: bench.name.to_string(),
                k,
                n: csr.len(),
                edges: csr.edge_count(),
                probe_checksum: csr_sum,
                color_checksum: csr_check,
                colored: csr_colored,
                csr_probe_ns,
                map_probe_ns,
                csr_color_ns,
                map_color_ns,
            });
        }
    }
    rows
}

fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("{\"schema\":\"parmem-bench-graph/v1\",\"probes\":");
    let _ = write!(s, "{PROBES},\"color_iters\":{COLOR_ITERS},\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"program\":\"{}\",\"k\":{},\"n\":{},\"edges\":{},\
             \"probe_checksum\":{},\"color_checksum\":{},\"colored\":{},\
             \"csr_probe_ns\":{},\"map_probe_ns\":{},\"probe_speedup\":{:.2},\
             \"csr_color_ns\":{},\"map_color_ns\":{},\"color_speedup\":{:.2}}}",
            r.program,
            r.k,
            r.n,
            r.edges,
            r.probe_checksum,
            r.color_checksum,
            r.colored,
            r.csr_probe_ns,
            r.map_probe_ns,
            r.probe_speedup(),
            r.csr_color_ns,
            r.map_color_ns,
            r.color_speedup()
        );
    }
    s.push_str("]}\n");
    s
}

fn format_table(rows: &[Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>2} | {:>5} {:>6} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7}",
        "program",
        "k",
        "n",
        "edges",
        "csr probe",
        "map probe",
        "speedup",
        "csr color",
        "map color",
        "speedup"
    );
    let _ = writeln!(s, "{}", "-".repeat(104));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>2} | {:>5} {:>6} | {:>10}ns {:>10}ns {:>6.2}x | {:>10}ns {:>10}ns {:>6.2}x",
            r.program,
            r.k,
            r.n,
            r.edges,
            r.csr_probe_ns,
            r.map_probe_ns,
            r.probe_speedup(),
            r.csr_color_ns,
            r.map_color_ns,
            r.color_speedup()
        );
    }
    s
}

/// Minimal field extraction from our own fixed-format row objects — the
/// baseline is always a previous run of this binary, so no general JSON
/// parser is needed (the workspace is registry-free by design).
fn baseline_rows(text: &str) -> Vec<(String, usize, Vec<(&'static str, u64)>)> {
    fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\":");
        let start = obj.find(&pat)? + pat.len();
        let rest = &obj[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim_matches('"'))
    }
    text.split("{\"program\":")
        .skip(1)
        .filter_map(|chunk| {
            let obj = format!("{{\"program\":{chunk}");
            let mut gated = Vec::new();
            for key in GATED {
                gated.push((key, field(&obj, key)?.parse().ok()?));
            }
            Some((
                field(&obj, "program")?.to_string(),
                field(&obj, "k")?.parse().ok()?,
                gated,
            ))
        })
        .collect()
}

/// The fields a baseline check compares exactly.
const GATED: [&str; 5] = ["n", "edges", "probe_checksum", "color_checksum", "colored"];

fn gated_values(r: &Row) -> [(&'static str, u64); 5] {
    [
        ("n", r.n as u64),
        ("edges", r.edges as u64),
        ("probe_checksum", r.probe_checksum),
        ("color_checksum", r.color_checksum),
        ("colored", r.colored as u64),
    ]
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--check-baseline")
        .and_then(|i| args.get(i + 1).cloned());
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != baseline_path.as_deref())
        .cloned()
        .unwrap_or_else(|| "BENCH_graph.json".to_string());

    let rows = measure();
    print!("{}", format_table(&rows));
    std::fs::write(&out_path, to_json(&rows)).expect("write report");
    eprintln!("wrote {out_path}");

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).expect("read baseline");
        let base = baseline_rows(&text);
        let mut regressions = 0;
        for r in &rows {
            match base.iter().find(|(p, k, _)| *p == r.program && *k == r.k) {
                None => {
                    eprintln!("note: {} k={} not in baseline (new row)", r.program, r.k);
                }
                Some((_, _, gated)) => {
                    for ((key, have), (_, want)) in gated_values(r).iter().zip(gated) {
                        if have != want {
                            eprintln!(
                                "REGRESSION: {} k={} {key} = {have}, baseline {want}",
                                r.program, r.k
                            );
                            regressions += 1;
                        }
                    }
                }
            }
        }
        if regressions > 0 {
            eprintln!("FAIL: {regressions} deterministic field(s) diverged from {path}");
            return ExitCode::FAILURE;
        }
        eprintln!("baseline check passed ({path})");
    }
    ExitCode::SUCCESS
}
