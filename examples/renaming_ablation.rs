//! Ablation for the paper's §3 closing remark: *"the results would likely
//! be improved by first applying renaming techniques to the code to remove
//! storage related dependences ... each renamed definition can be assigned
//! to a different memory module."*
//!
//! Compares the full pipeline with per-definition renaming (webs) against a
//! one-location-per-variable baseline: conflict-graph size, schedule length
//! (renaming also removes WAW/WAR serialization), duplication, and cycles.
//!
//! ```text
//! cargo run --example renaming_ablation
//! ```

use parallel_memories::core::graph::ConflictGraph;
use parallel_memories::core::prelude::*;
use parallel_memories::driver::Session;
use parallel_memories::sim::{self, ArrayPlacement};

fn main() {
    let k = 8;
    println!(
        "{:<8} | {:>7} {:>6} {:>6} {:>5} {:>7} | {:>7} {:>6} {:>6} {:>5} {:>7}",
        "", "renamed", "", "", "", "", "1-loc", "", "", "", ""
    );
    println!(
        "{:<8} | {:>7} {:>6} {:>6} {:>5} {:>7} | {:>7} {:>6} {:>6} {:>5} {:>7}",
        "program",
        "values",
        "edges",
        "words",
        "dup",
        "cycles",
        "values",
        "edges",
        "words",
        "dup",
        "cycles"
    );
    println!("{}", "-".repeat(100));

    for b in workloads::benchmarks() {
        let reference = liw_ir::run_source(b.source).unwrap();
        let mut cells = Vec::new();
        for rename in [true, false] {
            let session = Session::new(k).without_optimizer().with_renaming(rename);
            let sp = session.compile(b.source).unwrap().sched;
            let trace = sp.access_trace();
            let g = ConflictGraph::build(&trace);
            let (a, report) = assign_trace(&trace, &AssignParams::default());
            assert_eq!(report.residual_conflicts, 0);
            let run = sim::run(&sp, &a, ArrayPlacement::Interleaved).unwrap();
            assert_eq!(run.output, reference.output, "semantics must not change");
            cells.push((
                g.len(),
                g.edge_count(),
                sp.word_count(),
                report.multi_copy,
                run.cycles,
            ));
        }
        let (rv, re, rw, rd, rc) = cells[0];
        let (nv, ne, nw, nd, nc) = cells[1];
        println!(
            "{:<8} | {:>7} {:>6} {:>6} {:>5} {:>7} | {:>7} {:>6} {:>6} {:>5} {:>7}",
            b.name, rv, re, rw, rd, rc, nv, ne, nw, nd, nc
        );
    }
    println!(
        "\nOn the six benchmarks the two pipelines nearly coincide: the front end\n\
         already gives every expression a fresh temporary, so there is little\n\
         storage reuse left to split. The effect the paper predicts appears when\n\
         a source program *reuses* a scalar across independent computations:"
    );

    // A kernel that reuses one temporary `t` across independent chains.
    // Without renaming, `t` is a single location: WAW/WAR dependences
    // serialize the chains and every use conflicts with every other.
    let reuse = "program reuse; var a, b, c, d, e, f, g, h, t, x, y, z, w: int;
        begin
          a := 1; b := 2; c := 3; d := 4; e := 5; f := 6; g := 7; h := 8;
          t := a * b;  x := t + c;
          t := c * d;  y := t + e;
          t := e * f;  z := t + g;
          t := g * h;  w := t + a;
          print x + y + z + w;
        end.";
    let reference = liw_ir::run_source(reuse).unwrap();
    println!();
    for rename in [true, false] {
        let session = Session::new(k).without_optimizer().with_renaming(rename);
        let sp = session.compile(reuse).unwrap().sched;
        let trace = sp.access_trace();
        let (a, report) = assign_trace(&trace, &AssignParams::default());
        let run = sim::run(&sp, &a, ArrayPlacement::Interleaved).unwrap();
        assert_eq!(run.output, reference.output);
        assert_eq!(report.residual_conflicts, 0);
        println!(
            "reused-temp kernel, rename={rename}: {} words, {} cycles",
            sp.word_count(),
            run.cycles
        );
    }
    println!(
        "\nrenaming dissolves the reused temporary into one data value per\n\
         definition, removing the WAW/WAR chain — exactly the improvement the\n\
         paper's closing remark predicts."
    );
}
