//! Work-stealing pool, re-exported verbatim from `parmem-pool`.
//!
//! The pool started life here; it moved to its own std-only crate so the
//! conflict-graph core can parallelize CSR construction and per-component
//! assignment without a `core -> batch` dependency cycle (batch depends on
//! core). This shim keeps `parmem_batch::pool::*` source-compatible for
//! existing callers.

pub use parmem_pool::{
    default_jobs, effective_jobs, map_indexed, PoolStats, ServicePool, SubmitError,
};
