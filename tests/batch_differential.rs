//! Differential tests for the batch engine.
//!
//! The engine's contract is that concurrency is *unobservable*: a batch
//! report (minus timings) is byte-identical whether jobs ran serially,
//! on one worker, or on eight — and identical to running each job by hand
//! without any pool at all. These tests check that contract three ways:
//!
//! 1. a proptest over random MiniLang programs comparing the no-pool serial
//!    pipeline against `run_batch` at several worker counts;
//! 2. an output-hash cross-check against the reference interpreter;
//! 3. a CLI-level byte comparison of `parmem batch --jobs 1` vs `--jobs 8`
//!    over the full paper sweep (the acceptance criterion).

use proptest::prelude::*;

use parallel_memories::batch::{self, job, BatchOptions, BatchReport, JobSpec};

/// Small random programs: cheap enough to push through the full pipeline
/// many times per proptest case.
fn arb_program() -> impl Strategy<Value = String> {
    let stmt = (0usize..4, 0usize..4, 0usize..4, 0usize..3).prop_map(|(a, b, c, op)| {
        let ops = ["+", "-", "*"];
        format!("v{a} := v{b} {} v{c};", ops[op])
    });
    (proptest::collection::vec(stmt, 1..6), 1i64..6).prop_map(|(stmts, n)| {
        format!(
            "program diff;
             var v0, v1, v2, v3, i: int;
             begin
               v0 := 2; v1 := 3; v2 := 5; v3 := 7;
               for i := 0 to {n} do begin
                 {}
               end;
               print v0; print v1; print v2; print v3;
             end.",
            stmts.join("\n                 ")
        )
    })
}

fn specs_for(srcs: &[String]) -> Vec<JobSpec> {
    srcs.iter()
        .enumerate()
        .flat_map(|(i, src)| [2usize, 4].map(|k| JobSpec::new(format!("P{i}"), src.clone(), k)))
        .collect()
}

/// The pool-free baseline: run every job inline, in order.
fn serial_report(specs: Vec<JobSpec>) -> BatchReport {
    BatchReport {
        results: specs.iter().map(job::run_job).collect(),
        wall_ns: 0,
        workers: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch results are byte-identical to the serial pipeline and
    /// independent of the worker count.
    #[test]
    fn batch_equals_serial_at_every_worker_count(
        srcs in proptest::collection::vec(arb_program(), 1..4)
    ) {
        let baseline = serial_report(specs_for(&srcs));
        for jobs in [1usize, 2, 8] {
            let batched = batch::run_batch(
                specs_for(&srcs),
                &BatchOptions { jobs, ..Default::default() },
            );
            prop_assert_eq!(
                baseline.to_json(false),
                batched.to_json(false),
                "jobs={} diverges from serial",
                jobs
            );
            prop_assert_eq!(baseline.golden_lines(), batched.golden_lines());
        }
    }

    /// The output hash a batch job reports is the hash of what the reference
    /// interpreter prints — the simulator path cannot drift unnoticed.
    #[test]
    fn job_output_hash_matches_reference_interpreter(src in arb_program()) {
        let reference = liw_ir::run_source(&src).unwrap();
        let expected = job::hash_output(&reference.output);
        for k in [2usize, 4, 8] {
            let r = job::run_job(&JobSpec::new("P", src.clone(), k));
            let out = r.outcome.as_ref().expect("pipeline succeeds");
            prop_assert_eq!(out.output_hash, expected, "k={}", k);
            prop_assert_eq!(out.output_len, reference.output.len());
        }
    }
}

/// Differential scale test: generated workloads up to 10⁴ values assign
/// byte-identically whether the conflict graph build and the per-component
/// coloring run sequentially or on eight pool workers. The graph digests,
/// the full report and every value's copy set must agree — concurrency in
/// the core is as unobservable as in the batch engine.
#[test]
fn scale_assignment_is_independent_of_jobs() {
    use parallel_memories::core::assignment::{assign_trace, AssignParams};
    use parallel_memories::core::graph::ConflictGraph;
    use parallel_memories::core::synth::{scale_trace, ScaleSpec};

    // 10³ stays below the parallel gates (inline path), 10⁴ crosses both the
    // parallel-build and parallel-component thresholds — the comparison
    // covers gated and fanned-out execution.
    for (values, edges) in [(1_000usize, 4_000usize), (10_000, 40_000)] {
        let spec = ScaleSpec {
            values,
            edges,
            cliques: 8,
            clique_size: 10, // > modules: forces duplication work too
            components: 8,
            modules: 8,
        };
        let trace = scale_trace(&spec, 123);
        let g1 = ConflictGraph::build_with_jobs(&trace, 1);
        let g8 = ConflictGraph::build_with_jobs(&trace, 8);
        assert_eq!(
            g1.digest(),
            g8.digest(),
            "n={values}: parallel CSR build diverges from sequential"
        );

        let run = |jobs: usize| {
            let params = AssignParams {
                jobs,
                ..Default::default()
            };
            assign_trace(&trace, &params)
        };
        let (a1, r1) = run(1);
        let (a8, r8) = run(8);
        assert_eq!(r1, r8, "n={values}: reports diverge between jobs 1 and 8");
        assert_eq!(r1.residual_conflicts, 0);
        for v in trace.distinct_values() {
            assert_eq!(
                a1.copies(v),
                a8.copies(v),
                "n={values}: copies of {v:?} diverge"
            );
        }
    }
}

/// Differential: the unified layout's interleaved scheme is the same
/// placement the simulator's legacy statistical `Interleaved` mode used, so
/// running the plan must measure exactly the transfer time the legacy path
/// reports (`t_interleaved`) on every paper workload at every machine size.
#[test]
fn planned_interleaved_matches_legacy_interleaved() {
    use parallel_memories::core::prelude::ArrayPolicy;

    for bench in workloads::benchmarks() {
        for k in [2usize, 4, 8] {
            let spec = JobSpec::new(bench.name, bench.source, k)
                .with_array_policy(ArrayPolicy::Interleaved);
            let r = job::run_job(&spec);
            let out = r.outcome.as_ref().expect("pipeline succeeds");
            let planned = out
                .planned
                .as_ref()
                .expect("planned summary present when a policy was asked for");
            assert_eq!(
                planned.transfer_time, out.table2.t_interleaved,
                "{} k={k}: planned interleaved diverges from the legacy path",
                bench.name
            );
        }
    }
}

/// Acceptance criterion: the CLI over all paper workloads at k ∈ {2,4,8}
/// prints byte-identical reports with `--jobs 8` and `--jobs 1`.
#[test]
fn cli_batch_report_is_independent_of_jobs() {
    let run = |jobs: &str, fmt: &str| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_parmem"))
            .args(["batch", "--jobs", jobs, fmt])
            .output()
            .expect("parmem batch runs");
        assert!(
            out.status.success(),
            "parmem batch --jobs {jobs} {fmt} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    for fmt in ["--json", "--csv"] {
        let eight = run("8", fmt);
        let one = run("1", fmt);
        assert!(
            eight == one,
            "`parmem batch {fmt}` differs between --jobs 8 and --jobs 1"
        );
    }
}

/// The deterministic profile (`--trace-summary`: span tree + metrics dump)
/// is also byte-identical across worker counts — tracing does not make
/// concurrency observable.
#[test]
fn cli_trace_summary_is_independent_of_jobs() {
    let dir = std::env::temp_dir();
    let run = |jobs: &str| {
        let path = dir.join(format!("parmem-trace-summary-{jobs}.txt"));
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_parmem"))
            .args(["batch", "fft", "sort", "-k", "2,4"])
            .args(["--jobs", jobs, "--trace-summary"])
            .arg(&path)
            .output()
            .expect("parmem batch runs");
        assert!(
            out.status.success(),
            "parmem batch --jobs {jobs} --trace-summary failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let summary = std::fs::read_to_string(&path).expect("summary written");
        let _ = std::fs::remove_file(&path);
        (out.stdout, summary)
    };
    let (stdout1, summary1) = run("1");
    let (stdout8, summary8) = run("8");
    assert_eq!(stdout1, stdout8, "stdout differs with --trace-summary");
    assert!(
        summary1 == summary8,
        "--trace-summary differs between --jobs 1 and --jobs 8:\n--- jobs 1 ---\n{summary1}\n--- jobs 8 ---\n{summary8}"
    );
    // The summary must actually cover the requested jobs and the pipeline.
    for needle in [
        "job{program=FFT, k=2, stor=STOR1}",
        "job{program=SORT, k=4, stor=STOR1}",
        "stage.simulate",
        "parmem_sim_cycles",
    ] {
        assert!(
            summary1.contains(needle),
            "summary lacks `{needle}`:\n{summary1}"
        );
    }
}

/// With tracing disabled (no profiling flags), the batch report is
/// byte-identical to a profiled run's report — instrumentation never leaks
/// into the golden output.
#[test]
fn profiling_does_not_change_the_report() {
    let run = |extra: &[&str]| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_parmem"))
            .args(["batch", "fft", "-k", "2,4", "--json"])
            .args(extra)
            .output()
            .expect("parmem batch runs");
        assert!(out.status.success());
        out.stdout
    };
    let plain = run(&[]);
    let profiled = run(&["--profile"]);
    assert_eq!(
        plain, profiled,
        "--profile changed the batch report on stdout"
    );
}
