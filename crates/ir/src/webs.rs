//! Def-use *webs* — the renaming step that turns program variables into the
//! paper's *data values*.
//!
//! Paper §2: "Corresponding to each definition of a variable, a distinct
//! data value is created … the different data values of a variable are
//! treated independently. Thus no data value is ever updated." Definitions
//! that reach a common use must share a storage location, so the correct
//! granularity is the *web*: the transitive closure of def-use chains. Each
//! web becomes one data value for module assignment, and one scalar memory
//! location at run time.
//!
//! Built from classic reaching-definitions dataflow plus union-find.

use std::collections::HashMap;

use crate::cfg::Cfg;
use crate::tac::{BlockId, TacProgram, VarId};

/// Identifies a definition site: either the implicit initialization at
/// program entry (every variable starts defined as zero) or a program
/// instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DefSite {
    /// The implicit zero-initialization at program entry.
    Entry(VarId),
    /// The instruction at `(block, index)`.
    Instr(BlockId, u32),
}

/// Instruction index used in use-site keys to denote the block terminator.
pub const TERM_IDX: u32 = u32::MAX;

/// The web partition of a program's definitions and uses.
#[derive(Clone, Debug)]
pub struct Webs {
    /// Number of webs (data values).
    pub n_webs: usize,
    /// Web of each definition site.
    def_web: HashMap<DefSite, u32>,
    /// Web of each (block, instr-or-TERM_IDX, var) use.
    use_web: HashMap<(BlockId, u32, VarId), u32>,
    /// The program variable each web renames.
    pub web_var: Vec<VarId>,
}

impl Webs {
    /// Web (data value) written by the instruction at `(block, idx)`, if it
    /// writes a scalar.
    pub fn of_def(&self, block: BlockId, idx: u32) -> Option<u32> {
        self.def_web.get(&DefSite::Instr(block, idx)).copied()
    }

    /// Web (data value) read when the instruction at `(block, idx)` (or the
    /// terminator, `idx == TERM_IDX`) reads `var`.
    pub fn of_use(&self, block: BlockId, idx: u32, var: VarId) -> Option<u32> {
        self.use_web.get(&(block, idx, var)).copied()
    }

    /// Web of a variable's implicit entry definition.
    pub fn of_entry(&self, var: VarId) -> Option<u32> {
        self.def_web.get(&DefSite::Entry(var)).copied()
    }

    /// Number of webs belonging to each variable (diagnostic).
    pub fn webs_per_var(&self, n_vars: usize) -> Vec<usize> {
        let mut count = vec![0usize; n_vars];
        let mut seen = std::collections::HashSet::new();
        for (w, v) in self.web_var.iter().enumerate() {
            if seen.insert(w) {
                count[v.index()] += 1;
            }
        }
        count
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        // Path compression.
        let mut c = x;
        while self.parent[c as usize] != r {
            let nxt = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = nxt;
        }
        r
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Simple growable bitset.
#[derive(Clone, PartialEq)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> BitSet {
        BitSet(vec![0; n.div_ceil(64)])
    }
    fn insert(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            let new = *a | b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            let mut b = bits;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(w * 64 + t)
                }
            })
        })
    }
}

/// The *no-renaming* partition: one web per program variable, regardless of
/// its definitions. This is the baseline the paper's §3 closing remark
/// contrasts with ("instead of assigning a variable to the same memory
/// module for the entire program, each renamed definition can be assigned
/// to a different memory module") — used by the renaming ablation.
pub fn one_web_per_var(p: &TacProgram) -> Webs {
    let n_vars = p.vars.len();
    let mut def_web = HashMap::new();
    let mut use_web = HashMap::new();
    for v in 0..n_vars as u32 {
        def_web.insert(DefSite::Entry(VarId(v)), v);
    }
    for (bi, b) in p.blocks.iter().enumerate() {
        let block = BlockId(bi as u32);
        for (ii, inst) in b.instrs.iter().enumerate() {
            if let Some(v) = inst.writes() {
                def_web.insert(DefSite::Instr(block, ii as u32), v.0);
            }
            for v in inst.reads() {
                use_web.insert((block, ii as u32, v), v.0);
            }
        }
        for v in b.term.reads() {
            use_web.insert((block, TERM_IDX, v), v.0);
        }
    }
    Webs {
        n_webs: n_vars,
        def_web,
        use_web,
        web_var: (0..n_vars as u32).map(VarId).collect(),
    }
}

/// Compute the webs of `p`.
pub fn compute_webs(p: &TacProgram) -> Webs {
    let mut sp = parmem_obs::span("ir.webs");
    let n_vars = p.vars.len();

    // ---- enumerate definition sites ----
    // 0..n_vars are the entry defs; the rest are instruction defs.
    let mut sites: Vec<DefSite> = (0..n_vars as u32)
        .map(|v| DefSite::Entry(VarId(v)))
        .collect();
    let mut site_id: HashMap<DefSite, usize> =
        sites.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut site_var: Vec<VarId> = (0..n_vars as u32).map(VarId).collect();
    // Per-var list of all site ids (for kill sets).
    let mut sites_of_var: Vec<Vec<usize>> = (0..n_vars).map(|v| vec![v]).collect();

    for (bi, b) in p.blocks.iter().enumerate() {
        for (ii, inst) in b.instrs.iter().enumerate() {
            if let Some(v) = inst.writes() {
                let s = DefSite::Instr(BlockId(bi as u32), ii as u32);
                let id = sites.len();
                sites.push(s);
                site_id.insert(s, id);
                site_var.push(v);
                sites_of_var[v.index()].push(id);
            }
        }
    }
    let n_sites = sites.len();

    // ---- per-block gen/kill ----
    let nb = p.blocks.len();
    let mut gen = vec![BitSet::new(n_sites); nb];
    let mut kill = vec![BitSet::new(n_sites); nb];
    for (bi, b) in p.blocks.iter().enumerate() {
        // Track the last def of each var inside the block.
        let mut last: HashMap<VarId, usize> = HashMap::new();
        for (ii, inst) in b.instrs.iter().enumerate() {
            if let Some(v) = inst.writes() {
                let id = site_id[&DefSite::Instr(BlockId(bi as u32), ii as u32)];
                last.insert(v, id);
            }
        }
        for (&v, &id) in &last {
            gen[bi].insert(id);
            for &other in &sites_of_var[v.index()] {
                if other != id {
                    kill[bi].insert(other);
                }
            }
        }
    }

    // ---- reaching definitions: IN/OUT iteration ----
    let cfg = Cfg::build(p);
    let mut inb = vec![BitSet::new(n_sites); nb];
    let mut outb = vec![BitSet::new(n_sites); nb];
    // Entry block starts with all entry defs.
    for v in 0..n_vars {
        inb[p.entry.index()].insert(v);
    }
    let compute_out = |inx: &BitSet, gen: &BitSet, kill: &BitSet| {
        let mut o = inx.clone();
        for (ow, (kw, gw)) in o.0.iter_mut().zip(kill.0.iter().zip(&gen.0)) {
            *ow = (*ow & !kw) | gw;
        }
        o
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            let bi = b.index();
            let mut new_in = inb[bi].clone();
            for &pred in &cfg.preds[bi] {
                if new_in.union_with(&outb[pred.index()]) {
                    changed = true;
                }
            }
            let new_out = compute_out(&new_in, &gen[bi], &kill[bi]);
            if new_out != outb[bi] {
                changed = true;
            }
            inb[bi] = new_in;
            outb[bi] = new_out;
        }
    }

    // ---- union defs reaching each use ----
    let mut uf = UnionFind::new(n_sites);
    let mut use_sites: Vec<(BlockId, u32, VarId, Vec<usize>)> = Vec::new();

    for (bi, b) in p.blocks.iter().enumerate() {
        let block = BlockId(bi as u32);
        // Current reaching def per var while walking the block.
        let mut local_last: HashMap<VarId, usize> = HashMap::new();

        let reaching = |v: VarId, local_last: &HashMap<VarId, usize>, inb: &BitSet| -> Vec<usize> {
            if let Some(&d) = local_last.get(&v) {
                return vec![d];
            }
            let mut defs: Vec<usize> = inb.iter().filter(|&d| site_var[d] == v).collect();
            if defs.is_empty() {
                // Unreachable block or missing info: fall back to entry def.
                defs.push(v.index());
            }
            defs
        };

        for (ii, inst) in b.instrs.iter().enumerate() {
            for v in inst.reads() {
                let defs = reaching(v, &local_last, &inb[bi]);
                use_sites.push((block, ii as u32, v, defs));
            }
            if let Some(v) = inst.writes() {
                let id = site_id[&DefSite::Instr(block, ii as u32)];
                local_last.insert(v, id);
            }
        }
        for v in b.term.reads() {
            let defs = reaching(v, &local_last, &inb[bi]);
            use_sites.push((block, TERM_IDX, v, defs));
        }
    }

    for (_, _, _, defs) in &use_sites {
        for w in defs.windows(2) {
            uf.union(w[0] as u32, w[1] as u32);
        }
    }

    // ---- dense web numbering ----
    let mut web_of_root: HashMap<u32, u32> = HashMap::new();
    let mut web_var: Vec<VarId> = Vec::new();
    let web_of_site = |uf: &mut UnionFind,
                       web_of_root: &mut HashMap<u32, u32>,
                       web_var: &mut Vec<VarId>,
                       s: usize|
     -> u32 {
        let root = uf.find(s as u32);
        *web_of_root.entry(root).or_insert_with(|| {
            let w = web_var.len() as u32;
            web_var.push(site_var[root as usize]);
            w
        })
    };

    let mut def_web = HashMap::new();
    for (id, &s) in sites.iter().enumerate() {
        let w = web_of_site(&mut uf, &mut web_of_root, &mut web_var, id);
        def_web.insert(s, w);
    }
    let mut use_web = HashMap::new();
    for (block, idx, var, defs) in use_sites {
        let w = web_of_site(&mut uf, &mut web_of_root, &mut web_var, defs[0]);
        use_web.insert((block, idx, var), w);
    }

    sp.attr("webs", web_var.len());
    Webs {
        n_webs: web_var.len(),
        def_web,
        use_web,
        web_var,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn compile(src: &str) -> TacProgram {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn var_named(p: &TacProgram, name: &str) -> VarId {
        VarId(
            p.vars
                .iter()
                .position(|v| v.name == name)
                .unwrap_or_else(|| panic!("no var {name}")) as u32,
        )
    }

    #[test]
    fn independent_defs_get_distinct_webs() {
        // x is written twice with an intervening full use; the two defs have
        // disjoint uses, so they form two webs.
        let p = compile(
            "program t; var x, y, z: int;
             begin
               x := 1;
               y := x + 1;
               x := 2;
               z := x + 2;
             end.",
        );
        let w = compute_webs(&p);
        let x = var_named(&p, "x");
        let e = p.entry;
        // Def at instr 0 writes x (web A); use of x at instr 1 reads web A.
        let def0 = w.of_def(e, 0).unwrap();
        let use1 = w.of_use(e, 1, x).unwrap();
        assert_eq!(def0, use1);
        // Def at instr 2 starts a fresh web read by instr 3.
        let def2 = w.of_def(e, 2).unwrap();
        let use3 = w.of_use(e, 3, x).unwrap();
        assert_eq!(def2, use3);
        assert_ne!(def0, def2, "two independent defs of x must split");
    }

    #[test]
    fn merging_paths_share_a_web() {
        // x defined on both branch arms, used after the join: all three
        // sites must share one web.
        let p = compile(
            "program t; var x, c, y: int;
             begin
               if c > 0 then x := 1; else x := 2;
               y := x;
             end.",
        );
        let w = compute_webs(&p);
        let x = var_named(&p, "x");
        // Find the two defs of x.
        let mut defs = Vec::new();
        for (bi, b) in p.blocks.iter().enumerate() {
            for (ii, inst) in b.instrs.iter().enumerate() {
                if inst.writes() == Some(x) {
                    defs.push(w.of_def(BlockId(bi as u32), ii as u32).unwrap());
                }
            }
        }
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0], defs[1], "defs merging at a join share a web");
        // The use after the join reads the same web.
        let join_use = p
            .blocks
            .iter()
            .enumerate()
            .find_map(|(bi, b)| {
                b.instrs.iter().enumerate().find_map(|(ii, inst)| {
                    (inst.reads().contains(&x))
                        .then(|| w.of_use(BlockId(bi as u32), ii as u32, x).unwrap())
                })
            })
            .expect("use of x");
        assert_eq!(join_use, defs[0]);
    }

    #[test]
    fn loop_carried_variable_is_one_web() {
        // i := i + 1 in a loop: the increment's def reaches its own use on
        // the next iteration → single web with the init def.
        let p = compile(
            "program t; var i: int;
             begin i := 0; while i < 4 do i := i + 1; end.",
        );
        let w = compute_webs(&p);
        let i = var_named(&p, "i");
        let mut webs = std::collections::HashSet::new();
        for (bi, b) in p.blocks.iter().enumerate() {
            for (ii, inst) in b.instrs.iter().enumerate() {
                if inst.writes() == Some(i) {
                    webs.insert(w.of_def(BlockId(bi as u32), ii as u32).unwrap());
                }
                if inst.reads().contains(&i) {
                    webs.insert(w.of_use(BlockId(bi as u32), ii as u32, i).unwrap());
                }
            }
            if b.term.reads().contains(&i) {
                webs.insert(w.of_use(BlockId(bi as u32), TERM_IDX, i).unwrap());
            }
        }
        assert_eq!(webs.len(), 1, "loop variable must be one web: {webs:?}");
    }

    #[test]
    fn uninitialized_use_reads_entry_def() {
        let p = compile("program t; var x, y: int; begin y := x; end.");
        let w = compute_webs(&p);
        let x = var_named(&p, "x");
        let use_web = w.of_use(p.entry, 0, x).unwrap();
        assert_eq!(use_web, w.of_entry(x).unwrap());
    }

    #[test]
    fn webs_map_back_to_variables() {
        let p = compile(
            "program t; var a, b: int;
             begin a := 1; b := a + 1; a := b; end.",
        );
        let w = compute_webs(&p);
        // Every web's variable index is valid.
        for &v in &w.web_var {
            assert!(v.index() < p.vars.len());
        }
        assert!(w.n_webs >= 2);
    }

    #[test]
    fn one_web_per_var_is_identity_on_variables() {
        let p = compile(
            "program t; var x, y: int;
             begin x := 1; y := x + 1; x := 2; y := x + 2; end.",
        );
        let w = one_web_per_var(&p);
        assert_eq!(w.n_webs, p.vars.len());
        let x = var_named(&p, "x");
        // Both defs of x map to the same web, and every use too.
        let mut webs = std::collections::HashSet::new();
        for (bi, b) in p.blocks.iter().enumerate() {
            for (ii, inst) in b.instrs.iter().enumerate() {
                if inst.writes() == Some(x) {
                    webs.insert(w.of_def(BlockId(bi as u32), ii as u32).unwrap());
                }
                if inst.reads().contains(&x) {
                    webs.insert(w.of_use(BlockId(bi as u32), ii as u32, x).unwrap());
                }
            }
        }
        assert_eq!(webs.len(), 1);
        assert_eq!(webs.into_iter().next(), Some(x.0));
        assert_eq!(w.of_entry(x), Some(x.0));
    }

    #[test]
    fn renaming_splits_where_one_per_var_does_not() {
        let p = compile(
            "program t; var x, a, b: int;
             begin x := 1; a := x; x := 2; b := x; end.",
        );
        let renamed = compute_webs(&p);
        let flat = one_web_per_var(&p);
        assert!(renamed.n_webs > flat.n_webs);
    }

    #[test]
    fn temps_are_single_def_webs() {
        let p = compile("program t; var x, y: int; begin x := y * 2 + 3; end.");
        let w = compute_webs(&p);
        let per_var = w.webs_per_var(p.vars.len());
        for (vi, info) in p.vars.iter().enumerate() {
            if info.is_temp {
                // temp + its entry def can make 2 webs at most.
                assert!(
                    per_var[vi] <= 2,
                    "temp {} has {} webs",
                    info.name,
                    per_var[vi]
                );
            }
        }
    }
}
