//! FFT — iterative radix-2 fast Fourier transform, n = 64
//! (paper §3, test case 4).
//!
//! In-place decimation-in-time: bit-reversal permutation followed by
//! log₂(n) butterfly stages with recurrence-updated twiddle factors.

/// MiniLang source of FFT.
pub const SRC: &str = r#"
program fft;
var
  re: array[64] of real;
  im: array[64] of real;
  n, i, j, kk, le, le2, ip: int;
  ur, ui, sr, si_, tr, ti, pi: real;
begin
  n := 64;
  pi := 3.141592653589793;

  { deterministic input signal }
  for i := 0 to n - 1 do begin
    re[i] := cos(itor(i) * 0.3) + 0.5 * cos(itor(i) * 1.1);
    im[i] := 0.0;
  end;

  { bit-reversal permutation }
  j := 0;
  for i := 0 to n - 2 do begin
    if i < j then begin
      tr := re[i]; re[i] := re[j]; re[j] := tr;
      ti := im[i]; im[i] := im[j]; im[j] := ti;
    end;
    kk := n div 2;
    while kk <= j do begin
      j := j - kk;
      kk := kk div 2;
    end;
    j := j + kk;
  end;

  { butterfly stages }
  le := 2;
  while le <= n do begin
    le2 := le div 2;
    ur := 1.0;
    ui := 0.0;
    sr := cos(pi / itor(le2));
    si_ := 0.0 - sin(pi / itor(le2));
    for j := 0 to le2 - 1 do begin
      i := j;
      while i < n do begin
        ip := i + le2;
        tr := re[ip] * ur - im[ip] * ui;
        ti := re[ip] * ui + im[ip] * ur;
        re[ip] := re[i] - tr;
        im[ip] := im[i] - ti;
        re[i] := re[i] + tr;
        im[i] := im[i] + ti;
        i := i + le;
      end;
      tr := ur;
      ur := tr * sr - ui * si_;
      ui := tr * si_ + ui * sr;
    end;
    le := le * 2;
  end;

  for i := 0 to n - 1 do begin
    print re[i];
    print im[i];
  end;
end.
"#;

/// Rust reference: naive O(n²) DFT of the same input (independent of the
/// program's algorithm — validates the FFT against the definition).
pub fn expected() -> Vec<(f64, f64)> {
    let n = 64usize;
    let input: Vec<(f64, f64)> = (0..n)
        .map(|i| ((i as f64 * 0.3).cos() + 0.5 * (i as f64 * 1.1).cos(), 0.0))
        .collect();
    (0..n)
        .map(|k| {
            let mut acc = (0.0f64, 0.0f64);
            for (t, &(xr, xi)) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                acc.0 += xr * c - xi * s;
                acc.1 += xr * s + xi * c;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::Value;

    #[test]
    fn fft_matches_naive_dft() {
        let out = liw_ir::run_source(SRC).unwrap().output;
        let exp = expected();
        assert_eq!(out.len(), exp.len() * 2);
        for (k, &(er, ei)) in exp.iter().enumerate() {
            let gr = match out[2 * k] {
                Value::Real(v) => v,
                ref o => panic!("{o:?}"),
            };
            let gi = match out[2 * k + 1] {
                Value::Real(v) => v,
                ref o => panic!("{o:?}"),
            };
            assert!(
                (gr - er).abs() < 1e-6 && (gi - ei).abs() < 1e-6,
                "bin {k}: got ({gr},{gi}), want ({er},{ei})"
            );
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let out = liw_ir::run_source(SRC).unwrap().output;
        let n = 64usize;
        let spec_energy: f64 = (0..n)
            .map(|k| {
                let r = match out[2 * k] {
                    Value::Real(v) => v,
                    _ => unreachable!(),
                };
                let i = match out[2 * k + 1] {
                    Value::Real(v) => v,
                    _ => unreachable!(),
                };
                r * r + i * i
            })
            .sum();
        let time_energy: f64 = (0..n)
            .map(|i| {
                let x = (i as f64 * 0.3).cos() + 0.5 * (i as f64 * 1.1).cos();
                x * x
            })
            .sum();
        assert!(
            (spec_energy / n as f64 - time_energy).abs() < 1e-6,
            "Parseval violated: {spec_energy} vs {time_energy}"
        );
    }
}
