//! Lexer for MiniLang, the small imperative language the RLIW compiler
//! front end accepts. Pascal-flavored: keywords, identifiers, integer and
//! real literals, and the usual operator/punctuation set.

use std::fmt;

/// A lexical token with its source position (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind (and payload for literals/identifiers).
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variants are self-describing
pub enum TokenKind {
    // Literals & identifiers
    Ident(String),
    IntLit(i64),
    RealLit(f64),

    // Keywords
    Program,
    Var,
    Begin,
    End,
    If,
    Then,
    Else,
    While,
    Do,
    For,
    To,
    Downto,
    Print,
    Array,
    Of,
    IntKw,
    RealKw,
    BoolKw,
    TrueKw,
    FalseKw,
    And,
    Or,
    Not,
    Mod,
    Div,

    // Operators / punctuation
    Assign, // :=
    Plus,   // +
    Minus,  // -
    Star,   // *
    Slash,  // /
    Eq,     // =
    Ne,     // <>
    Lt,     // <
    Le,     // <=
    Gt,     // >
    Ge,     // >=
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Dot,

    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            IntLit(v) => write!(f, "integer `{v}`"),
            RealLit(v) => write!(f, "real `{v}`"),
            Assign => write!(f, "`:=`"),
            Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", keyword_or_symbol(other)),
        }
    }
}

fn keyword_or_symbol(k: &TokenKind) -> &'static str {
    use TokenKind::*;
    match k {
        Program => "program",
        Var => "var",
        Begin => "begin",
        End => "end",
        If => "if",
        Then => "then",
        Else => "else",
        While => "while",
        Do => "do",
        For => "for",
        To => "to",
        Downto => "downto",
        Print => "print",
        Array => "array",
        Of => "of",
        IntKw => "int",
        RealKw => "real",
        BoolKw => "bool",
        TrueKw => "true",
        FalseKw => "false",
        And => "and",
        Or => "or",
        Not => "not",
        Mod => "mod",
        Div => "div",
        Plus => "+",
        Minus => "-",
        Star => "*",
        Slash => "/",
        Eq => "=",
        Ne => "<>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        LParen => "(",
        RParen => ")",
        LBracket => "[",
        RBracket => "]",
        Comma => ",",
        Semicolon => ";",
        Colon => ":",
        Dot => ".",
        _ => "?",
    }
}

/// A lexing error with position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize a whole source string. Comments are `{ ... }` (Pascal style) and
/// `// ...` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(LexError { message: format!($($arg)*), line, col })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tline, tcol) = (line, col);
        let mut push = |kind: TokenKind| {
            out.push(Token {
                kind,
                line: tline,
                col: tcol,
            })
        };

        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '{' => {
                // Pascal comment.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'}' {
                    if bytes[j] == b'\n' {
                        line += 1;
                        col = 0;
                    }
                    j += 1;
                    col += 1;
                }
                if j >= bytes.len() {
                    err!("unterminated comment");
                }
                i = j + 1;
                col += 2;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                let word = &src[start..i];
                let kind = match word.to_ascii_lowercase().as_str() {
                    "program" => TokenKind::Program,
                    "var" => TokenKind::Var,
                    "begin" => TokenKind::Begin,
                    "end" => TokenKind::End,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "do" => TokenKind::Do,
                    "for" => TokenKind::For,
                    "to" => TokenKind::To,
                    "downto" => TokenKind::Downto,
                    "print" => TokenKind::Print,
                    "array" => TokenKind::Array,
                    "of" => TokenKind::Of,
                    "int" => TokenKind::IntKw,
                    "real" => TokenKind::RealKw,
                    "bool" => TokenKind::BoolKw,
                    "true" => TokenKind::TrueKw,
                    "false" => TokenKind::FalseKw,
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    "mod" => TokenKind::Mod,
                    "div" => TokenKind::Div,
                    _ => TokenKind::Ident(word.to_string()),
                };
                push(kind);
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                // Real literal: digits '.' digits (not `..` or `1.`)
                let is_real =
                    i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit();
                if is_real {
                    i += 1;
                    col += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                    // Optional exponent.
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j].is_ascii_digit() {
                            while j < bytes.len() && bytes[j].is_ascii_digit() {
                                j += 1;
                            }
                            col += (j - i) as u32;
                            i = j;
                        }
                    }
                    let text = &src[start..i];
                    match text.parse::<f64>() {
                        Ok(v) => push(TokenKind::RealLit(v)),
                        Err(_) => err!("malformed real literal `{text}`"),
                    }
                } else {
                    let text = &src[start..i];
                    match text.parse::<i64>() {
                        Ok(v) => push(TokenKind::IntLit(v)),
                        Err(_) => err!("integer literal `{text}` out of range"),
                    }
                }
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(TokenKind::Assign);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Colon);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(TokenKind::Le);
                    i += 2;
                    col += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push(TokenKind::Ne);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Lt);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(TokenKind::Ge);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Gt);
                    i += 1;
                    col += 1;
                }
            }
            '+' => {
                push(TokenKind::Plus);
                i += 1;
                col += 1;
            }
            '-' => {
                push(TokenKind::Minus);
                i += 1;
                col += 1;
            }
            '*' => {
                push(TokenKind::Star);
                i += 1;
                col += 1;
            }
            '/' => {
                push(TokenKind::Slash);
                i += 1;
                col += 1;
            }
            '=' => {
                push(TokenKind::Eq);
                i += 1;
                col += 1;
            }
            '(' => {
                push(TokenKind::LParen);
                i += 1;
                col += 1;
            }
            ')' => {
                push(TokenKind::RParen);
                i += 1;
                col += 1;
            }
            '[' => {
                push(TokenKind::LBracket);
                i += 1;
                col += 1;
            }
            ']' => {
                push(TokenKind::RBracket);
                i += 1;
                col += 1;
            }
            ',' => {
                push(TokenKind::Comma);
                i += 1;
                col += 1;
            }
            ';' => {
                push(TokenKind::Semicolon);
                i += 1;
                col += 1;
            }
            '.' => {
                push(TokenKind::Dot);
                i += 1;
                col += 1;
            }
            other => err!("unexpected character `{other}`"),
        }
    }

    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let k = kinds("program foo; var x: int;");
        assert_eq!(
            k,
            vec![
                TokenKind::Program,
                TokenKind::Ident("foo".into()),
                TokenKind::Semicolon,
                TokenKind::Var,
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::IntKw,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        let k = kinds("42 3.25 1.5e3 2.0e-2 7");
        assert_eq!(
            k,
            vec![
                TokenKind::IntLit(42),
                TokenKind::RealLit(3.25),
                TokenKind::RealLit(1500.0),
                TokenKind::RealLit(0.02),
                TokenKind::IntLit(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let k = kinds(":= <= >= <> < > = + - * / mod div");
        assert_eq!(
            k,
            vec![
                TokenKind::Assign,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Mod,
                TokenKind::Div,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let k = kinds("x { this is\na comment } y // trailing\nz");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Ident("z".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let k = kinds("PROGRAM Begin END");
        assert_eq!(
            k,
            vec![
                TokenKind::Program,
                TokenKind::Begin,
                TokenKind::End,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("x\ny\n  z").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[2].col, 3);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("{ never closed").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        let e = lex("x # y").unwrap_err();
        assert!(e.message.contains('#'));
    }

    #[test]
    fn integer_dot_is_not_real() {
        // `1.` at end (e.g. `end.`-style) must lex as IntLit + Dot.
        let k = kinds("1.");
        assert_eq!(
            k,
            vec![TokenKind::IntLit(1), TokenKind::Dot, TokenKind::Eof]
        );
    }
}
