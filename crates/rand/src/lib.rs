#![warn(missing_docs)]

//! Minimal, dependency-free re-implementation of the subset of the `rand`
//! 0.8 API this workspace uses. The build environment has no access to a
//! crates registry, so instead of the upstream crate we vendor exactly the
//! surface the code consumes:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (integer ranges) and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`distributions::WeightedIndex`] + [`distributions::Distribution`],
//! * [`seq::SliceRandom::choose`].
//!
//! The generators are deterministic and seeded exactly like callers expect
//! (`seed_from_u64` expands the seed with SplitMix64, as upstream does).
//! Nothing in the workspace asserts particular stream *values* — only
//! reproducibility — so this implementation is behaviorally compatible.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        // 53 random bits → uniform f64 in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample. Implemented for the integer
/// `Range` / `RangeInclusive` types the workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire); unbiased
/// enough for simulation purposes and exactly reproducible.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply rejection sampling: unbiased.
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone || zone == 0 {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally, upstream-style).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — the seed-expansion function `rand` itself uses for
/// `seed_from_u64`, and a perfectly good small PRNG in its own right.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start from the given state.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> SplitMix64 {
        SplitMix64::new(state)
    }
}

pub mod distributions {
    //! The `Distribution` trait and `WeightedIndex` (Zipf-style sampling in
    //! `parmem_core::synth` is the only consumer).

    use super::RngCore;
    use std::borrow::Borrow;
    use std::fmt;

    /// Types that can produce samples of `T` given a generator.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative, NaN, or infinite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to the given `f64` weights.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Build from any iterator of (borrowable) `f64` weights.
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let target = u * self.total;
            // First index whose cumulative weight exceeds the target.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&target).expect("finite weights"))
            {
                Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

pub mod seq {
    //! Slice helpers (`choose`).

    use super::{RngCore, SampleRange};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_single(rng);
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

/// Glob-import convenience mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&a));
            let b: u32 = rng.gen_range(0..=5);
            assert!(b <= 5);
            let c: i64 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&c));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "{hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = vec![0.0, 3.0, 1.0];
        let dist = WeightedIndex::new(&w).unwrap();
        let mut rng = SplitMix64::new(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 2, "{counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[-1.0]).is_err());
    }

    #[test]
    fn choose_covers_all_and_none_on_empty() {
        let mut rng = SplitMix64::new(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(10);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
