//! Property tests pinning the worklist engine to a naive reference solver
//! on random flow graphs, and exercising the termination guard on
//! arbitrary (including irreducible) looping graphs.
//!
//! The reference is the textbook O(n²) round-robin solver: sweep every
//! reachable node applying the same equations the engine uses, until a
//! full sweep changes nothing. Both liveness-shaped (backward, use/def)
//! and reaching-defs-shaped (forward, gen/kill) instances are generated.

use parmem_lint::engine::{solve, steps_bound, Analysis, Direction, FlowGraph};
use parmem_lint::BitSet;
use proptest::prelude::*;

/// A randomly generated gen/kill (equivalently use/def) bitvector problem.
#[derive(Clone, Debug)]
struct RandGenKill {
    dir: Direction,
    bits: usize,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
    boundary: BitSet,
}

impl Analysis for RandGenKill {
    type Domain = BitSet;
    fn direction(&self) -> Direction {
        self.dir
    }
    fn boundary(&self) -> BitSet {
        self.boundary.clone()
    }
    fn init(&self) -> BitSet {
        BitSet::new(self.bits)
    }
    fn join(&self, into: &mut BitSet, from: &BitSet) {
        into.union_with(from);
    }
    fn transfer(&self, n: usize, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.subtract(&self.kill[n]);
        out.union_with(&self.gen[n]);
        out
    }
}

/// The naive reference: full round-robin sweeps until a sweep is quiescent.
/// Replicates the engine's equations exactly — boundary nodes start from
/// `boundary()`, everything else from `init()`, joined with the outputs of
/// every *reachable* dependency.
fn reference_solve(g: &FlowGraph, a: &RandGenKill) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = g.len();
    let mut input: Vec<BitSet> = vec![a.init(); n];
    let mut output: Vec<BitSet> = vec![a.init(); n];
    let deps = match a.dir {
        Direction::Forward => &g.preds,
        Direction::Backward => &g.succs,
    };
    let is_boundary = |b: usize| match a.dir {
        Direction::Forward => b == g.entry,
        Direction::Backward => g.succs[b].is_empty(),
    };
    loop {
        let mut changed = false;
        for &b in &g.rpo {
            let mut inp = if is_boundary(b) {
                a.boundary()
            } else {
                a.init()
            };
            for &d in &deps[b] {
                if g.is_reachable(d) {
                    a.join(&mut inp, &output[d]);
                }
            }
            let out = a.transfer(b, &inp);
            if inp != input[b] || out != output[b] {
                changed = true;
            }
            input[b] = inp;
            output[b] = out;
        }
        if !changed {
            return (input, output);
        }
    }
}

/// Random graph: node count, edge list (dense enough to produce loops and
/// irreducible regions), and per-node gen/kill sets.
fn graph_and_problem(
    dir: Direction,
) -> impl Strategy<Value = (usize, Vec<(usize, usize)>, RandGenKill)> {
    (1usize..10).prop_flat_map(move |n| {
        let bits = 8usize;
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        let sets = proptest::collection::vec(
            (
                proptest::collection::vec(0..bits, 0..4),
                proptest::collection::vec(0..bits, 0..4),
            ),
            n,
        );
        let bound = proptest::collection::vec(0..bits, 0..4);
        (Just(n), edges, sets, bound).prop_map(move |(n, edges, sets, bound)| {
            let mk = |idxs: &[usize]| {
                let mut bs = BitSet::new(bits);
                for &i in idxs {
                    bs.insert(i);
                }
                bs
            };
            let problem = RandGenKill {
                dir,
                bits,
                gen: sets.iter().map(|(g, _)| mk(g)).collect(),
                kill: sets.iter().map(|(_, k)| mk(k)).collect(),
                boundary: mk(&bound),
            };
            (n, edges, problem)
        })
    })
}

fn check_against_reference(n: usize, edges: &[(usize, usize)], a: &RandGenKill) {
    let g = FlowGraph::from_edges(n, 0, edges);
    let sol = solve(&g, a, steps_bound(g.rpo.len(), a.bits));
    assert!(sol.converged, "monotone analysis must converge in bound");
    let (ref_in, ref_out) = reference_solve(&g, a);
    for &b in &g.rpo {
        assert_eq!(
            sol.input[b].iter().collect::<Vec<_>>(),
            ref_in[b].iter().collect::<Vec<_>>(),
            "input mismatch at node {b} ({:?})",
            a.dir
        );
        assert_eq!(
            sol.output[b].iter().collect::<Vec<_>>(),
            ref_out[b].iter().collect::<Vec<_>>(),
            "output mismatch at node {b} ({:?})",
            a.dir
        );
    }
    // Unreachable nodes keep init in both solvers by construction.
    for b in 0..n {
        if !g.is_reachable(b) {
            assert!(sol.input[b].is_empty() && sol.output[b].is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Forward gen/kill (the shape of reaching definitions) matches the
    /// naive reference on random graphs.
    #[test]
    fn forward_matches_naive_reference(case in graph_and_problem(Direction::Forward)) {
        let (n, edges, a) = case;
        check_against_reference(n, &edges, &a);
    }

    /// Backward use/def (the shape of liveness) matches the naive
    /// reference on random graphs.
    #[test]
    fn backward_matches_naive_reference(case in graph_and_problem(Direction::Backward)) {
        let (n, edges, a) = case;
        check_against_reference(n, &edges, &a);
    }

    /// The termination guard: on arbitrary looping/irreducible graphs the
    /// solver never exceeds its step cap, and a monotone analysis always
    /// converges strictly inside `steps_bound`.
    #[test]
    fn solver_always_stops_within_the_cap(
        case in graph_and_problem(Direction::Forward),
        cap in 1u64..64u64,
    ) {
        let (n, edges, a) = case;
        let g = FlowGraph::from_edges(n, 0, &edges);
        let sol = solve(&g, &a, cap);
        prop_assert!(sol.steps <= cap);
        // Whatever the cap, a second run with the full budget converges.
        let full = solve(&g, &a, steps_bound(g.rpo.len(), a.bits));
        prop_assert!(full.converged);
    }
}

/// A non-monotone toggle on graphs with a self-loop must hit the cap and
/// report it, rather than looping forever (the guard the satellite asks
/// for on irreducible/looping CFGs).
#[test]
fn non_monotone_client_is_caught_by_the_guard() {
    struct Toggle;
    impl Analysis for Toggle {
        type Domain = BitSet;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> BitSet {
            BitSet::new(1)
        }
        fn init(&self) -> BitSet {
            BitSet::new(1)
        }
        fn join(&self, into: &mut BitSet, from: &BitSet) {
            into.union_with(from);
        }
        fn transfer(&self, n: usize, input: &BitSet) -> BitSet {
            if n != 1 {
                return input.clone();
            }
            let mut out = BitSet::new(1);
            if !input.contains(0) {
                out.insert(0);
            }
            out
        }
    }
    // Node 1 toggles its own self-loop fact; every other node is the
    // identity, so nothing in the join ever pins it down.
    let g = FlowGraph::from_edges(3, 0, &[(0, 1), (1, 1), (1, 2)]);
    let sol = solve(&g, &Toggle, 500);
    assert!(!sol.converged);
    assert_eq!(sol.steps, 500);
}
