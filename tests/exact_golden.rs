//! Golden snapshot tests for `parmem exact --format json`.
//!
//! Pins the exact solver's full observable output — certified bounds,
//! certificate status, witness-derived copy counts, clique evidence sizes,
//! node counts, and the heuristic gap — for FFT, LIVERMORE, and SYNTH at
//! `k ∈ {2, 4}`. The default solver budget is clock-free, so the report is
//! deterministic and byte-identical across `--jobs` settings; any change to
//! the branch-and-bound order, the clique bound, the DSATUR seed, or the
//! heuristic comparator shows up as a diff here.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test exact_golden
//! ```
//!
//! then review the diff of `tests/golden/exact_gaps.json` like any other
//! code change.

use std::path::PathBuf;

const WORKLOADS: [&str; 3] = ["FFT", "LIVERMORE", "SYNTH"];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/exact_gaps.json")
}

fn run_cli(jobs: &str) -> String {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_parmem"))
        .args(["exact"])
        .args(WORKLOADS)
        .args(["-k", "2,4", "--format", "json", "--jobs", jobs])
        .output()
        .expect("parmem exact runs");
    assert!(
        out.status.success(),
        "parmem exact --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 report")
}

#[test]
fn exact_json_matches_golden_snapshot() {
    let actual = run_cli("1");
    let path = golden_path();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden: rewrote {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test exact_golden`",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "exact report diverges from {}:\n  -{expected}\n  +{actual}\n\
         if the change is intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test exact_golden` and review the diff",
        path.display()
    );
}

/// The JSON report is byte-identical across worker counts — the solver is
/// deterministic and results come back in submission order.
#[test]
fn exact_json_is_independent_of_jobs() {
    let one = run_cli("1");
    let eight = run_cli("8");
    assert!(
        one == eight,
        "`parmem exact --format json` differs between --jobs 1 and --jobs 8"
    );
}

/// The snapshot covers the whole advertised corpus, every certificate
/// re-validated clean, and never pins an error row as "golden".
#[test]
fn exact_golden_covers_corpus_with_clean_certificates() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    let text = std::fs::read_to_string(golden_path()).expect("golden file present");
    for w in WORKLOADS {
        for k in [2, 4] {
            assert!(
                text.contains(&format!("\"program\":\"{w}\",\"k\":{k}")),
                "missing {w} k={k}"
            );
        }
    }
    assert!(!text.contains("\"error\""));
    assert!(!text.contains("\"verify_diags\":1"));
    // 6 jobs: one certificate (and gap measurement) each.
    assert_eq!(text.matches("\"certificate\"").count(), 6);
    assert_eq!(text.matches("\"verify_diags\":0").count(), 6);
}
