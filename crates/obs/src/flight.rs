//! Flight recorder: a fixed-capacity lock-free-writer ring of recent
//! telemetry events, dumped as a JSON artifact on panic or on demand.
//!
//! While the recorder is active, every span closure and progress heartbeat
//! lands in the ring (one relaxed atomic load plus a `try_lock` on one
//! slot; when inactive the cost is the single load). The ring keeps the
//! last `capacity` events: a writer claims a slot with a global
//! `fetch_add` sequence number and writes it under a per-slot `try_lock` —
//! a writer that loses the race for a slot mid-wraparound simply drops the
//! *older* event rather than blocking, so writers never wait (the ring is
//! obstruction-free, not loss-free; capacity is sized so losses only
//! happen under extreme contention).
//!
//! [`install`] arms the recorder and chains a panic hook, so any crash —
//! including panics later caught by the batch engine's per-job isolation —
//! writes the last N events plus a live metric snapshot to the configured
//! `--flight-dump` path. The dump is a Chrome-trace-compatible JSON
//! document (`traceEvents` holds complete `X` events; heartbeats ride
//! along with `dur` 0) that [`crate::chrome::validate`] accepts, with
//! extra top-level sections for counters, histograms, progress, and
//! allocator high-water marks. With `PARMEM_FLIGHT_DETERMINISTIC` set (or
//! `deterministic` passed to [`install`]) timestamps, durations, and
//! thread ids are zeroed and time-based heartbeats are suppressed, making
//! the artifact byte-identical across runs of deterministic work.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::export::json_escape;
use crate::span::SpanRecord;

/// Ring capacity used by [`install`] when the caller does not choose one.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event: a closed span or a progress heartbeat.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// What kind of event this is.
    pub kind: FlightEventKind,
    /// Span name or heartbeat phase.
    pub name: String,
    /// Start offset from the collector epoch, nanoseconds (heartbeats
    /// store their emission offset).
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for heartbeats).
    pub dur_ns: u64,
    /// Dense per-thread index (0 for heartbeats).
    pub thread: u64,
    /// Heartbeat progress `(done, total)`; `(0, 0)` for spans.
    pub done: u64,
    /// See `done`.
    pub total: u64,
}

/// Discriminates [`FlightEvent`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A closed tracing span.
    Span,
    /// A progress heartbeat.
    Heartbeat,
}

/// Fixed-capacity ring of `(sequence, event)` pairs with non-blocking
/// writers (see module docs). Public so tests can drive a private instance;
/// the recorder itself uses one process-global ring.
pub struct Ring {
    slots: Vec<Mutex<Option<(u64, FlightEvent)>>>,
    seq: AtomicU64,
}

impl Ring {
    /// A ring keeping the most recent `capacity` events (capacity is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            seq: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (monotonic; `>= capacity` means wrapped).
    pub fn pushed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Append an event, overwriting the oldest once full. Never blocks: a
    /// contended slot drops the older of the two racing events.
    pub fn push(&self, ev: FlightEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        if let Ok(mut s) = self.slots[slot].try_lock() {
            // A slower writer may already have stored a *newer* seq here;
            // never roll a slot backwards.
            if s.as_ref().is_none_or(|(old, _)| *old < seq) {
                *s = Some((seq, ev));
            }
        }
    }

    /// The retained events, oldest first (sorted by sequence number).
    pub fn recent(&self) -> Vec<(u64, FlightEvent)> {
        let mut out: Vec<(u64, FlightEvent)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().ok().and_then(|g| g.clone()))
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static DETERMINISTIC: AtomicBool = AtomicBool::new(false);
static RING: OnceLock<Ring> = OnceLock::new();
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);
static DUMPING: AtomicBool = AtomicBool::new(false);

/// Arm the flight recorder: allocate the global ring (its capacity is
/// fixed by the first install), remember the dump path for the panic
/// hook, and chain that hook (once per process). `deterministic` — or the
/// `PARMEM_FLIGHT_DETERMINISTIC` environment variable — selects the
/// byte-stable dump mode described in the module docs.
pub fn install(capacity: usize, dump_path: Option<PathBuf>, deterministic: bool) {
    RING.get_or_init(|| Ring::new(capacity));
    let det = deterministic || std::env::var_os("PARMEM_FLIGHT_DETERMINISTIC").is_some();
    DETERMINISTIC.store(det, Ordering::Relaxed);
    if let Ok(mut p) = DUMP_PATH.lock() {
        *p = dump_path;
    }
    if !HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Reentrancy guard: a panic while dumping must not recurse.
            if !DUMPING.swap(true, Ordering::SeqCst) {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let location = info
                    .location()
                    .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
                    .unwrap_or_else(|| "<unknown>".to_string());
                let _ = dump_to_configured_path("panic", Some((&message, &location)));
                DUMPING.store(false, Ordering::SeqCst);
            }
            prev(info);
        }));
    }
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Stop recording (the ring and dump path stay in place, so a later
/// [`install`] re-arms without losing history).
pub fn deactivate() {
    ACTIVE.store(false, Ordering::Relaxed);
}

/// True when the recorder is armed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// True in the byte-stable dump mode.
pub fn deterministic() -> bool {
    DETERMINISTIC.load(Ordering::Relaxed)
}

/// Record a closed span (called from `SpanGuard::drop`; a single relaxed
/// load when the recorder is not armed).
pub(crate) fn record_span(rec: &SpanRecord) {
    if !active() {
        return;
    }
    if let Some(ring) = RING.get() {
        ring.push(FlightEvent {
            kind: FlightEventKind::Span,
            name: rec.name.clone(),
            start_ns: rec.start_ns,
            dur_ns: rec.dur_ns,
            thread: rec.thread,
            done: 0,
            total: 0,
        });
    }
}

/// Record a progress heartbeat (called from [`crate::progress`]).
pub(crate) fn record_heartbeat(phase: &str, done: u64, total: u64, elapsed_ns: u64) {
    if !active() {
        return;
    }
    if let Some(ring) = RING.get() {
        ring.push(FlightEvent {
            kind: FlightEventKind::Heartbeat,
            name: format!("heartbeat.{phase}"),
            start_ns: elapsed_ns,
            dur_ns: 0,
            thread: 0,
            done,
            total,
        });
    }
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render the flight dump: ring contents as Chrome-trace `X` events plus
/// live counter/histogram/progress/allocator snapshots. `panic` carries
/// `(message, location)` when the dump is panic-triggered.
pub fn dump_json(reason: &str, panic: Option<(&str, &str)>) -> String {
    let det = deterministic();
    let events = RING.get().map(|r| r.recent()).unwrap_or_default();
    let mut out = String::from("{\"schema\":\"parmem-flight/v1\"");
    let _ = write!(out, ",\"reason\":\"{}\"", json_escape(reason));
    match panic {
        Some((msg, loc)) => {
            let _ = write!(
                out,
                ",\"panic\":{{\"message\":\"{}\",\"location\":\"{}\"}}",
                json_escape(msg),
                json_escape(loc)
            );
        }
        None => out.push_str(",\"panic\":null"),
    }
    out.push_str(",\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (n, (_, ev)) in events.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let (ts, dur, tid) = if det {
            ("0.000".to_string(), "0.000".to_string(), 0)
        } else {
            (micros(ev.start_ns), micros(ev.dur_ns), ev.thread)
        };
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"name\":\"{}\"",
            json_escape(&ev.name)
        );
        if ev.kind == FlightEventKind::Heartbeat {
            let _ = write!(
                out,
                ",\"args\":{{\"done\":{},\"total\":{}}}",
                ev.done, ev.total
            );
        }
        out.push('}');
    }
    let live = crate::snapshot();
    out.push_str("],\"counters\":{");
    for (n, (name, v)) in live.counters.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(name), v);
    }
    out.push_str("},\"histograms\":{");
    for (n, (name, h)) in live.hists.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{}}}",
            json_escape(name),
            h.count,
            h.sum,
            h.max
        );
    }
    out.push_str("},\"progress\":[");
    for (n, p) in crate::progress_snapshot().iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"done\":{},\"total\":{},\"finished\":{}}}",
            json_escape(&p.phase),
            p.done,
            p.total,
            p.finished
        );
    }
    let (live_bytes, peak_bytes) = if det {
        (0, 0)
    } else {
        crate::alloc::global_live_peak()
    };
    let _ = write!(
        out,
        "],\"alloc\":{{\"live_bytes\":{live_bytes},\"peak_bytes\":{peak_bytes}}}}}"
    );
    out
}

/// Write [`dump_json`] to `path`.
pub fn dump_to(path: &Path, reason: &str, panic: Option<(&str, &str)>) -> std::io::Result<()> {
    std::fs::write(path, dump_json(reason, panic))
}

/// Write the dump to the path configured by [`install`]; no-op without one.
pub fn dump_to_configured_path(reason: &str, panic: Option<(&str, &str)>) -> std::io::Result<bool> {
    let path = DUMP_PATH.lock().ok().and_then(|p| p.clone());
    match path {
        Some(p) => dump_to(&p, reason, panic).map(|()| true),
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str) -> FlightEvent {
        FlightEvent {
            kind: FlightEventKind::Span,
            name: name.to_string(),
            start_ns: 1,
            dur_ns: 2,
            thread: 1,
            done: 0,
            total: 0,
        }
    }

    #[test]
    fn ring_keeps_last_n_in_order() {
        let r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(&format!("e{i}")));
        }
        let names: Vec<String> = r.recent().into_iter().map(|(_, e)| e.name).collect();
        assert_eq!(names, ["e6", "e7", "e8", "e9"]);
        assert_eq!(r.pushed(), 10);
    }

    #[test]
    fn ring_under_capacity_returns_everything() {
        let r = Ring::new(8);
        r.push(ev("a"));
        r.push(ev("b"));
        let seqs: Vec<u64> = r.recent().into_iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, [0, 1]);
    }

    #[test]
    fn dump_json_is_valid_chrome_trace() {
        // Uses only the pure renderer paths (no global ring installed in
        // this test binary), so the traceEvents array may be empty — the
        // document must still parse and validate.
        let doc = dump_json("test", Some(("boom", "src/x.rs:1:1")));
        crate::json::parse(&doc).expect("dump parses");
        crate::chrome::validate(&doc).expect("dump chrome-validates");
        assert!(doc.contains("\"reason\":\"test\""));
        assert!(doc.contains("\"message\":\"boom\""));
    }
}
