#![warn(missing_docs)]

//! # liw-sched
//!
//! The long-instruction-word list scheduler of the RLIW compiler: packs the
//! `liw-ir` three-address code into long instruction words subject to
//! functional-unit and memory-port limits, renaming operands to data values
//! (webs) along the way. The scheduled program exposes the
//! [`parmem_core::types::AccessTrace`] the module-assignment algorithms
//! consume, and is what the `rliw-sim` machine executes.

pub mod program;
pub mod schedule;

pub use program::{LongWord, MachineSpec, SOperand, SchedBlock, SchedProgram, SchedTerm, SlotOp};
pub use schedule::{schedule, schedule_with, ScheduleOptions, SchedulePriority};

/// Compile MiniLang source and schedule it in one call.
pub fn compile_and_schedule(
    src: &str,
    spec: MachineSpec,
) -> Result<SchedProgram, Box<dyn std::error::Error + Send + Sync>> {
    let tac = liw_ir::compile(src)?;
    Ok(schedule(&tac, spec))
}
