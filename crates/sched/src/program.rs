//! The scheduled-program representation: long instruction words grouped by
//! basic block, with operands renamed to *data values* (webs).

use liw_ir::tac::{ArrayId, ArrayInfo, BlockId, OpCode, Value, VarId};
use parmem_core::strategies::RegionizedTrace;
use parmem_core::types::{AccessTrace, OperandSet, ValueId};

/// Machine configuration for scheduling: how much a long word can carry.
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    /// Functional units: maximum operations per long word.
    pub width: usize,
    /// Memory ports: maximum memory accesses per word (distinct scalar data
    /// values read + array element accesses). Matches the number of memory
    /// modules `k` on the paper's RLIW.
    pub mem_ports: usize,
    /// Number of parallel memory modules `k`.
    pub modules: usize,
}

impl Default for MachineSpec {
    fn default() -> Self {
        // The paper's experiments: eight memory modules.
        MachineSpec {
            width: 8,
            mem_ports: 8,
            modules: 8,
        }
    }
}

impl MachineSpec {
    /// A square machine: `k` functional units, ports, and modules.
    pub fn with_modules(k: usize) -> MachineSpec {
        MachineSpec {
            width: k.max(1),
            mem_ports: k.max(1),
            modules: k.max(1),
        }
    }
}

/// A scheduled operand: immediate or scalar data-value read.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // variants are self-describing
pub enum SOperand {
    Const(Value),
    /// Read of data value (web) `w`.
    Scalar(u32),
}

impl SOperand {
    /// The data value this operand reads, if it reads one.
    pub fn web(&self) -> Option<u32> {
        match self {
            SOperand::Scalar(w) => Some(*w),
            SOperand::Const(_) => None,
        }
    }
}

/// One operation inside a long instruction word.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // fields are self-describing
pub enum SlotOp {
    /// ALU / FPU operation writing data value `dest`.
    Compute {
        dest: u32,
        op: OpCode,
        lhs: SOperand,
        rhs: Option<SOperand>,
    },
    /// `dest = arr[index]` — array element read (module unknown at compile
    /// time).
    Load {
        dest: u32,
        arr: ArrayId,
        index: SOperand,
    },
    /// `arr[index] = value` — array element write.
    Store {
        arr: ArrayId,
        index: SOperand,
        value: SOperand,
    },
    /// Append value to output.
    Print { value: SOperand },
    /// Conditional move: `dest = cond ? if_true : if_false`.
    Select {
        cond: SOperand,
        if_true: SOperand,
        if_false: SOperand,
        dest: u32,
    },
}

impl SlotOp {
    /// Scalar data values this op reads.
    pub fn scalar_reads(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(2);
        let mut push = |o: &SOperand| {
            if let Some(w) = o.web() {
                out.push(w);
            }
        };
        match self {
            SlotOp::Compute { lhs, rhs, .. } => {
                push(lhs);
                if let Some(r) = rhs {
                    push(r);
                }
            }
            SlotOp::Load { index, .. } => push(index),
            SlotOp::Store { index, value, .. } => {
                push(index);
                push(value);
            }
            SlotOp::Print { value } => push(value),
            SlotOp::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                push(cond);
                push(if_true);
                push(if_false);
            }
        }
        out
    }

    /// Data value written, if any.
    pub fn writes(&self) -> Option<u32> {
        match self {
            SlotOp::Compute { dest, .. }
            | SlotOp::Load { dest, .. }
            | SlotOp::Select { dest, .. } => Some(*dest),
            _ => None,
        }
    }

    /// Number of array element accesses (0 or 1).
    pub fn array_accesses(&self) -> usize {
        matches!(self, SlotOp::Load { .. } | SlotOp::Store { .. }) as usize
    }
}

/// A long instruction word: up to `width` operations issued in lock-step.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LongWord {
    /// Up to `width` lock-step operations.
    pub ops: Vec<SlotOp>,
}

impl LongWord {
    /// Distinct scalar data values this word fetches.
    pub fn scalar_read_set(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.ops.iter().flat_map(|o| o.scalar_reads()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of array element accesses in this word.
    pub fn array_access_count(&self) -> usize {
        self.ops.iter().map(|o| o.array_accesses()).sum()
    }
}

/// Block terminator after scheduling. A `Branch` condition is fetched during
/// the block's final word.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // fields are self-describing
pub enum SchedTerm {
    Jump(BlockId),
    Branch {
        cond: SOperand,
        then_to: BlockId,
        else_to: BlockId,
    },
    Halt,
}

impl SchedTerm {
    /// Data value read by the branch condition, if any.
    pub fn cond_web(&self) -> Option<u32> {
        match self {
            SchedTerm::Branch { cond, .. } => cond.web(),
            _ => None,
        }
    }
}

/// One scheduled basic block.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedBlock {
    /// The block's long instruction words, in issue order.
    pub words: Vec<LongWord>,
    /// Control transfer at the end of the block.
    pub term: SchedTerm,
}

impl SchedBlock {
    /// The scalar data values fetched by word `i`, including the branch
    /// condition when `i` is the final word.
    pub fn word_operands(&self, i: usize) -> Vec<u32> {
        let mut v = self.words[i].scalar_read_set();
        if i + 1 == self.words.len() {
            if let Some(w) = self.term.cond_web() {
                v.push(w);
                v.sort_unstable();
                v.dedup();
            }
        }
        v
    }
}

/// A fully scheduled program.
#[derive(Clone, Debug)]
pub struct SchedProgram {
    /// Program name.
    pub name: String,
    /// The machine it was scheduled for.
    pub spec: MachineSpec,
    /// Scheduled blocks (same ids as the TAC CFG).
    pub blocks: Vec<SchedBlock>,
    /// Entry block.
    pub entry: BlockId,
    /// Number of data values (webs).
    pub n_values: usize,
    /// The program variable each data value renames (diagnostics).
    pub value_var: Vec<VarId>,
    /// Type of each program variable (indexed by `VarId`).
    pub var_ty: Vec<liw_ir::Ty>,
    /// Entry data value per variable (initial zero definition).
    pub entry_value: Vec<u32>,
    /// Array metadata (copied from the TAC program).
    pub arrays: Vec<ArrayInfo>,
    /// Region of each block (innermost loop), for STOR2.
    pub region_of_block: Vec<u32>,
    /// Number of regions.
    pub n_regions: usize,
}

impl SchedProgram {
    /// Total long words (static count).
    pub fn word_count(&self) -> usize {
        self.blocks.iter().map(|b| b.words.len()).sum()
    }

    /// FNV-1a digest of the scheduled workload: machine size, every long
    /// word's operations (structurally, not via `Debug` formatting, so the
    /// value is stable across toolchains), the terminators, and the array
    /// metadata. Two programs share a digest only if they execute the same
    /// scheduled code on the same machine — the simulator derives its
    /// uniform-random placement stream from this, so distinct workloads
    /// never share a placement sequence even under the same user seed.
    pub fn workload_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let eat_u64 = |h: &mut u64, x: u64| {
            for b in x.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let eat_operand = |h: &mut u64, o: &SOperand| match o {
            SOperand::Const(v) => {
                let (tag, bits): (u64, u64) = match v {
                    Value::Int(i) => (1, *i as u64),
                    Value::Real(r) => (2, r.to_bits()),
                    Value::Bool(b) => (3, *b as u64),
                };
                eat_u64(h, tag);
                eat_u64(h, bits);
            }
            SOperand::Scalar(w) => {
                eat_u64(h, 4);
                eat_u64(h, u64::from(*w));
            }
        };
        eat_u64(&mut h, self.spec.modules as u64);
        eat_u64(&mut h, self.spec.width as u64);
        eat_u64(&mut h, self.spec.mem_ports as u64);
        eat_u64(&mut h, self.entry.index() as u64);
        for b in &self.blocks {
            eat_u64(&mut h, 0xB10C);
            for w in &b.words {
                eat_u64(&mut h, 0x30D0);
                for op in &w.ops {
                    match op {
                        SlotOp::Compute { dest, op, lhs, rhs } => {
                            eat_u64(&mut h, 10);
                            eat_u64(&mut h, u64::from(*dest));
                            eat_u64(&mut h, *op as u64);
                            eat_operand(&mut h, lhs);
                            if let Some(r) = rhs {
                                eat_operand(&mut h, r);
                            }
                        }
                        SlotOp::Load { dest, arr, index } => {
                            eat_u64(&mut h, 11);
                            eat_u64(&mut h, u64::from(*dest));
                            eat_u64(&mut h, u64::from(arr.0));
                            eat_operand(&mut h, index);
                        }
                        SlotOp::Store { arr, index, value } => {
                            eat_u64(&mut h, 12);
                            eat_u64(&mut h, u64::from(arr.0));
                            eat_operand(&mut h, index);
                            eat_operand(&mut h, value);
                        }
                        SlotOp::Print { value } => {
                            eat_u64(&mut h, 13);
                            eat_operand(&mut h, value);
                        }
                        SlotOp::Select {
                            cond,
                            if_true,
                            if_false,
                            dest,
                        } => {
                            eat_u64(&mut h, 14);
                            eat_u64(&mut h, u64::from(*dest));
                            eat_operand(&mut h, cond);
                            eat_operand(&mut h, if_true);
                            eat_operand(&mut h, if_false);
                        }
                    }
                }
            }
            match &b.term {
                SchedTerm::Jump(t) => {
                    eat_u64(&mut h, 20);
                    eat_u64(&mut h, t.index() as u64);
                }
                SchedTerm::Branch {
                    cond,
                    then_to,
                    else_to,
                } => {
                    eat_u64(&mut h, 21);
                    eat_operand(&mut h, cond);
                    eat_u64(&mut h, then_to.index() as u64);
                    eat_u64(&mut h, else_to.index() as u64);
                }
                SchedTerm::Halt => eat_u64(&mut h, 22),
            }
        }
        for a in &self.arrays {
            eat_u64(&mut h, 0xA55A);
            for byte in a.name.as_bytes() {
                h ^= u64::from(*byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
            eat_u64(&mut h, a.len as u64);
        }
        h
    }

    /// The static access trace: one operand set per long word, in block
    /// order. This is what the module-assignment algorithms consume.
    pub fn access_trace(&self) -> AccessTrace {
        let mut insts = Vec::with_capacity(self.word_count());
        for b in &self.blocks {
            for i in 0..b.words.len() {
                insts.push(OperandSet::new(
                    b.word_operands(i).into_iter().map(ValueId).collect(),
                ));
            }
        }
        AccessTrace::new(self.spec.modules, insts)
    }

    /// The region-partitioned trace for the STOR2 strategy: per-region word
    /// streams plus the set of data values live across regions (values read
    /// or written in more than one region).
    pub fn regionized_trace(&self) -> RegionizedTrace {
        let mut regions: Vec<Vec<OperandSet>> = vec![Vec::new(); self.n_regions];
        let mut region_uses: Vec<std::collections::HashSet<u32>> =
            vec![Default::default(); self.n_regions];

        for (bi, b) in self.blocks.iter().enumerate() {
            let r = self.region_of_block[bi] as usize;
            for i in 0..b.words.len() {
                let ops = b.word_operands(i);
                for &w in &ops {
                    region_uses[r].insert(w);
                }
                for op in &b.words[i].ops {
                    if let Some(w) = op.writes() {
                        region_uses[r].insert(w);
                    }
                }
                regions[r].push(OperandSet::new(ops.into_iter().map(ValueId).collect()));
            }
        }

        let mut count: std::collections::HashMap<u32, usize> = Default::default();
        for uses in &region_uses {
            for &w in uses {
                *count.entry(w).or_insert(0) += 1;
            }
        }
        let globals = count
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(w, _)| ValueId(w))
            .collect();

        RegionizedTrace {
            modules: self.spec.modules,
            regions,
            globals,
        }
    }

    /// Histogram of scalar-operand counts per word: `h[i]` = number of
    /// static words fetching exactly `i` distinct scalar values. The paper's
    /// conflict pressure is driven by this density (a word with `i` operands
    /// is an `i`-clique in the conflict graph).
    pub fn operand_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.spec.mem_ports + 2];
        for b in &self.blocks {
            for i in 0..b.words.len() {
                let n = b.word_operands(i).len().min(h.len() - 1);
                h[n] += 1;
            }
        }
        while h.len() > 1 && *h.last().unwrap() == 0 {
            h.pop();
        }
        h
    }

    /// Mean distinct scalar operands per word.
    pub fn mean_operands_per_word(&self) -> f64 {
        let h = self.operand_histogram();
        let total: usize = h.iter().sum();
        if total == 0 {
            return 0.0;
        }
        h.iter().enumerate().map(|(i, &c)| i * c).sum::<usize>() as f64 / total as f64
    }

    /// Count of scalar data values that actually appear in the trace
    /// (the paper's Table 1 counts scalars, i.e. placed values).
    pub fn used_values(&self) -> usize {
        let t = self.access_trace();
        let mut vals: std::collections::HashSet<u32> = t
            .instructions
            .iter()
            .flat_map(|i| i.iter().map(|v| v.0))
            .collect();
        for b in &self.blocks {
            for w in &b.words {
                for op in &w.ops {
                    if let Some(d) = op.writes() {
                        vals.insert(d);
                    }
                }
            }
        }
        vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule;

    #[test]
    fn operand_histogram_counts_words() {
        let tac = liw_ir::compile(
            "program t; var a, b, c, d, x, y: int;
             begin x := a + b; y := c + d; end.",
        )
        .unwrap();
        let sp = schedule(&tac, MachineSpec::with_modules(8));
        let h = sp.operand_histogram();
        assert_eq!(h.iter().sum::<usize>(), sp.word_count());
        // One word fetching 4 distinct scalars.
        assert_eq!(h.get(4), Some(&1), "{h:?}");
        assert!(sp.mean_operands_per_word() > 0.0);
    }

    #[test]
    fn empty_words_count_as_zero_operands() {
        let tac = liw_ir::compile("program t; begin end.").unwrap();
        let sp = schedule(&tac, MachineSpec::with_modules(4));
        let h = sp.operand_histogram();
        assert_eq!(h[0], sp.word_count());
    }
}
