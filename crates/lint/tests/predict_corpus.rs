//! The acceptance gate for the static conflict predictor: on every corpus
//! workload, the compile-time t_min / t_max / per-module transfer profile
//! must match the simulator's measured counters *exactly*, and the t_ave
//! expectation must sit within the documented `T_AVE_TOLERANCE` of one
//! measured uniform-random placement run.

use parmem_driver::Session;
use parmem_lint::{compare, T_AVE_TOLERANCE};

fn check(name: &str, source: &str, k: usize, seed: u64) {
    let session = Session::new(k).with_seed(seed);
    let prog = session.compile(source).expect(name);
    let (assignment, _) = session.assign(&prog);
    let rep = compare(&prog.sched, &assignment, seed)
        .unwrap_or_else(|e| panic!("{name} k={k}: simulation failed: {e}"));

    assert_eq!(
        rep.t_min_predicted, rep.t_min_measured,
        "{name} k={k}: t_min must be exact"
    );
    assert_eq!(
        rep.t_max_predicted, rep.t_max_measured,
        "{name} k={k}: t_max must be exact"
    );
    assert_eq!(
        rep.module_transfers_predicted, rep.module_transfers_measured,
        "{name} k={k}: per-module transfer profile must be exact"
    );
    assert!(
        rep.t_ave_rel_err() <= T_AVE_TOLERANCE,
        "{name} k={k}: t_ave rel err {} exceeds tolerance {} \
         (predicted {}, measured {})",
        rep.t_ave_rel_err(),
        T_AVE_TOLERANCE,
        rep.t_ave_predicted,
        rep.t_ave_measured
    );
    assert!(rep.within_tolerance(), "{name} k={k}: gate");
}

#[test]
fn predictor_matches_simulator_across_the_corpus() {
    for b in workloads::all_benchmarks() {
        for k in [2, 4] {
            check(b.name, b.source, k, 0xC0FFEE);
        }
    }
}

#[test]
fn predictor_matches_at_width_8_and_other_seeds() {
    let fft = workloads::by_name("FFT").unwrap();
    check(fft.name, fft.source, 8, 0xC0FFEE);
    for seed in [1, 42, 0xDEADBEEF] {
        check(fft.name, fft.source, 4, seed);
    }
}
