//! The counting global allocator (formerly `parmem_batch::metrics`; the
//! batch crate re-exports it so existing callers keep compiling).
//!
//! Wall time comes from [`std::time::Instant`]. Allocation counts come from
//! the optional [`CountingAlloc`] global allocator: a thin wrapper over the
//! system allocator that bumps thread-local counters on every `alloc`/
//! `realloc`. Binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: parmem_obs::alloc::CountingAlloc = parmem_obs::alloc::CountingAlloc;
//! ```
//!
//! (the `parmem` CLI does). When it is not installed the allocation fields
//! of [`crate::stage::StageMetrics`] simply stay zero — timing still works.
//! Counters are thread-local, so a stage's delta measured on a worker thread
//! counts only that job's allocations, not its neighbours'.
//!
//! ## High-water marks
//!
//! Beyond the cumulative totals, the allocator tracks *live* bytes
//! (allocated minus freed) and the *peak* live bytes seen — per thread
//! ([`alloc_live_peak`], [`reset_thread_peak`]) and process-wide
//! ([`global_live_peak`]). The thread-local path is exact for
//! single-threaded regions (each batch job runs its stages on one worker
//! thread); it can undercount live bytes when memory allocated on one
//! thread is freed on another, so readings are clamped at zero.
//!
//! The process-wide gauge is what the live `/metrics` endpoint serves. To
//! keep the per-allocation cost at plain thread-local `Cell` arithmetic,
//! threads batch their live-byte drift locally and only fold it into the
//! shared atomics once the pending delta exceeds
//! [`GLOBAL_FLUSH_BYTES`] — the global reading is therefore approximate,
//! with error bounded by `GLOBAL_FLUSH_BYTES × live threads`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};

thread_local! {
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
    static PEAK_BYTES: Cell<i64> = const { Cell::new(0) };
    static PENDING_GLOBAL: Cell<i64> = const { Cell::new(0) };
}

/// Thread-local live-byte drift threshold (bytes) above which a thread
/// folds its delta into the process-wide gauge.
pub const GLOBAL_FLUSH_BYTES: i64 = 64 * 1024;

static GLOBAL_LIVE: AtomicI64 = AtomicI64::new(0);
static GLOBAL_PEAK: AtomicI64 = AtomicI64::new(0);

/// Counting wrapper over the system allocator (see module docs).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter bumps use const-initialized
// thread-locals (no lazy init, hence no allocation inside the allocator), and
// `try_with` tolerates access during TLS teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        record_free(layout.size() as i64);
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only growth, so repeated doubling reads as net new bytes.
        record(new_size.saturating_sub(layout.size()) as u64);
        // Live bytes track the true size change in both directions.
        record_live(
            new_size as i64 - layout.size() as i64 - new_size.saturating_sub(layout.size()) as i64,
        );
        System.realloc(ptr, layout, new_size)
    }
}

fn record(bytes: u64) {
    let _ = ALLOC_BYTES.try_with(|b| b.set(b.get().wrapping_add(bytes)));
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    record_live(bytes as i64);
}

fn record_free(bytes: i64) {
    record_live(-bytes);
}

fn record_live(delta: i64) {
    if delta == 0 {
        return;
    }
    let _ = LIVE_BYTES.try_with(|l| {
        let live = l.get() + delta;
        l.set(live);
        if delta > 0 {
            let _ = PEAK_BYTES.try_with(|p| {
                if live > p.get() {
                    p.set(live);
                }
            });
        }
    });
    let _ = PENDING_GLOBAL.try_with(|pending| {
        let p = pending.get() + delta;
        if p.abs() >= GLOBAL_FLUSH_BYTES {
            pending.set(0);
            flush_global(p);
        } else {
            pending.set(p);
        }
    });
}

fn flush_global(delta: i64) {
    let live = GLOBAL_LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        GLOBAL_PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

/// Current thread's cumulative (bytes, count) allocation counters. Zeros
/// unless [`CountingAlloc`] is installed as the global allocator.
pub fn alloc_counters() -> (u64, u64) {
    (
        ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
        ALLOC_COUNT.try_with(Cell::get).unwrap_or(0),
    )
}

/// Current thread's (live bytes, peak live bytes), clamped at zero (a
/// thread that frees buffers allocated elsewhere can drift negative).
pub fn alloc_live_peak() -> (u64, u64) {
    let live = LIVE_BYTES.try_with(Cell::get).unwrap_or(0).max(0) as u64;
    let peak = PEAK_BYTES.try_with(Cell::get).unwrap_or(0).max(0) as u64;
    (live, peak)
}

/// Reset the current thread's peak to its current live level and return the
/// live level. [`crate::stage::StageTimer`] calls this at stage start so
/// the stage's `peak_bytes` measures the high-water mark *within* the
/// stage, not a leftover from earlier work.
pub fn reset_thread_peak() -> i64 {
    LIVE_BYTES
        .try_with(|l| {
            let live = l.get();
            let _ = PEAK_BYTES.try_with(|p| p.set(live));
            live
        })
        .unwrap_or(0)
}

/// Current thread's peak live bytes as a signed raw reading (used with the
/// [`reset_thread_peak`] baseline to compute a per-stage delta).
pub fn thread_peak_raw() -> i64 {
    PEAK_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// Approximate process-wide (live bytes, peak live bytes), clamped at
/// zero. Accuracy is bounded by [`GLOBAL_FLUSH_BYTES`] per live thread;
/// zeros unless [`CountingAlloc`] is installed.
pub fn global_live_peak() -> (u64, u64) {
    (
        GLOBAL_LIVE.load(Ordering::Relaxed).max(0) as u64,
        GLOBAL_PEAK.load(Ordering::Relaxed).max(0) as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_peak_follow_alloc_free_cycles() {
        // Drive the recording hooks directly: the unit-test binary does not
        // install the global allocator, so the counters move only when we
        // push them.
        let (_, peak0) = alloc_live_peak();
        record(10_000);
        let (live1, peak1) = alloc_live_peak();
        assert!(live1 >= 10_000);
        assert!(peak1 >= peak0.max(10_000));
        record_free(10_000);
        let (live2, peak2) = alloc_live_peak();
        assert!(live2 <= live1 - 10_000 || live1 < 10_000);
        assert_eq!(peak2, peak1, "peak never moves down on free");
    }

    #[test]
    fn reset_thread_peak_rebases_to_live() {
        record(4_096);
        record_free(4_096);
        let live = reset_thread_peak();
        assert_eq!(thread_peak_raw(), live);
        record(123);
        assert!(thread_peak_raw() >= live + 123);
        record_free(123);
    }

    #[test]
    fn global_gauge_moves_after_flush_threshold() {
        let (_, peak0) = global_live_peak();
        // One big recording exceeds the flush threshold immediately.
        record(2 * GLOBAL_FLUSH_BYTES as u64);
        let (_, peak1) = global_live_peak();
        assert!(peak1 >= peak0 + 2 * GLOBAL_FLUSH_BYTES as u64 - GLOBAL_FLUSH_BYTES as u64);
        record_free(2 * GLOBAL_FLUSH_BYTES);
    }
}
