//! Plain-text serialization for access traces — the `parmem` CLI's input
//! format, handy for experimenting with the assignment algorithms on
//! hand-written instruction streams.
//!
//! ```text
//! # comment (also ';' or '//' lines)
//! modules 3
//! x y t1        # one instruction per line: its operand names
//! y z t2
//! y z t1
//! ```
//!
//! Operand names are arbitrary identifiers; they are interned to dense
//! [`ValueId`]s in first-appearance order.

use std::collections::HashMap;
use std::fmt;

use crate::types::{AccessTrace, OperandSet, ValueId};

/// A parsed trace plus the name table for printing results back.
#[derive(Clone, Debug)]
pub struct NamedTrace {
    /// The machine-readable trace.
    pub trace: AccessTrace,
    /// Name of each dense value.
    pub names: Vec<String>,
}

impl NamedTrace {
    /// The value's display name.
    pub fn name(&self, v: ValueId) -> &str {
        &self.names[v.index()]
    }
}

/// Parse error with line number.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

/// Parse the text format described in the module docs.
pub fn parse_trace(text: &str) -> Result<NamedTrace, TraceParseError> {
    let mut modules: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();
    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut instructions = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        // Strip comments.
        let mut s = raw;
        for marker in ["#", ";", "//"] {
            if let Some(pos) = s.find(marker) {
                s = &s[..pos];
            }
        }
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = s.split_whitespace().collect();
        if tokens[0].eq_ignore_ascii_case("modules") {
            if tokens.len() != 2 {
                return Err(TraceParseError {
                    message: "expected `modules <count>`".into(),
                    line,
                });
            }
            let k: usize = tokens[1].parse().map_err(|_| TraceParseError {
                message: format!("bad module count `{}`", tokens[1]),
                line,
            })?;
            if !(1..=crate::types::MAX_MODULES).contains(&k) {
                return Err(TraceParseError {
                    message: format!("module count {k} out of range"),
                    line,
                });
            }
            if modules.replace(k).is_some() {
                return Err(TraceParseError {
                    message: "duplicate `modules` directive".into(),
                    line,
                });
            }
            continue;
        }
        let ops: Vec<ValueId> = tokens
            .iter()
            .map(|t| {
                let next = names.len() as u32;
                let id = *ids.entry(t.to_string()).or_insert_with(|| {
                    names.push(t.to_string());
                    next
                });
                ValueId(id)
            })
            .collect();
        instructions.push(OperandSet::new(ops));
    }

    let modules = modules.ok_or(TraceParseError {
        message: "missing `modules <count>` directive".into(),
        line: 0,
    })?;
    Ok(NamedTrace {
        trace: AccessTrace::new(modules, instructions),
        names,
    })
}

/// Serialize a trace back to the text format (canonical names `V<i>` when no
/// name table is given).
pub fn format_trace(trace: &AccessTrace, names: Option<&[String]>) -> String {
    let mut out = format!("modules {}\n", trace.modules);
    for inst in &trace.instructions {
        let line: Vec<String> = inst
            .iter()
            .map(|v| match names {
                Some(ns) => ns[v.index()].clone(),
                None => format!("V{}", v.0),
            })
            .collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_trace() {
        let t = parse_trace("# paper Fig. 1\nmodules 3\nV1 V2 V4\nV2 V3 V5\nV2 V3 V4\n").unwrap();
        assert_eq!(t.trace.modules, 3);
        assert_eq!(t.trace.instructions.len(), 3);
        assert_eq!(t.names.len(), 5);
        assert_eq!(t.name(ValueId(0)), "V1");
    }

    #[test]
    fn arbitrary_names_are_interned() {
        let t = parse_trace("modules 2\nx y\ny zulu\n").unwrap();
        assert_eq!(t.names, vec!["x", "y", "zulu"]);
        assert!(t.trace.instructions[1].contains(ValueId(1)));
        assert!(t.trace.instructions[1].contains(ValueId(2)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = parse_trace("; header\nmodules 2\n\n// c1\na b  # trailing\n").unwrap();
        assert_eq!(t.trace.instructions.len(), 1);
    }

    #[test]
    fn missing_modules_errors() {
        let e = parse_trace("a b\n").unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn duplicate_modules_errors() {
        let e = parse_trace("modules 2\nmodules 3\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn bad_module_count_errors() {
        assert!(parse_trace("modules zero\n").is_err());
        assert!(parse_trace("modules 0\n").is_err());
        assert!(parse_trace("modules 65\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let src = "modules 4\na b c\nc d\n";
        let t = parse_trace(src).unwrap();
        let printed = format_trace(&t.trace, Some(&t.names));
        let t2 = parse_trace(&printed).unwrap();
        assert_eq!(t.trace.instructions, t2.trace.instructions);
        assert_eq!(t.names, t2.names);
    }

    #[test]
    fn anonymous_format_uses_v_names() {
        let t = parse_trace("modules 2\nx y\n").unwrap();
        let s = format_trace(&t.trace, None);
        assert!(s.contains("V0 V1"), "{s}");
    }
}
