//! End-to-end glue: MiniLang source → TAC → scheduled long words → memory
//! module assignment → simulated execution. This is the programmatic API the
//! benchmark harness, the batch engine, and examples drive; each stage is
//! also individually invokable ([`frontend`], [`optimize_stage`],
//! [`schedule_stage`], [`assign`]) so callers can time and instrument them
//! separately.

use liw_ir::tac::TacProgram;
use liw_sched::{MachineSpec, SchedProgram};
use parmem_core::assignment::{AssignParams, Assignment, AssignmentReport};
use parmem_core::strategies::{run_strategy, Strategy};

use crate::arrays::ArrayPlacement;
use crate::machine::{self, SimError, SimStats};

/// Boxed error that can cross thread boundaries — every pipeline entry point
/// returns this so the batch engine can run stages on worker threads.
pub type PipelineError = Box<dyn std::error::Error + Send + Sync>;

/// A compiled program: the TAC (for the reference interpreter) plus the
/// scheduled long-word form (for the RLIW).
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Mid-level IR (runs on the reference interpreter).
    pub tac: TacProgram,
    /// Scheduled long-word form (runs on the RLIW simulator).
    pub sched: SchedProgram,
}

/// Compile MiniLang source for a machine with the given spec.
pub fn compile(src: &str, spec: MachineSpec) -> Result<CompiledProgram, PipelineError> {
    let tac = liw_ir::compile(src)?;
    let sched = liw_sched::schedule(&tac, spec);
    Ok(CompiledProgram { tac, sched })
}

/// Compile with innermost-loop unrolling (raises ILP so wide instruction
/// words actually fill; the paper's compiler achieved density through
/// global trace scheduling instead).
pub fn compile_unrolled(
    src: &str,
    spec: MachineSpec,
    cfg: liw_ir::unroll::UnrollConfig,
) -> Result<CompiledProgram, PipelineError> {
    compile_with(
        src,
        spec,
        CompileOptions {
            unroll: Some(cfg),
            optimize: false,
            rename: true,
        },
    )
}

/// Full front-end configuration.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Innermost-loop unrolling before lowering.
    pub unroll: Option<liw_ir::unroll::UnrollConfig>,
    /// Run the `liw-opt` scalar optimizer (value numbering, DCE, CFG
    /// simplification) before scheduling.
    pub optimize: bool,
    /// Rename variables into per-definition data values (webs); `false` is
    /// the ablation of the paper's §3 renaming remark.
    pub rename: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            unroll: None,
            optimize: true,
            rename: true,
        }
    }
}

/// Stage 1 — front end: parse (and optionally unroll) MiniLang source, lower
/// to TAC.
pub fn frontend(src: &str, opts: &CompileOptions) -> Result<TacProgram, PipelineError> {
    match opts.unroll {
        None => liw_ir::compile(src),
        Some(cfg) => liw_ir::compile_unrolled(src, cfg),
    }
}

/// Stage 2 — scalar optimizer. A no-op clone when `opts.optimize` is false.
/// A `select` reads three scalars, so if-conversion is only legal on
/// machines with at least three memory ports (on a 2-port machine a select
/// word could never be conflict-free).
pub fn optimize_stage(tac: &TacProgram, spec: MachineSpec, opts: &CompileOptions) -> TacProgram {
    if opts.optimize {
        let cfg = liw_opt::OptConfig {
            if_convert: spec.mem_ports >= 3,
        };
        liw_opt::optimize_with(tac, cfg).0
    } else {
        tac.clone()
    }
}

/// Stage 3 — long-instruction-word list scheduling.
pub fn schedule_stage(tac: &TacProgram, spec: MachineSpec, opts: &CompileOptions) -> SchedProgram {
    liw_sched::schedule_with(
        tac,
        spec,
        liw_sched::ScheduleOptions {
            rename: opts.rename,
            priority: liw_sched::SchedulePriority::CriticalPath,
        },
    )
}

/// Compile with explicit front-end options (stages 1–3 chained).
pub fn compile_with(
    src: &str,
    spec: MachineSpec,
    opts: CompileOptions,
) -> Result<CompiledProgram, PipelineError> {
    let tac = frontend(src, &opts)?;
    let tac = optimize_stage(&tac, spec, &opts);
    let sched = schedule_stage(&tac, spec, &opts);
    Ok(CompiledProgram { tac, sched })
}

/// Stage 4 — run a storage strategy over the scheduled program's trace.
pub fn assign(
    sched: &SchedProgram,
    strategy: Strategy,
    params: &AssignParams,
) -> (Assignment, AssignmentReport) {
    run_strategy(&sched.regionized_trace(), strategy, params)
}

/// The paper's Table 2 measurements for one program: transfer time under
/// each array policy, plus the analytic expectation.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub program: String,
    /// Machine size `k`.
    pub modules: usize,
    /// Δ-units if no array conflicts ever occur.
    pub t_min: u64,
    /// Exact expected transfer time under uniform array placement (paper's
    /// `t_ave = Σ i·Δ·p(i)`).
    pub t_ave_analytic: f64,
    /// Measured transfer time with seeded uniform-random placement.
    pub t_ave_measured: u64,
    /// Measured transfer time with interleaved placement.
    pub t_interleaved: u64,
    /// Transfer time with every array in one module.
    pub t_max: u64,
}

impl Table2Row {
    /// `t_ave/t_min` (analytic).
    pub fn ave_ratio(&self) -> f64 {
        self.t_ave_analytic / self.t_min as f64
    }

    /// `t_max/t_min`.
    pub fn max_ratio(&self) -> f64 {
        self.t_max as f64 / self.t_min as f64
    }

    /// `t_interleaved/t_min`.
    pub fn interleaved_ratio(&self) -> f64 {
        self.t_interleaved as f64 / self.t_min as f64
    }
}

/// Produce a Table 2 row by simulating under the four array policies.
///
/// `seed` is the user-level base seed; the uniform-random policy actually
/// runs with [`crate::arrays::uniform_seed`]`(seed, workload_digest)` so
/// that different programs draw independent sample paths (see the seeding
/// notes in `arrays.rs`).
pub fn table2_row(
    name: &str,
    sched: &SchedProgram,
    assignment: &Assignment,
    seed: u64,
) -> Result<Table2Row, SimError> {
    let seed = crate::arrays::uniform_seed(seed, sched.workload_digest());
    let ideal = machine::run(sched, assignment, ArrayPlacement::Ideal)?;
    let rand = machine::run(sched, assignment, ArrayPlacement::UniformRandom(seed))?;
    let inter = machine::run(sched, assignment, ArrayPlacement::Interleaved)?;
    let worst = machine::run(sched, assignment, ArrayPlacement::SameModule(0))?;
    Ok(Table2Row {
        program: name.to_string(),
        modules: sched.spec.modules,
        t_min: ideal.transfer_time,
        t_ave_analytic: ideal.expected_transfer_time,
        t_ave_measured: rand.transfer_time,
        t_interleaved: inter.transfer_time,
        t_max: worst.transfer_time,
    })
}

/// Result of a full verified run: the simulated stats plus the reference
/// interpreter's output/step count, with outputs checked for equality.
#[derive(Clone, Debug)]
pub struct VerifiedRun {
    /// Simulator statistics.
    pub stats: SimStats,
    /// Sequential reference step count.
    pub reference_steps: u64,
    /// Speed-up of the LIW machine over a 1-op-per-cycle sequential machine
    /// executing the same TAC (the paper reports 64–300%).
    pub speedup: f64,
}

/// The scheduled execution produced different output than the reference
/// interpreter — a compiler/simulator bug, never a data-layout effect.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Reference interpreter output.
    pub expected: Vec<liw_ir::Value>,
    /// Simulated output.
    pub actual: Vec<liw_ir::Value>,
    /// Index of the first differing value (None when only the lengths
    /// differ).
    pub first_mismatch: Option<usize>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduled execution diverged from reference semantics: \
             expected {} output value(s), got {}",
            self.expected.len(),
            self.actual.len()
        )?;
        if let Some(i) = self.first_mismatch {
            write!(
                f,
                "; first mismatch at index {i} ({} != {})",
                self.expected[i], self.actual[i]
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for Divergence {}

/// Simulate and cross-check against the reference interpreter, reporting a
/// divergence as a structured [`Divergence`] error instead of panicking —
/// the batch engine uses this so a miscompiled job degrades into a per-job
/// failure.
pub fn checked_run(
    prog: &CompiledProgram,
    assignment: &Assignment,
    policy: ArrayPlacement,
) -> Result<VerifiedRun, PipelineError> {
    let reference = liw_ir::run(&prog.tac)?;
    let stats = machine::run(&prog.sched, assignment, policy)?;
    if stats.output != reference.output {
        let first_mismatch = reference
            .output
            .iter()
            .zip(&stats.output)
            .position(|(a, b)| a != b);
        return Err(Box::new(Divergence {
            expected: reference.output,
            actual: stats.output,
            first_mismatch,
        }));
    }
    let speedup = reference.steps as f64 / stats.cycles as f64;
    Ok(VerifiedRun {
        stats,
        reference_steps: reference.steps,
        speedup,
    })
}

/// Simulate and cross-check against the reference interpreter. Panics if the
/// simulated output diverges from the reference semantics (use
/// [`checked_run`] to get a structured error instead).
pub fn verified_run(
    prog: &CompiledProgram,
    assignment: &Assignment,
    policy: ArrayPlacement,
) -> Result<VerifiedRun, PipelineError> {
    checked_run(prog, assignment, policy).map_err(|e| {
        if e.is::<Divergence>() {
            panic!("{e}");
        }
        e
    })
}

/// Convenience: compile, assign with STOR1 + defaults, and run verified.
pub fn quick_run(
    src: &str,
    k: usize,
    policy: ArrayPlacement,
) -> Result<(VerifiedRun, AssignmentReport), PipelineError> {
    let prog = compile(src, MachineSpec::with_modules(k))?;
    let (assignment, report) = assign(&prog.sched, Strategy::Stor1, &AssignParams::default());
    let run = verified_run(&prog, &assignment, policy)?;
    Ok((run, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "program demo; var a: array[32] of real; i: int; s: real;
        begin
          for i := 0 to 31 do a[i] := itor(i) * 0.5;
          s := 0.0;
          for i := 0 to 31 do s := s + a[i];
          print s;
        end.";

    #[test]
    fn quick_run_is_conflict_free_and_correct() {
        let (run, report) = quick_run(PROG, 8, ArrayPlacement::Interleaved).unwrap();
        assert_eq!(report.residual_conflicts, 0);
        assert_eq!(run.stats.scalar_conflict_words, 0);
        assert_eq!(run.stats.output.len(), 1);
        assert!(
            run.speedup > 1.0,
            "LIW should beat sequential: {}",
            run.speedup
        );
    }

    #[test]
    fn table2_row_orders_policies() {
        let prog = compile(PROG, MachineSpec::with_modules(8)).unwrap();
        let (a, _) = assign(&prog.sched, Strategy::Stor1, &AssignParams::default());
        let row = table2_row("demo", &prog.sched, &a, 42).unwrap();
        assert!(row.t_min <= row.t_ave_measured);
        assert!(row.t_ave_measured <= row.t_max);
        assert!(row.ave_ratio() >= 1.0);
        assert!(row.max_ratio() >= row.ave_ratio() * 0.99);
        // Analytic close to measured (one seed, so loose bound).
        let rel =
            (row.t_ave_analytic - row.t_ave_measured as f64).abs() / row.t_ave_analytic.max(1.0);
        assert!(
            rel < 0.2,
            "analytic {} vs measured {}",
            row.t_ave_analytic,
            row.t_ave_measured
        );
    }

    #[test]
    fn strategies_all_verify() {
        let prog = compile(PROG, MachineSpec::with_modules(8)).unwrap();
        for s in [Strategy::Stor1, Strategy::Stor2, Strategy::STOR3] {
            let (a, r) = assign(&prog.sched, s, &AssignParams::default());
            assert_eq!(r.residual_conflicts, 0, "{}", s.name());
            let run = verified_run(&prog, &a, ArrayPlacement::Interleaved).unwrap();
            assert_eq!(run.stats.scalar_conflict_words, 0, "{}", s.name());
        }
    }

    #[test]
    fn fewer_modules_increase_pressure() {
        let p8 = compile(PROG, MachineSpec::with_modules(8)).unwrap();
        let p2 = compile(PROG, MachineSpec::with_modules(2)).unwrap();
        let (a8, _) = assign(&p8.sched, Strategy::Stor1, &AssignParams::default());
        let (a2, _) = assign(&p2.sched, Strategy::Stor1, &AssignParams::default());
        let r8 = verified_run(&p8, &a8, ArrayPlacement::Ideal).unwrap();
        let r2 = verified_run(&p2, &a2, ArrayPlacement::Ideal).unwrap();
        // A 2-wide machine needs at least as many words.
        assert!(r2.stats.words >= r8.stats.words);
    }

    #[test]
    fn staged_compile_equals_compile_with() {
        let opts = CompileOptions::default();
        let spec = MachineSpec::with_modules(4);
        let tac = frontend(PROG, &opts).unwrap();
        let tac = optimize_stage(&tac, spec, &opts);
        let sched = schedule_stage(&tac, spec, &opts);
        let whole = compile_with(PROG, spec, opts).unwrap();
        assert_eq!(
            sched.access_trace().instructions,
            whole.sched.access_trace().instructions
        );
    }

    #[test]
    fn checked_run_matches_verified_run() {
        let prog = compile(PROG, MachineSpec::with_modules(8)).unwrap();
        let (a, _) = assign(&prog.sched, Strategy::Stor1, &AssignParams::default());
        let c = checked_run(&prog, &a, ArrayPlacement::Interleaved).unwrap();
        let v = verified_run(&prog, &a, ArrayPlacement::Interleaved).unwrap();
        assert_eq!(c.stats.cycles, v.stats.cycles);
        assert_eq!(c.stats.output, v.stats.output);
    }

    #[test]
    fn divergence_error_is_structured_and_downcastable() {
        let d = Divergence {
            expected: vec![liw_ir::Value::Int(1), liw_ir::Value::Int(2)],
            actual: vec![liw_ir::Value::Int(1), liw_ir::Value::Int(3)],
            first_mismatch: Some(1),
        };
        let s = d.to_string();
        assert!(s.contains("diverged") && s.contains("index 1"), "{s}");
        let boxed: PipelineError = Box::new(d);
        assert!(boxed.downcast_ref::<Divergence>().is_some());
    }
}
