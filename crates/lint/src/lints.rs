//! PML-coded lint diagnostics over `liw-ir` programs, mirroring
//! `parmem-verify`'s PM certificate codes: each lint is a pure consumer of
//! the shared dataflow analyses, and the diagnostic list is deterministic
//! (sorted by code, then location, then message).

use liw_ir::cfg::{natural_loops, Cfg};
use liw_ir::tac::{BlockId, TacProgram, Terminator};
use liw_ir::webs::TERM_IDX;

use crate::analyses::{
    ConstProp, ConstVal, DefiniteInit, Liveness, SubscriptAnalysis, SubscriptClass,
};

/// Stable lint codes (`PML` = parallel-memory lint).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// A scalar read may execute before any explicit assignment, relying on
    /// the implicit zero initialization on at least one path.
    PML001,
    /// A computed value is never read (dead store).
    PML002,
    /// A basic block is unreachable from the program entry.
    PML003,
    /// A branch condition is compile-time constant — one arm never runs.
    PML004,
    /// A constant array subscript is out of bounds.
    PML005,
    /// A strided array access whose stride shares a factor with the module
    /// count `k` under-uses the interleaved layout (bank hazard).
    PML006,
    /// A loop-invariant array subscript hits the same element — and so the
    /// same memory module — on every iteration.
    PML007,
}

impl LintCode {
    /// Stable textual code, e.g. `"PML001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::PML001 => "PML001",
            LintCode::PML002 => "PML002",
            LintCode::PML003 => "PML003",
            LintCode::PML004 => "PML004",
            LintCode::PML005 => "PML005",
            LintCode::PML006 => "PML006",
            LintCode::PML007 => "PML007",
        }
    }

    /// One-line description of what the code means.
    pub fn description(self) -> &'static str {
        match self {
            LintCode::PML001 => "read may rely on implicit zero initialization",
            LintCode::PML002 => "dead store: computed value is never read",
            LintCode::PML003 => "unreachable basic block",
            LintCode::PML004 => "branch condition is compile-time constant",
            LintCode::PML005 => "constant array subscript out of bounds",
            LintCode::PML006 => "array stride under-uses interleaved modules",
            LintCode::PML007 => "loop-invariant subscript hits one module every iteration",
        }
    }

    /// All codes, in order.
    pub const ALL: [LintCode; 7] = [
        LintCode::PML001,
        LintCode::PML002,
        LintCode::PML003,
        LintCode::PML004,
        LintCode::PML005,
        LintCode::PML006,
        LintCode::PML007,
    ];
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintDiag {
    /// The lint code.
    pub code: LintCode,
    /// Human-readable message.
    pub message: String,
    /// Block the finding is in, if location-specific.
    pub block: Option<u32>,
    /// Instruction index within the block (`TERM_IDX` = terminator).
    pub instr: Option<u32>,
}

impl LintDiag {
    fn new(code: LintCode, message: String) -> LintDiag {
        LintDiag {
            code,
            message,
            block: None,
            instr: None,
        }
    }

    fn at(mut self, block: BlockId, instr: Option<u32>) -> LintDiag {
        self.block = Some(block.0);
        self.instr = instr;
        self
    }

    /// Render as `CODE [Bb:i] message` (the stable text-report line).
    pub fn render(&self) -> String {
        let loc = match (self.block, self.instr) {
            (Some(b), Some(i)) if i == TERM_IDX => format!(" [B{b}:term]"),
            (Some(b), Some(i)) => format!(" [B{b}:{i}]"),
            (Some(b), None) => format!(" [B{b}]"),
            _ => String::new(),
        };
        format!("{}{loc} {}", self.code, self.message)
    }
}

/// Lint configuration.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Number of parallel memory modules (`k`) assumed by the layout-aware
    /// lints (PML006).
    pub modules: usize,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions { modules: 4 }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Run every lint over `p`, returning the deterministic diagnostic list.
pub fn lint_program(p: &TacProgram, opts: &LintOptions) -> Vec<LintDiag> {
    let span = parmem_obs::span("lint.analyze");
    let mut diags = Vec::new();
    let cfg = Cfg::build(p);

    // PML001: reads that may observe the implicit zero initializer. Only
    // named program variables are reported — temporaries are defined before
    // use by construction, and a temp finding would point at nothing the
    // programmer wrote.
    for (b, ii, v) in DefiniteInit::maybe_uninit_uses(p) {
        if p.var(v).is_temp {
            continue;
        }
        diags.push(
            LintDiag::new(
                LintCode::PML001,
                format!(
                    "`{}` may be read before explicit initialization (implicit zero on some path)",
                    p.var(v).name
                ),
            )
            .at(b, Some(ii)),
        );
    }

    // PML002: dead stores, from a per-block backward liveness walk.
    let lv = Liveness::compute(p);
    for &b in &cfg.rpo {
        let bi = b.index();
        let mut live = lv.live_out[bi].clone();
        for v in p.blocks[bi].term.reads() {
            live.insert(v.index());
        }
        for (ii, inst) in p.blocks[bi].instrs.iter().enumerate().rev() {
            if let Some(v) = inst.writes() {
                if !live.contains(v.index()) {
                    diags.push(
                        LintDiag::new(
                            LintCode::PML002,
                            format!("value stored to `{}` is never read", p.var(v).name),
                        )
                        .at(b, Some(ii as u32)),
                    );
                }
                live.remove(v.index());
            }
            for v in inst.reads() {
                live.insert(v.index());
            }
        }
    }

    // PML003: unreachable blocks.
    for bi in 0..p.blocks.len() {
        if !cfg.is_reachable(BlockId(bi as u32)) {
            diags.push(
                LintDiag::new(
                    LintCode::PML003,
                    "block is unreachable from the program entry".to_string(),
                )
                .at(BlockId(bi as u32), None),
            );
        }
    }

    // PML004: compile-time-constant branch conditions.
    let cp = ConstProp::compute(p);
    for &b in &cfg.rpo {
        let bi = b.index();
        if let Terminator::Branch { cond, .. } = &p.blocks[bi].term {
            let mut env = cp.entry_env[bi].clone();
            for inst in &p.blocks[bi].instrs {
                ConstProp::apply_instr(&mut env, inst);
            }
            if let ConstVal::Known(v) = ConstProp::eval_operand(&env, cond) {
                diags.push(
                    LintDiag::new(
                        LintCode::PML004,
                        format!("branch condition is always {}", v.as_bool()),
                    )
                    .at(b, Some(TERM_IDX)),
                );
            }
        }
    }

    // PML005/PML006/PML007: subscript-shape lints.
    let sa = SubscriptAnalysis::compute(p);
    let in_loop: Vec<bool> = {
        let loops = natural_loops(&cfg);
        let mut v = vec![false; p.blocks.len()];
        for l in &loops {
            for b in &l.blocks {
                v[b.index()] = true;
            }
        }
        v
    };
    let k = opts.modules.max(1) as u64;
    let mut keyed: Vec<(&(BlockId, u32), &SubscriptClass)> = sa.classes.iter().collect();
    keyed.sort_by_key(|((b, i), _)| (b.0, *i));
    for (&(b, ii), class) in keyed {
        let inst = &p.blocks[b.index()].instrs[ii as usize];
        let Some((arr, _)) = inst.array_access() else {
            continue;
        };
        let info = p.array(arr);
        match *class {
            SubscriptClass::Fixed(i) => {
                if i < 0 || i as usize >= info.len {
                    diags.push(
                        LintDiag::new(
                            LintCode::PML005,
                            format!(
                                "constant subscript {i} out of bounds for `{}` (len {})",
                                info.name, info.len
                            ),
                        )
                        .at(b, Some(ii)),
                    );
                } else if in_loop[b.index()] {
                    diags.push(
                        LintDiag::new(
                            LintCode::PML007,
                            format!(
                                "subscript of `{}` is fixed at {i} inside a loop: every \
                                 iteration hits the same module",
                                info.name
                            ),
                        )
                        .at(b, Some(ii)),
                    );
                }
            }
            SubscriptClass::Strided(s) => {
                let g = gcd(s.unsigned_abs(), k);
                if g > 1 {
                    diags.push(
                        LintDiag::new(
                            LintCode::PML006,
                            format!(
                                "stride-{s} access to `{}` touches only {} of {k} modules \
                                 under interleaving",
                                info.name,
                                k / g
                            ),
                        )
                        .at(b, Some(ii)),
                    );
                }
            }
            SubscriptClass::Invariant => {
                diags.push(
                    LintDiag::new(
                        LintCode::PML007,
                        format!(
                            "subscript of `{}` is loop-invariant: every iteration hits \
                             the same module",
                            info.name
                        ),
                    )
                    .at(b, Some(ii)),
                );
            }
            SubscriptClass::Unknown => {}
        }
    }

    diags.sort_by(|a, b| {
        (a.code, a.block, a.instr, &a.message).cmp(&(b.code, b.block, b.instr, &b.message))
    });

    if parmem_obs::enabled() {
        for d in &diags {
            parmem_obs::counter_add(&format!("lint.diags[code={}]", d.code.as_str()), 1);
        }
    }
    drop(span);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<LintDiag> {
        let p = liw_ir::compile(src).unwrap();
        lint_program(&p, &LintOptions::default())
    }

    fn has(diags: &[LintDiag], code: LintCode) -> bool {
        diags.iter().any(|d| d.code == code)
    }

    #[test]
    fn clean_program_has_no_diags() {
        let diags = lint("program t; var s: int; begin s := 1; print s; end.");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uninitialized_accumulator_is_pml001() {
        let diags = lint(
            "program t; var s, i: int;
            begin for i := 1 to 3 do s := s + i; print s; end.",
        );
        assert!(has(&diags, LintCode::PML001), "{diags:?}");
    }

    #[test]
    fn dead_store_is_pml002() {
        let diags = lint(
            "program t; var a, b: int;
            begin a := 1; a := 2; b := a; print b; end.",
        );
        assert!(has(&diags, LintCode::PML002), "{diags:?}");
    }

    #[test]
    fn constant_branch_is_pml004() {
        let diags = lint(
            "program t; var a, b: int;
            begin a := 1; if a > 0 then b := 1; else b := 2; print b; end.",
        );
        assert!(has(&diags, LintCode::PML004), "{diags:?}");
    }

    #[test]
    fn stride_sharing_factor_with_k_is_pml006() {
        let diags = lint(
            "program t; var a: array[64] of int; i: int;
            begin for i := 0 to 31 do a[i * 2] := i; end.",
        );
        assert!(has(&diags, LintCode::PML006), "{diags:?}");
        // Unit stride is clean.
        let ok = lint(
            "program t; var a: array[64] of int; i: int;
            begin for i := 0 to 63 do a[i] := i; end.",
        );
        assert!(!has(&ok, LintCode::PML006), "{ok:?}");
    }

    #[test]
    fn diags_are_sorted_and_render_stably() {
        let diags = lint(
            "program t; var s, i: int; a: array[8] of int;
            begin for i := 1 to 3 do s := s + a[i * 4]; print s; end.",
        );
        let mut sorted = diags.clone();
        sorted.sort_by(|a, b| {
            (a.code, a.block, a.instr, &a.message).cmp(&(b.code, b.block, b.instr, &b.message))
        });
        assert_eq!(diags, sorted);
        for d in &diags {
            assert!(d.render().starts_with(d.code.as_str()));
        }
    }
}
