//! Per-stage metrics vocabulary — now a thin re-export of [`parmem_obs`].
//!
//! The types lived here before the observability crate existed; they moved
//! to `parmem-obs` so the whole workspace can share them, and this module
//! re-exports them verbatim, keeping `parmem_batch::metrics::{StageKind,
//! StageMetrics, StageTimer, JobMetrics, CountingAlloc, alloc_counters}`
//! source-compatible for existing callers such as the `parmem` binary's
//! `#[global_allocator]` declaration.

pub use parmem_obs::alloc::{alloc_counters, CountingAlloc};
pub use parmem_obs::{JobMetrics, StageKind, StageMetrics, StageTimer};
