//! End-to-end pipeline benchmarks: compile+schedule cost, module
//! assignment cost, and simulated execution throughput per benchmark
//! program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use liw_sched::MachineSpec;
use parmem_core::assignment::AssignParams;
use parmem_core::strategies::Strategy;
use rliw_sim::pipeline::{assign, compile};
use rliw_sim::ArrayPlacement;

fn bench_compile_and_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_schedule");
    for b in workloads::benchmarks() {
        group.bench_with_input(
            BenchmarkId::from_parameter(b.name),
            &b.source,
            |bch, src| bch.iter(|| compile(src, MachineSpec::with_modules(8)).unwrap()),
        );
    }
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    for b in workloads::benchmarks() {
        let prog = compile(b.source, MachineSpec::with_modules(8)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(b.name),
            &prog.sched,
            |bch, s| bch.iter(|| assign(s, Strategy::Stor1, &AssignParams::default())),
        );
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    for name in ["FFT", "SORT"] {
        let b = workloads::by_name(name).unwrap();
        let prog = compile(b.source, MachineSpec::with_modules(8)).unwrap();
        let (a, _) = assign(&prog.sched, Strategy::Stor1, &AssignParams::default());
        group.bench_function(name, |bch| {
            bch.iter(|| rliw_sim::run(&prog.sched, &a, ArrayPlacement::Interleaved).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile_and_schedule,
    bench_assignment,
    bench_simulation
);
criterion_main!(benches);
