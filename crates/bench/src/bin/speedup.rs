//! Reproduce the paper's §3 prose claims: overall RLIW speed-up of 64-300%
//! over sequential execution, with array-conflict overhead below ~20%.
//!
//! Shown twice: with the plain per-block schedule, and with innermost-loop
//! unrolling ×4 (our stand-in for the ILP the paper's trace-scheduling
//! compiler exposed).
//!
//! Usage: `cargo run -p parmem-bench --bin speedup [-- <modules>]`

use parmem_bench::BenchConfig;

fn main() {
    let k = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    println!("(k = {k} memory modules / functional units)\n");
    println!("--- per-block schedule (no unrolling) ---");
    print!(
        "{}",
        parmem_bench::format_speedup(&parmem_bench::speedup_with(BenchConfig::new(k)))
    );
    println!("\n--- innermost loops unrolled x4 ---");
    print!(
        "{}",
        parmem_bench::format_speedup(&parmem_bench::speedup_with(BenchConfig::unrolled(k, 4)))
    );
}
