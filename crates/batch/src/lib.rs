#![warn(missing_docs)]

//! # parmem-batch
//!
//! Parallel batch pipeline engine: runs the full
//! source → IR → schedule → assignment → verification → simulation pipeline
//! over many `(program, k, strategy)` jobs concurrently on a vendored
//! work-stealing thread pool, with:
//!
//! * **deterministic result ordering** — results come back in submission
//!   order no matter which worker ran what, so reports are byte-identical
//!   across `--jobs` settings;
//! * **per-stage metrics** — wall time and (when the [`metrics::CountingAlloc`]
//!   global allocator is installed) allocation counts per pipeline stage,
//!   recorded into [`metrics::StageMetrics`];
//! * **panic isolation** — a poisoned job degrades into a structured
//!   [`job::JobError::Panic`] result instead of killing the run;
//! * **error policies** — fail-fast (cancel pending jobs on first failure)
//!   or collect-all.
//!
//! Entry points: [`run_batch`] over explicit [`JobSpec`]s, [`paper_jobs`]
//! for the paper's workload × k sweep, and the lower-level
//! [`pool::map_indexed`] for callers (like `parmem-bench`) that want the
//! work-stealing pool with their own job body.

pub mod job;
pub mod metrics;
pub mod pool;
pub mod report;

pub use job::{
    FaultInjection, GapSummary, JobError, JobOutput, JobResult, JobSpec, PlannedSummary,
};
pub use metrics::{JobMetrics, StageKind, StageMetrics};
pub use parmem_exact::ExactConfig;
pub use report::BatchReport;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parmem_core::strategies::Strategy;

// The whole point of the engine is shipping pipeline state across worker
// threads — assert the key types stay `Send + Sync` at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<parmem_core::assignment::Assignment>();
    assert_send_sync::<parmem_core::assignment::AssignmentReport>();
    assert_send_sync::<parmem_core::assignment::AssignParams>();
    assert_send_sync::<Strategy>();
    assert_send_sync::<parmem_core::types::AccessTrace>();
    assert_send_sync::<parmem_verify::VerifyReport>();
    assert_send_sync::<rliw_sim::pipeline::CompiledProgram>();
    assert_send_sync::<rliw_sim::SimStats>();
    assert_send_sync::<JobSpec>();
    assert_send_sync::<JobResult>();
    assert_send_sync::<BatchReport>();
};

/// What to do with the rest of the batch when a job fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Run every job regardless of failures (default).
    #[default]
    CollectAll,
    /// After the first failure, mark not-yet-started jobs as skipped.
    /// Already-running jobs finish normally.
    FailFast,
}

/// Batch execution options.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` = auto (`PARMEM_JOBS` env or available
    /// parallelism).
    pub jobs: usize,
    /// Failure policy.
    pub policy: ErrorPolicy,
}

/// Run every spec on the work-stealing pool and collect a [`BatchReport`]
/// with results in submission order.
pub fn run_batch(specs: Vec<JobSpec>, opts: &BatchOptions) -> BatchReport {
    let cancelled = AtomicBool::new(false);
    let fail_fast = opts.policy == ErrorPolicy::FailFast;
    let workers = pool::effective_jobs(opts.jobs);
    let t0 = Instant::now();
    let progress = parmem_obs::progress("batch.jobs", specs.len() as u64);
    let results = pool::map_indexed(specs, opts.jobs, |_, spec| {
        if fail_fast && cancelled.load(Ordering::Relaxed) {
            progress.tick(1);
            return JobResult::skipped(spec);
        }
        let r = job::run_job(&spec);
        if r.outcome.is_err() {
            cancelled.store(true, Ordering::Relaxed);
        }
        progress.tick(1);
        r
    });
    BatchReport {
        results,
        wall_ns: t0.elapsed().as_nanos() as u64,
        workers,
    }
}

/// Job specs for a workload sweep: every named benchmark at every `k`, under
/// every strategy, with the given seed. Order is benchmark-major then `k`
/// then strategy, matching the paper's table layouts.
pub fn sweep_jobs(
    benches: &[workloads::Benchmark],
    ks: &[usize],
    strategies: &[Strategy],
    seed: u64,
) -> Vec<JobSpec> {
    let mut specs = Vec::with_capacity(benches.len() * ks.len() * strategies.len());
    for b in benches {
        for &k in ks {
            for &s in strategies {
                specs.push(
                    JobSpec::new(b.name, b.source, k)
                        .with_strategy(s)
                        .with_seed(seed),
                );
            }
        }
    }
    specs
}

/// The standard paper sweep: all six Table 1/2 workloads at
/// `k ∈ {2, 4, 8}` under STOR1.
pub fn paper_jobs() -> Vec<JobSpec> {
    sweep_jobs(
        &workloads::benchmarks(),
        &[2, 4, 8],
        &[Strategy::Stor1],
        0xC0FFEE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(n: u32) -> String {
        format!(
            "program p{n}; var i, s: int;
             begin s := 0; for i := 1 to {} do s := s + i * i; print s; end.",
            n + 3
        )
    }

    #[test]
    fn batch_results_keep_submission_order() {
        let specs: Vec<JobSpec> = (0..6)
            .map(|n| JobSpec::new(format!("P{n}"), src(n), 4))
            .collect();
        let report = run_batch(
            specs,
            &BatchOptions {
                jobs: 3,
                ..Default::default()
            },
        );
        assert!(report.is_clean());
        let names: Vec<&str> = report
            .results
            .iter()
            .map(|r| r.spec.program.as_str())
            .collect();
        assert_eq!(names, ["P0", "P1", "P2", "P3", "P4", "P5"]);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let mk = || {
            (0..5)
                .map(|n| JobSpec::new(format!("P{n}"), src(n), 4))
                .collect::<Vec<_>>()
        };
        let a = run_batch(
            mk(),
            &BatchOptions {
                jobs: 1,
                ..Default::default()
            },
        );
        let b = run_batch(
            mk(),
            &BatchOptions {
                jobs: 4,
                ..Default::default()
            },
        );
        assert_eq!(a.to_json(false), b.to_json(false));
        assert_eq!(a.golden_lines(), b.golden_lines());
    }

    #[test]
    fn sweep_jobs_covers_the_cartesian_product() {
        let benches = workloads::benchmarks();
        let specs = sweep_jobs(&benches, &[2, 4, 8], &[Strategy::Stor1, Strategy::Stor2], 7);
        assert_eq!(specs.len(), benches.len() * 3 * 2);
        assert_eq!(specs[0].program, "TAYLOR1");
        assert_eq!(specs[0].k, 2);
        assert!(specs.iter().all(|s| s.seed == 7));
    }

    #[test]
    fn paper_jobs_are_the_acceptance_sweep() {
        let specs = paper_jobs();
        assert_eq!(specs.len(), 18);
    }
}
