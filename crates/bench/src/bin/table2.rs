//! Regenerate the paper's Table 2: memory conflicts due to array accesses,
//! `t_ave/t_min` and `t_max/t_min` for eight and four memory modules.
//!
//! Usage: `cargo run -p parmem-bench --bin table2`

fn main() {
    let csv = std::env::args().nth(1).as_deref() == Some("csv");
    eprintln!("simulating all benchmarks under 4 array policies x 2 machine sizes...");
    let rows8 = parmem_bench::table2(8);
    let rows4 = parmem_bench::table2(4);
    if csv {
        println!("program,k,t_min,t_ave_analytic,t_ave_measured,t_interleaved,t_max");
        for r in rows8.iter().chain(&rows4) {
            println!(
                "{},{},{},{:.2},{},{},{}",
                r.program,
                r.modules,
                r.t_min,
                r.t_ave_analytic,
                r.t_ave_measured,
                r.t_interleaved,
                r.t_max
            );
        }
        return;
    }
    print!("{}", parmem_bench::format_table2(&rows8, &rows4));
    println!(
        "\ndetail (k=8): program, t_min, t_ave(analytic), t_ave(measured), t_interleaved, t_max"
    );
    for r in &rows8 {
        println!(
            "  {:<10} {:>8} {:>12.1} {:>10} {:>10} {:>8}",
            r.program, r.t_min, r.t_ave_analytic, r.t_ave_measured, r.t_interleaved, r.t_max
        );
    }
}
