//! Vendored work-stealing thread pool (no external deps, same spirit as the
//! `rand`/`proptest` stubs): every worker owns a deque seeded round-robin
//! with tasks; a worker that drains its own deque steals from the *back* of
//! its neighbours', so an unlucky worker stuck on one heavy job sheds the
//! rest of its queue to idle peers. All tasks are enqueued up front and no
//! task spawns new tasks, so a worker may exit as soon as every deque is
//! empty — an in-flight task on another worker can no longer produce work.
//!
//! Results are returned **in item order** regardless of which worker ran
//! what, which is what makes batch output reproducible across `--jobs`.

use std::collections::VecDeque;
use std::sync::Mutex;

pub mod service;
pub use service::{PoolStats, ServicePool, SubmitError};

/// Worker count to use when the caller passes `jobs == 0`: the
/// `PARMEM_JOBS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::env::var("PARMEM_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Resolve a requested worker count (`0` = auto, see [`default_jobs`]).
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Apply `f` to every item on a work-stealing pool of `jobs` workers
/// (`0` = auto) and return the results in item order.
///
/// `f` runs concurrently on plain OS threads; a panic inside `f` propagates
/// (callers wanting isolation catch panics inside `f`, as the batch job
/// runner does).
pub fn map_indexed<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = effective_jobs(jobs).min(n.max(1));
    // Live progress over the whole map (inert — one relaxed atomic load —
    // while telemetry is disabled). Workers share the handle by reference.
    let progress = parmem_obs::progress("pool.map", n as u64);
    if jobs <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let r = f(i, t);
                progress.tick(1);
                r
            })
            .collect();
    }

    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, t) in items.into_iter().enumerate() {
        queues[i % jobs].lock().unwrap().push_back((i, t));
    }

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                let progress = &progress;
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own work first (front), then steal (back).
                        let mut task = queues[w].lock().unwrap().pop_front();
                        if task.is_none() {
                            for off in 1..queues.len() {
                                let victim = (w + off) % queues.len();
                                task = queues[victim].lock().unwrap().pop_back();
                                if task.is_some() {
                                    break;
                                }
                            }
                        }
                        match task {
                            Some((i, t)) => {
                                out.push((i, f(i, t)));
                                progress.tick(1);
                            }
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            for (i, r) in out {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every enqueued task produces exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_for_any_worker_count() {
        let items: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let out = map_indexed(items.clone(), jobs, |i, x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..97).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        map_indexed((0..50).collect::<Vec<usize>>(), 8, |_, x| {
            hits[x].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stealing_drains_uneven_queues() {
        // One heavy item pins a worker; the rest must still complete via
        // stealing (this terminates even without stealing, but stealing is
        // what keeps it fast — the assertion is on completeness).
        let out = map_indexed((0..32).collect::<Vec<usize>>(), 4, |_, x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_resolves_to_positive() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = map_indexed(Vec::<u32>::new(), 8, |_, x| x);
        assert!(out.is_empty());
    }
}
