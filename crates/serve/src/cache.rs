//! Content-addressed response cache with LRU byte-budget eviction.
//!
//! The daemon's responses are pure functions of their request: the
//! pipeline is deterministic in `(program text, k, strategy, options,
//! seed)` — the whole repository's byte-identical-across-`--jobs`
//! invariant — so a response computed once can be replayed verbatim for
//! every equivalent request. The [`CacheKey`] is that function's domain,
//! collapsed to digests: the FNV-1a hash of the program source, `k`, the
//! strategy discriminant, and the [`Session::config_digest`] of every
//! remaining output-affecting knob (which deliberately excludes worker
//! count).
//!
//! Eviction is least-recently-used under a **byte** budget (entries are
//! whole JSON bodies of wildly different sizes, so an entry-count budget
//! would be meaningless): every lookup bumps the entry's recency tick,
//! and inserts evict from the oldest tick until the total body bytes fit.
//! A body larger than the whole budget is never inserted (counted as
//! `oversized` instead of churning the entire cache through eviction).
//!
//! [`Session::config_digest`]: parmem_driver::Session::config_digest

use std::collections::{BTreeMap, HashMap};

/// FNV-1a over a byte string — the same digest the driver's job hashing
/// and `Session::config_digest` use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content address of one response: endpoint discriminant, program
/// digest, module count, strategy discriminant, and the digest of every
/// other output-affecting option.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Endpoint discriminant (assign/compile/exact/lint).
    pub endpoint: u8,
    /// FNV-1a digest of the program source (or the canonical synth spec).
    pub program: u64,
    /// Module count.
    pub k: u32,
    /// Strategy discriminant (registry index).
    pub strategy: u8,
    /// Digest of the remaining options (compile options, assignment
    /// params minus jobs, seed, exact budgets, predict flag).
    pub opts: u64,
}

/// One cached response: the exact bytes served plus their strong ETag.
#[derive(Clone, Debug)]
pub struct CachedResponse {
    /// Response body, replayed verbatim on a hit.
    pub body: String,
    /// Strong ETag (`"<fnv-of-body-hex>"`), for `If-None-Match`.
    pub etag: String,
}

/// Quoted strong ETag for a response body.
pub fn etag_for(body: &str) -> String {
    format!("\"{:016x}\"", fnv1a(body.as_bytes()))
}

/// Lifetime counters, exposed via `/v1/stats` and `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bodies stored (including replacements).
    pub insertions: u64,
    /// Bodies refused because they alone exceed the byte budget.
    pub oversized: u64,
}

struct Entry {
    response: CachedResponse,
    tick: u64,
}

/// The LRU byte-budget cache. Not internally synchronized — the daemon
/// wraps it in a `Mutex` (lookups and inserts are short: a hash probe and
/// at most a few evictions).
pub struct ResponseCache {
    budget: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    recency: BTreeMap<u64, CacheKey>,
    stats: CacheStats,
}

impl ResponseCache {
    /// An empty cache holding at most `budget` bytes of response bodies.
    pub fn new(budget: usize) -> ResponseCache {
        ResponseCache {
            budget,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Look `key` up, bumping its recency and the hit/miss counters.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<CachedResponse> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                self.recency.remove(&entry.tick);
                entry.tick = tick;
                self.recency.insert(tick, *key);
                self.stats.hits += 1;
                Some(entry.response.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store `body` under `key` (its ETag is derived here), evicting
    /// least-recently-used entries until the byte budget holds. Returns
    /// the stored response, or `None` when the body alone exceeds the
    /// budget.
    pub fn insert(&mut self, key: CacheKey, body: String) -> Option<CachedResponse> {
        let cost = body.len();
        if cost > self.budget {
            self.stats.oversized += 1;
            return None;
        }
        // Replacing an entry first releases its bytes and recency slot.
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.response.body.len();
            self.recency.remove(&old.tick);
        }
        while self.bytes + cost > self.budget {
            let (&oldest, &victim) = self
                .recency
                .iter()
                .next()
                .expect("bytes > 0 implies a recency entry");
            let evicted = self.map.remove(&victim).expect("recency maps into map");
            self.bytes -= evicted.response.body.len();
            self.recency.remove(&oldest);
            self.stats.evictions += 1;
        }
        self.tick += 1;
        let response = CachedResponse {
            etag: etag_for(&body),
            body,
        };
        self.bytes += cost;
        self.recency.insert(self.tick, key);
        self.map.insert(
            key,
            Entry {
                response: response.clone(),
                tick: self.tick,
            },
        );
        self.stats.insertions += 1;
        Some(response)
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Body bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The `"cache"` member of the `/v1/stats` document.
    pub fn stats_json(&self) -> String {
        let s = self.stats;
        format!(
            "{{\"budget_bytes\":{},\"bytes\":{},\"entries\":{},\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"insertions\":{},\"oversized\":{}}}",
            self.budget,
            self.bytes,
            self.map.len(),
            s.hits,
            s.misses,
            s.evictions,
            s.insertions,
            s.oversized
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            endpoint: 0,
            program: n,
            k: 4,
            strategy: 0,
            opts: 0,
        }
    }

    #[test]
    fn lookup_hits_after_insert_and_counts() {
        let mut c = ResponseCache::new(1024);
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), "body-one".to_string()).expect("fits");
        let hit = c.lookup(&key(1)).expect("hit");
        assert_eq!(hit.body, "body-one");
        assert_eq!(hit.etag, etag_for("body-one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn eviction_is_least_recently_used_by_bytes() {
        // Budget fits exactly two 10-byte bodies.
        let mut c = ResponseCache::new(20);
        c.insert(key(1), "aaaaaaaaaa".to_string()).unwrap();
        c.insert(key(2), "bbbbbbbbbb".to_string()).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(&key(1)).is_some());
        c.insert(key(3), "cccccccccc".to_string()).unwrap();
        assert!(c.lookup(&key(1)).is_some(), "recently used survives");
        assert!(c.lookup(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.lookup(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= c.budget());
    }

    #[test]
    fn oversized_bodies_are_refused_not_churned() {
        let mut c = ResponseCache::new(8);
        c.insert(key(1), "12345678".to_string()).unwrap();
        assert!(c.insert(key(2), "123456789".to_string()).is_none());
        assert_eq!(c.stats().oversized, 1);
        assert_eq!(c.stats().evictions, 0, "nothing evicted for a refusal");
        assert!(c.lookup(&key(1)).is_some(), "existing entry untouched");
    }

    #[test]
    fn replacement_releases_old_bytes() {
        let mut c = ResponseCache::new(16);
        c.insert(key(1), "aaaaaaaaaaaa".to_string()).unwrap(); // 12 bytes
        c.insert(key(1), "bbbb".to_string()).unwrap(); // replace with 4
        assert_eq!(c.bytes(), 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&key(1)).unwrap().body, "bbbb");
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut c = ResponseCache::new(1 << 20);
        let mut k2 = key(7);
        k2.strategy = 1;
        c.insert(key(7), "stor1".to_string()).unwrap();
        c.insert(k2, "stor2".to_string()).unwrap();
        assert_eq!(c.lookup(&key(7)).unwrap().body, "stor1");
        assert_eq!(c.lookup(&k2).unwrap().body, "stor2");
    }
}
