//! A minimal recursive-descent JSON reader, used by the Chrome-trace
//! validator and the exporter tests (this workspace vendors no serde).
//! Accepts standard JSON; numbers are parsed as `f64`.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass through).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }
}
