//! Quickstart: assign memory modules for a hand-written access trace.
//!
//! This reproduces the paper's running example (Fig. 1): three memory
//! modules, three long instructions. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use parallel_memories::core::prelude::*;

fn main() {
    // Paper Fig. 1: M = <M1, M2, M3>, instructions
    //   {V1 V2 V4}, {V2 V3 V5}, {V2 V3 V4}.
    let trace = AccessTrace::from_lists(3, &[&[1, 2, 4], &[2, 3, 5], &[2, 3, 4]]);

    let (assignment, report) = assign_trace(&trace, &AssignParams::default());

    println!("paper Fig. 1 — 3 modules, 3 instructions");
    println!("conflict-free: {}", report.residual_conflicts == 0);
    println!("values with one copy: {}", report.single_copy);
    println!("values duplicated:    {}", report.multi_copy);
    println!();
    for (value, modules) in assignment.placed_values() {
        let slots: Vec<String> = modules.iter().map(|m| m.to_string()).collect();
        println!("  {value} -> {}", slots.join(", "));
    }

    // Now extend the trace the way §2 does: adding {V2 V4 V5} makes a
    // single-copy assignment impossible, so a value gets duplicated.
    let extended = AccessTrace::from_lists(3, &[&[1, 2, 4], &[2, 3, 5], &[2, 3, 4], &[2, 4, 5]]);
    let (assignment, report) = assign_trace(&extended, &AssignParams::default());
    println!();
    println!("extended with {{V2 V4 V5}} (paper §2):");
    println!("conflict-free: {}", report.residual_conflicts == 0);
    println!(
        "values duplicated: {} (extra copies: {})",
        report.multi_copy, report.extra_copies
    );
    for (value, modules) in assignment.placed_values() {
        if modules.len() > 1 {
            let slots: Vec<String> = modules.iter().map(|m| m.to_string()).collect();
            println!("  {value} duplicated into {}", slots.join(", "));
        }
    }

    assert_eq!(report.residual_conflicts, 0);
}
