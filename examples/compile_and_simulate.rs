//! Compile a MiniLang program end to end, assign memory modules, and run it
//! on the simulated RLIW — comparing a conflict-aware layout against naive
//! baselines.
//!
//! ```text
//! cargo run --example compile_and_simulate [-- <benchmark>]
//! ```
//!
//! `<benchmark>` is one of TAYLOR1, TAYLOR2, EXACT, FFT, SORT, COLOR
//! (default FFT).

use parallel_memories::core::baseline;
use parallel_memories::driver::Session;
use parallel_memories::sim::{self, ArrayPlacement};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FFT".to_string());
    let bench = workloads::by_name(&name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));

    let k = 8;
    println!(
        "compiling {} for an RLIW with {k} memory modules...",
        bench.name
    );
    let session = Session::new(k).without_optimizer();
    let prog = session.compile(bench.source)?;
    let trace = prog.sched.access_trace();
    println!(
        "  {} long words (static), {} data values, {} regions",
        trace.instructions.len(),
        trace.distinct_values().len(),
        prog.sched.n_regions,
    );

    // Conflict-aware assignment (the paper's pipeline).
    let (smart, report) = session.assign(&prog);
    println!(
        "  assignment: {} single-copy, {} duplicated, residual conflicts {}",
        report.single_copy, report.multi_copy, report.residual_conflicts
    );

    let smart_run = session.verified_run(&prog, &smart, ArrayPlacement::Interleaved)?;
    println!("\nconflict-aware layout (interleaved arrays):");
    print_stats(&smart_run.stats);
    println!(
        "  speed-up over sequential: {:.0}%",
        (smart_run.speedup - 1.0) * 100.0
    );

    // Baselines.
    for (label, assignment) in [
        ("round-robin", baseline::round_robin(&trace)),
        ("single-module", baseline::single_module(&trace)),
    ] {
        let run = sim::run(&prog.sched, &assignment, ArrayPlacement::Interleaved)?;
        assert_eq!(
            run.output, smart_run.stats.output,
            "layout must not change results"
        );
        println!("\n{label} baseline:");
        print_stats(&run);
        let slowdown = run.cycles as f64 / smart_run.stats.cycles as f64;
        println!("  cycles vs conflict-aware: {slowdown:.2}x");
    }

    Ok(())
}

fn print_stats(s: &sim::SimStats) {
    println!(
        "  words {:>8}  cycles {:>8}  transfer-time {:>8}Δ  scalar-conflict words {}",
        s.words, s.cycles, s.transfer_time, s.scalar_conflict_words
    );
}
