#![warn(missing_docs)]

//! # rliw-sim
//!
//! Cycle-level simulator for the reconfigurable long-instruction-word (RLIW)
//! machine of Gupta & Soffa (PPOPP '88): `k` parallel memory modules,
//! lock-step functional units, one long word per cycle. Operand fetches
//! hitting the same module serialize at Δ per transfer — the simulator
//! accounts that time exactly, under compile-time-assigned scalar layouts
//! and a choice of array storage policies, and also evaluates the paper's
//! analytic `t_ave = Σ i·Δ·p(i)` model exactly per executed word.
//!
//! The [`pipeline`] module chains the whole system:
//! source → IR → schedule → assignment → simulation, with outputs
//! cross-checked against the `liw-ir` reference interpreter.

pub mod arrays;
pub mod machine;
pub mod model;
pub mod pipeline;

pub use arrays::{uniform_seed, ArrayPlacement};
pub use machine::{run, run_with_fuel, SimError, SimStats};
pub use pipeline::{
    assign, compile, compile_with, quick_run, table2_row, verified_run, CompileOptions,
    CompiledProgram, Table2Row, VerifiedRun,
};
