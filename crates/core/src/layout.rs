//! The unified compile-time memory layout: scalar assignment **and**
//! per-array placement in one artifact.
//!
//! The paper places scalars with a real compile-time assignment but only
//! *models* array conflicts statistically (Table 2's t_min/t_ave/t_max).
//! This module closes that gap: [`plan`] combines today's [`Assignment`]
//! with a deterministic per-element module mapping for every array, chosen
//! per [`ArrayPolicy`]:
//!
//! * [`ArrayPolicy::Interleaved`] — element `i` of array `a` lives in
//!   module `(a + i) mod k`, the classic interleaved layout (identical to
//!   the simulator's legacy statistical `Interleaved` policy).
//! * [`ArrayPolicy::Hash`] — Hanlon-style hash distribution (*Emulating a
//!   large memory with a collection of small ones*): the module is a
//!   mixed hash of `(array, index)`, which behaves like the paper's
//!   uniform t_ave assumption but is fully deterministic.
//! * [`ArrayPolicy::Block`] — block-per-module: contiguous `⌈len/k⌉`-sized
//!   chunks, the layout a banked scratchpad would use.
//! * [`ArrayPolicy::Auto`] — stride-aware choice: with a dominant access
//!   stride `s` coprime to `k`, a unit interleave factor already cycles
//!   accesses through all `k` modules, so interleaving is optimal; when
//!   `gcd(s, k) > 1` *no* linear interleave factor `u` can help (every
//!   access step `s·u mod k` stays a multiple of `gcd(s, k)`), so the
//!   planner falls back to the hash distribution to break the resonance.
//!
//! The module also hosts the paper's Fig. 10 copy-placement algorithm
//! ([`place_values`]) — the scalar half of layout planning — which
//! historically lived in `placement.rs` (still re-exported there).

use std::collections::{HashMap, HashSet};

use crate::assignment::Assignment;
use crate::types::{AccessTrace, ModuleId, ModuleSet, ValueId};

/// The compile-time array-placement policy knob surfaced by the driver,
/// the CLI (`--array-policy`), and the serve protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArrayPolicy {
    /// Module-interleaved: `(array + index) mod k`.
    Interleaved,
    /// Hash-distributed (uniform-like, deterministic).
    Hash,
    /// Block-per-module: contiguous `⌈len/k⌉` chunks.
    Block,
    /// Stride-aware per-array choice between interleaving and hashing.
    Auto,
}

impl ArrayPolicy {
    /// Stable lowercase name (CLI/serve spelling).
    pub fn name(self) -> &'static str {
        match self {
            ArrayPolicy::Interleaved => "interleaved",
            ArrayPolicy::Hash => "hash",
            ArrayPolicy::Block => "block",
            ArrayPolicy::Auto => "auto",
        }
    }

    /// Parse the CLI/serve spelling.
    pub fn parse(s: &str) -> Option<ArrayPolicy> {
        match s {
            "interleaved" => Some(ArrayPolicy::Interleaved),
            "hash" => Some(ArrayPolicy::Hash),
            "block" => Some(ArrayPolicy::Block),
            "auto" => Some(ArrayPolicy::Auto),
            _ => None,
        }
    }

    /// Every concrete policy (what benches and tests sweep). `Auto` is a
    /// choice rule, not a scheme, so it is not listed.
    pub const CONCRETE: [ArrayPolicy; 3] = [
        ArrayPolicy::Interleaved,
        ArrayPolicy::Hash,
        ArrayPolicy::Block,
    ];
}

impl std::fmt::Display for ArrayPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ArrayPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<ArrayPolicy, String> {
        ArrayPolicy::parse(s)
            .ok_or_else(|| format!("bad array policy `{s}` (interleaved|hash|block|auto)"))
    }
}

/// Plain-data access profile of one array — everything the planner needs,
/// decoupled from any IR type (`parmem-core` sits below `liw-ir` in the
/// crate graph). Producers: `liw-ir` access metadata enriched by
/// `parmem-lint`'s induction-variable stride analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayProfile {
    /// Source name (reports only).
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Static load sites.
    pub loads: u64,
    /// Static store sites.
    pub stores: u64,
    /// The most common subscript stride across the array's access sites,
    /// when induction-variable analysis could derive one.
    pub dominant_stride: Option<i64>,
}

/// The concrete per-element mapping scheme chosen for one array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayScheme {
    /// `module = (base + index) mod k`.
    Interleaved {
        /// Per-array offset (the array id, for legacy parity).
        base: u32,
    },
    /// `module = mix(salt, index) mod k`.
    Hash {
        /// Per-array salt folded into the mix.
        salt: u64,
    },
    /// `module = min(index / block, k-1)`.
    Block {
        /// Elements per module (`⌈len/k⌉`, at least 1).
        block: usize,
    },
}

impl ArrayScheme {
    /// The module holding element `index`, for a `k`-module machine.
    /// Total: any `i64` index maps to exactly one module in `0..k` (bounds
    /// errors are the executor's job, the mapper never panics).
    pub fn module_of(self, index: i64, k: usize) -> u16 {
        let k = k.max(1);
        match self {
            ArrayScheme::Interleaved { base } => {
                ((i64::from(base) + index).rem_euclid(k as i64)) as u16
            }
            ArrayScheme::Hash { salt } => {
                // SplitMix64-style finalizer: full-avalanche, so consecutive
                // indices (and any fixed stride) spread uniformly.
                let mut x = (index as u64) ^ salt;
                x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                (x % k as u64) as u16
            }
            ArrayScheme::Block { block } => {
                let block = block.max(1) as i64;
                let i = index.rem_euclid((block * k as i64).max(1));
                ((i / block) as usize).min(k - 1) as u16
            }
        }
    }
}

/// The layout planned for one array: its profile echo plus the scheme.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedArray {
    /// Source name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// The chosen per-element mapping.
    pub scheme: ArrayScheme,
}

/// The unified compile-time memory layout: the scalar [`Assignment`] plus a
/// deterministic per-element module mapping for every array, planned under
/// one [`ArrayPolicy`]. This is the single artifact the compiler emits and
/// the simulator's planned execution mode consumes.
#[derive(Clone, Debug)]
pub struct MemoryLayout {
    /// Memory modules.
    pub k: usize,
    /// The policy the plan was made under.
    pub policy: ArrayPolicy,
    /// Scalar value → module copies (unchanged from the assign stage).
    pub assignment: Assignment,
    /// Per-array plans, indexed by array id.
    pub arrays: Vec<PlannedArray>,
}

impl MemoryLayout {
    /// The module holding element `index` of array `array_id`. Total and
    /// in-range for every input (unknown array ids fall back to the
    /// interleaved rule so the mapper never panics mid-simulation).
    pub fn module_of(&self, array_id: u32, index: i64) -> u16 {
        match self.arrays.get(array_id as usize) {
            Some(a) => a.scheme.module_of(index, self.k),
            None => ArrayScheme::Interleaved { base: array_id }.module_of(index, self.k),
        }
    }

    /// FNV-1a digest over every byte of the plan: `k`, policy, each
    /// array's name/len/scheme, and the full scalar assignment in value
    /// order. Two layouts with equal digests place every scalar and every
    /// array element identically.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let eat = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(FNV_PRIME);
            }
            *h ^= 0xFF;
            *h = h.wrapping_mul(FNV_PRIME);
        };
        eat(&mut h, &(self.k as u64).to_le_bytes());
        eat(&mut h, self.policy.name().as_bytes());
        for a in &self.arrays {
            eat(&mut h, a.name.as_bytes());
            eat(&mut h, &(a.len as u64).to_le_bytes());
            match a.scheme {
                ArrayScheme::Interleaved { base } => {
                    eat(&mut h, b"interleaved");
                    eat(&mut h, &u64::from(base).to_le_bytes());
                }
                ArrayScheme::Hash { salt } => {
                    eat(&mut h, b"hash");
                    eat(&mut h, &salt.to_le_bytes());
                }
                ArrayScheme::Block { block } => {
                    eat(&mut h, b"block");
                    eat(&mut h, &(block as u64).to_le_bytes());
                }
            }
        }
        // placed_values iterates in value-id order, so this is canonical.
        for (v, set) in self.assignment.placed_values() {
            eat(&mut h, &u64::from(v.0).to_le_bytes());
            for m in set.iter() {
                eat(&mut h, &(m.index() as u64).to_le_bytes());
            }
        }
        h
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Per-array salt for the hash scheme: the array id mixed with a fixed
/// constant, so equal indices of different arrays land independently.
fn hash_salt(array_id: u32) -> u64 {
    (u64::from(array_id)).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x48_61_6e_6c_6f_6e
    // "Hanlon"
}

/// Plan the scheme for one array under `policy` (see the module docs for
/// the `Auto` rule).
fn plan_array(id: u32, profile: &ArrayProfile, policy: ArrayPolicy, k: usize) -> ArrayScheme {
    match policy {
        ArrayPolicy::Interleaved => ArrayScheme::Interleaved { base: id },
        ArrayPolicy::Hash => ArrayScheme::Hash {
            salt: hash_salt(id),
        },
        ArrayPolicy::Block => ArrayScheme::Block {
            block: profile.len.div_ceil(k.max(1)).max(1),
        },
        ArrayPolicy::Auto => match profile.dominant_stride {
            // gcd(s, k) == 1: the unit interleave factor is already coprime
            // to the stride — successive accesses cycle all k modules.
            Some(s) if gcd(s.unsigned_abs(), k.max(1) as u64) == 1 => {
                ArrayScheme::Interleaved { base: id }
            }
            // gcd(s, k) > 1 (including the degenerate stride 0): linear
            // interleaving resonates with the stride whatever the factor,
            // so hash-distribute instead.
            Some(_) => ArrayScheme::Hash {
                salt: hash_salt(id),
            },
            // Unknown stride: interleaving is the paper's default.
            None => ArrayScheme::Interleaved { base: id },
        },
    }
}

/// Produce the unified [`MemoryLayout`]: adopt the scalar `assignment`
/// verbatim and plan one [`ArrayScheme`] per profile under `policy`.
pub fn plan(
    k: usize,
    policy: ArrayPolicy,
    assignment: Assignment,
    profiles: &[ArrayProfile],
) -> MemoryLayout {
    let arrays = profiles
        .iter()
        .enumerate()
        .map(|(id, p)| PlannedArray {
            name: p.name.clone(),
            len: p.len,
            scheme: plan_array(id as u32, p, policy, k),
        })
        .collect();
    MemoryLayout {
        k,
        policy,
        assignment,
        arrays,
    }
}

/// Place exactly one new copy of each value in `values` (in the paper's
/// grouped priority order), updating `assignment`.
///
/// The placement algorithm of paper Fig. 10 — decide *which module* receives
/// each new copy scheduled by the duplication phase. Instructions with
/// access conflicts are grouped by how many of their operands are in
/// `V_unassigned` (group `I_1` = one duplicable operand — the most
/// constrained — up to `I_k`). Values are placed one at a time, most
/// constrained first; each copy goes to the module that frees the
/// lexicographically best vector of conflict counts
/// `(C_{M,I_1} .. C_{M,I_k})`. The paper resolves remaining ties randomly;
/// we use deterministic tie-breaks (fewest pairwise clashes, then lightest
/// module, then lowest index) so runs are reproducible.
///
/// `unassigned` is the full `V_unassigned` set — it defines the instruction
/// grouping. Values already holding copies in every module are skipped.
pub fn place_values(
    trace: &AccessTrace,
    unassigned: &HashSet<ValueId>,
    values: &[ValueId],
    assignment: &mut Assignment,
) {
    let k = trace.modules;
    if values.is_empty() || k == 0 {
        return;
    }

    // Group index per instruction — the paper groups by the number of
    // single-copy operands, most constrained first (Fig. 10 / §2.2.2.2).
    // For a k-operand instruction, "i operands in V_unassigned" ⇔ "k−i
    // single-copy operands"; for shorter instructions the unused operand
    // slots also add slack, so the group index is the instruction's degrees
    // of freedom: duplicable operands + empty slots. Group 1 = exactly one
    // way out.
    let group_of: Vec<usize> = trace
        .instructions
        .iter()
        .map(|inst| {
            let dup = inst.iter().filter(|v| unassigned.contains(v)).count();
            dup + k.saturating_sub(inst.len())
        })
        .collect();

    // Live set of currently conflicting instruction indices (≤ k operands).
    let mut conflicting: Vec<bool> = trace
        .instructions
        .iter()
        .map(|inst| inst.len() <= k && !assignment.instruction_conflict_free(inst))
        .collect();

    // Per-module copy load for tie-breaking.
    let mut load = vec![0usize; k];
    for (_, set) in assignment.placed_values() {
        for m in set.iter() {
            load[m.index()] += 1;
        }
    }

    // Order the values: descending lexicographic count of conflicting
    // instructions containing the value, per group I_1..I_k.
    let mut ordered: Vec<ValueId> = {
        let mut uniq: Vec<ValueId> = values.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        uniq
    };

    // Inverted occurrence index: the instruction indices containing each
    // value to place, built in one trace scan. Every use below (priority
    // vectors, the live conflict set, the clash tie-break) walks only a
    // value's own occurrences instead of the whole trace — the difference
    // between O(U·I) and O(total occurrences) when U and I are both large.
    let slot: HashMap<ValueId, usize> = ordered.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut occ: Vec<Vec<u32>> = vec![Vec::new(); ordered.len()];
    for (idx, inst) in trace.instructions.iter().enumerate() {
        for v in inst.iter() {
            if let Some(&s) = slot.get(&v) {
                occ[s].push(idx as u32);
            }
        }
    }

    let count_vector = |v: ValueId, conflicting: &[bool]| -> Vec<usize> {
        let mut counts = vec![0usize; k + 1];
        for &idx in &occ[slot[&v]] {
            let idx = idx as usize;
            if conflicting[idx] && group_of[idx] >= 1 {
                counts[group_of[idx].min(k)] += 1;
            }
        }
        counts
    };
    {
        let snapshot = conflicting.clone();
        ordered.sort_by(|&a, &b| {
            count_vector(b, &snapshot)
                .cmp(&count_vector(a, &snapshot))
                .then(a.cmp(&b))
        });
    }

    for v in ordered {
        let existing = assignment.copies(v);
        let candidates = ModuleSet::all(k).difference(existing);
        if candidates.is_empty() {
            continue; // already everywhere
        }

        // Instructions that contain v and currently conflict.
        let relevant: Vec<usize> = occ[slot[&v]]
            .iter()
            .map(|&idx| idx as usize)
            .filter(|&idx| conflicting[idx])
            .collect();

        let mut best: Option<(Vec<usize>, usize, usize, ModuleId)> = None;
        for m in candidates.iter() {
            // C vector: conflicts freed per group if v gets a copy in m.
            let mut freed = vec![0usize; k + 1];
            assignment.add_copy(v, m);
            for &idx in &relevant {
                if assignment.instruction_conflict_free(&trace.instructions[idx]) {
                    freed[group_of[idx].min(k)] += 1;
                }
            }
            assignment.set_copies(v, existing);

            // Tie-break 1: pairwise clashes with single-copy co-operands.
            let mut clashes = 0usize;
            for &idx in &occ[slot[&v]] {
                let inst = &trace.instructions[idx as usize];
                for o in inst.iter() {
                    if o != v {
                        let oc = assignment.copies(o);
                        if oc.len() == 1 && oc.contains(m) {
                            clashes += 1;
                        }
                    }
                }
            }

            let key = (freed, clashes, load[m.index()], m);
            let better = match &best {
                None => true,
                Some((bf, bc, bl, bm)) => {
                    // Larger freed vector wins; then fewer clashes; then
                    // lighter module; then lower index.
                    key.0
                        .cmp(bf)
                        .then(bc.cmp(&key.1))
                        .then(bl.cmp(&key.2))
                        .then(bm.0.cmp(&key.3 .0))
                        == std::cmp::Ordering::Greater
                }
            };
            if better {
                best = Some(key);
            }
        }

        if let Some((_, _, _, m)) = best {
            assignment.add_copy(v, m);
            load[m.index()] += 1;
            // Refresh conflict status of instructions containing v.
            for &idx in &relevant {
                if assignment.instruction_conflict_free(&trace.instructions[idx]) {
                    conflicting[idx] = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccessTrace;

    fn hs(vals: &[u32]) -> HashSet<ValueId> {
        vals.iter().map(|&v| ValueId(v)).collect()
    }

    fn profile(name: &str, len: usize, stride: Option<i64>) -> ArrayProfile {
        ArrayProfile {
            name: name.to_string(),
            len,
            loads: 1,
            stores: 1,
            dominant_stride: stride,
        }
    }

    #[test]
    fn interleaved_scheme_matches_legacy_rule() {
        // Parity with the simulator's legacy statistical policy:
        // module = (array_id + index) mod k.
        let layout = plan(
            4,
            ArrayPolicy::Interleaved,
            Assignment::new(4),
            &[profile("a", 8, None), profile("b", 8, None)],
        );
        for id in 0..2u32 {
            for i in 0..16i64 {
                assert_eq!(
                    layout.module_of(id, i),
                    ((i64::from(id) + i).rem_euclid(4)) as u16
                );
            }
        }
    }

    #[test]
    fn every_scheme_is_total_and_in_range() {
        for policy in [
            ArrayPolicy::Interleaved,
            ArrayPolicy::Hash,
            ArrayPolicy::Block,
            ArrayPolicy::Auto,
        ] {
            for k in [1usize, 2, 3, 4, 7, 8] {
                let layout = plan(
                    k,
                    policy,
                    Assignment::new(k),
                    &[profile("a", 13, Some(2)), profile("b", 1, Some(0))],
                );
                for id in 0..2u32 {
                    for i in [-5i64, -1, 0, 1, 6, 12, 13, 1 << 40] {
                        let m = layout.module_of(id, i);
                        assert!((m as usize) < k, "{policy:?} k={k} a{id}[{i}] -> {m}");
                    }
                }
            }
        }
    }

    #[test]
    fn block_scheme_is_contiguous() {
        let layout = plan(
            4,
            ArrayPolicy::Block,
            Assignment::new(4),
            &[profile("a", 16, None)],
        );
        let mods: Vec<u16> = (0..16).map(|i| layout.module_of(0, i)).collect();
        assert_eq!(mods[..4], [0, 0, 0, 0]);
        assert_eq!(mods[4..8], [1, 1, 1, 1]);
        assert_eq!(mods[12..], [3, 3, 3, 3]);
    }

    #[test]
    fn hash_scheme_covers_all_modules() {
        let layout = plan(
            8,
            ArrayPolicy::Hash,
            Assignment::new(8),
            &[profile("a", 256, None)],
        );
        let mut seen = [0u32; 8];
        for i in 0..256 {
            seen[layout.module_of(0, i) as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "uneven: {seen:?}");
        // Different arrays hash independently.
        let layout2 = plan(
            8,
            ArrayPolicy::Hash,
            Assignment::new(8),
            &[profile("a", 256, None), profile("b", 256, None)],
        );
        let same = (0..256).filter(|&i| layout2.module_of(0, i) == layout2.module_of(1, i));
        assert!(same.count() < 256);
    }

    #[test]
    fn auto_interleaves_coprime_strides_and_hashes_resonant_ones() {
        // Stride 3 on k=4: coprime, interleave. Stride 2 on k=4: resonant
        // (gcd 2), hash. Unknown stride: interleave.
        let layout = plan(
            4,
            ArrayPolicy::Auto,
            Assignment::new(4),
            &[
                profile("coprime", 8, Some(3)),
                profile("resonant", 8, Some(2)),
                profile("unknown", 8, None),
            ],
        );
        assert!(matches!(
            layout.arrays[0].scheme,
            ArrayScheme::Interleaved { .. }
        ));
        assert!(matches!(layout.arrays[1].scheme, ArrayScheme::Hash { .. }));
        assert!(matches!(
            layout.arrays[2].scheme,
            ArrayScheme::Interleaved { .. }
        ));
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = Assignment::new(4);
        a.add_copy(ValueId(3), ModuleId(1));
        let l1 = plan(4, ArrayPolicy::Hash, a.clone(), &[profile("a", 8, None)]);
        assert_eq!(l1.digest(), l1.clone().digest());
        // Policy, array shape, and scalar assignment all move the digest.
        let l2 = plan(4, ArrayPolicy::Block, a.clone(), &[profile("a", 8, None)]);
        assert_ne!(l1.digest(), l2.digest());
        let l3 = plan(4, ArrayPolicy::Hash, a.clone(), &[profile("a", 9, None)]);
        assert_ne!(l1.digest(), l3.digest());
        let mut a2 = a.clone();
        a2.add_copy(ValueId(5), ModuleId(2));
        let l4 = plan(4, ArrayPolicy::Hash, a2, &[profile("a", 8, None)]);
        assert_ne!(l1.digest(), l4.digest());
    }

    #[test]
    fn policy_parsing_roundtrips() {
        for p in [
            ArrayPolicy::Interleaved,
            ArrayPolicy::Hash,
            ArrayPolicy::Block,
            ArrayPolicy::Auto,
        ] {
            assert_eq!(ArrayPolicy::parse(p.name()), Some(p));
            assert_eq!(p.name().parse::<ArrayPolicy>().unwrap(), p);
        }
        assert!(ArrayPolicy::parse("random").is_none());
        assert!("bogus".parse::<ArrayPolicy>().is_err());
    }

    // ---- Fig. 10 copy placement (moved from placement.rs) ----

    #[test]
    fn first_copy_goes_to_conflict_freeing_module() {
        // k=3. V1 fixed M0, V2 fixed M1, V3 unplaced and unassigned.
        // Instruction {1,2,3} becomes free only if V3 lands in M2.
        let t = AccessTrace::from_lists(3, &[&[1, 2, 3]]);
        let mut a = Assignment::new(3);
        a.add_copy(ValueId(1), ModuleId(0));
        a.add_copy(ValueId(2), ModuleId(1));
        place_values(&t, &hs(&[3]), &[ValueId(3)], &mut a);
        assert_eq!(a.copies(ValueId(3)), ModuleSet::singleton(ModuleId(2)));
        assert!(a.instruction_conflict_free(&t.instructions[0]));
    }

    #[test]
    fn second_copy_lands_in_different_module() {
        let t = AccessTrace::from_lists(3, &[&[1, 2, 3]]);
        let mut a = Assignment::new(3);
        a.add_copy(ValueId(3), ModuleId(0));
        place_values(&t, &hs(&[3]), &[ValueId(3)], &mut a);
        let copies = a.copies(ValueId(3));
        assert_eq!(copies.len(), 2);
        assert!(copies.contains(ModuleId(0)));
    }

    #[test]
    fn saturated_value_is_skipped() {
        let t = AccessTrace::from_lists(2, &[&[1, 2]]);
        let mut a = Assignment::new(2);
        a.set_copies(ValueId(1), ModuleSet::all(2));
        place_values(&t, &hs(&[1]), &[ValueId(1)], &mut a);
        assert_eq!(a.copies(ValueId(1)), ModuleSet::all(2));
    }

    #[test]
    fn constrained_instruction_drives_choice() {
        // Paper's motivation: an instruction with only one duplicable operand
        // admits exactly one fixing module; that choice should be taken even
        // when a looser instruction would prefer elsewhere.
        // k=3. Instruction A: {1,2,9} with V1@M0, V2@M1 fixed → V9 must go M2.
        // Instruction B: {3,9} with V3@M2 — would prefer V9 at M0/M1, but A
        // has priority (group I_1, maximal constraint) and B stays fixable
        // later (V9's *second* copy can handle it).
        let t = AccessTrace::from_lists(3, &[&[1, 2, 9], &[3, 9]]);
        let mut a = Assignment::new(3);
        a.add_copy(ValueId(1), ModuleId(0));
        a.add_copy(ValueId(2), ModuleId(1));
        a.add_copy(ValueId(3), ModuleId(2));
        place_values(&t, &hs(&[9]), &[ValueId(9)], &mut a);
        // The chosen module must free instruction A.
        assert!(
            a.instruction_conflict_free(&t.instructions[0]),
            "copies of V9: {:?}",
            a.copies(ValueId(9))
        );
    }

    #[test]
    fn placement_prefers_freeing_more_conflicts() {
        // V9 conflicts in two instructions; both are freed by M2, only one by
        // M1. Lex-max vector must pick M2.
        let t = AccessTrace::from_lists(3, &[&[1, 2, 9], &[4, 2, 9]]);
        let mut a = Assignment::new(3);
        a.add_copy(ValueId(1), ModuleId(0));
        a.add_copy(ValueId(4), ModuleId(0));
        a.add_copy(ValueId(2), ModuleId(1));
        place_values(&t, &hs(&[9]), &[ValueId(9)], &mut a);
        assert_eq!(a.copies(ValueId(9)), ModuleSet::singleton(ModuleId(2)));
        assert_eq!(a.residual_conflicts(&t), 0);
    }

    #[test]
    fn empty_values_is_noop() {
        let t = AccessTrace::from_lists(2, &[&[1, 2]]);
        let mut a = Assignment::new(2);
        place_values(&t, &hs(&[]), &[], &mut a);
        assert_eq!(a.total_copies(), 0);
    }
}
