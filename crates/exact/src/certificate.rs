//! Machine-checkable optimality certificates.
//!
//! A [`Certificate`] records what the solver *proved* about the minimum
//! residual-conflict count of any single-copy k-module assignment, together
//! with the evidence a third party needs to re-check the claim without
//! re-running the search:
//!
//! * the **witness** — a complete single-copy assignment whose residual is
//!   the claimed `upper` bound (recountable from the trace);
//! * the **clique evidence** — vertex-disjoint cliques of size `> k` with
//!   pairwise-disjoint instruction supports; each valid clique forces at
//!   least one distinct conflicting instruction in *every* single-copy
//!   assignment, so their count is a checkable lower bound
//!   (`evidence_lower`);
//! * search counters and the budget flag, so a reader can tell a closed
//!   proof from an anytime result.
//!
//! `lower` may exceed `evidence_lower` when the branch-and-bound search ran
//! to completion (a search proof is exact but not cheaply re-checkable);
//! `evidence_lower <= lower <= upper` always holds, and `parmem-verify`
//! re-validates all of it as PM201–PM206 diagnostics.

use parmem_core::types::{ModuleId, ValueId};

/// What the certificate proves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertStatus {
    /// `lower == upper`: the witness is optimal.
    Optimal,
    /// `lower >= 1` but the gap is open: no conflict-free single-copy
    /// assignment exists at this `k`, and the witness is the best found.
    InfeasibleAtK,
    /// `lower == 0 < upper`: budget exhausted with the gap open.
    Bounded,
}

impl CertStatus {
    /// Stable lower-case name used in JSON and text output.
    pub fn as_str(&self) -> &'static str {
        match self {
            CertStatus::Optimal => "optimal",
            CertStatus::InfeasibleAtK => "infeasible-at-k",
            CertStatus::Bounded => "bounded",
        }
    }

    /// The status implied by a `[lower, upper]` bound pair.
    pub fn classify(lower: usize, upper: usize) -> CertStatus {
        if lower == upper {
            CertStatus::Optimal
        } else if lower >= 1 {
            CertStatus::InfeasibleAtK
        } else {
            CertStatus::Bounded
        }
    }
}

/// A certified bound on the minimum residual-conflict count over all
/// single-copy assignments of a trace to `k` modules.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Number of memory modules the bound is relative to.
    pub k: usize,
    /// What the bounds prove (see [`CertStatus::classify`]).
    pub status: CertStatus,
    /// Certified lower bound on the minimum residual.
    pub lower: usize,
    /// The part of `lower` backed by clique evidence (re-checkable without
    /// replaying the search); `evidence_lower <= lower`.
    pub evidence_lower: usize,
    /// Residual-conflict count of the witness (best assignment found).
    pub upper: usize,
    /// Extra copies the duplication repair adds on top of the witness to
    /// reach a conflict-free assignment (0 when `upper == 0`).
    pub copies_upper: usize,
    /// The witness: one module per distinct trace value, sorted by value.
    pub witness: Vec<(ValueId, ModuleId)>,
    /// Clique evidence: vertex-disjoint cliques of size `> k` with
    /// pairwise-disjoint instruction supports.
    pub cliques: Vec<Vec<ValueId>>,
    /// Branch-and-bound nodes expanded before returning.
    pub nodes_expanded: u64,
    /// How many times the incumbent improved (seed + search + portfolio).
    pub bounds_tightened: u64,
    /// Iterated-local-search perturbation restarts performed.
    pub ils_restarts: u64,
    /// Whether any component's search stopped on the node/time budget.
    pub budget_exhausted: bool,
}

impl Certificate {
    /// Whether the certificate proves no conflict-free single-copy
    /// assignment exists at `k`.
    pub fn proves_infeasible(&self) -> bool {
        self.lower >= 1
    }

    /// Deterministic JSON encoding (no external serializer in the
    /// workspace; field order is fixed).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.witness.len() * 8);
        s.push_str("{\"schema\":\"parmem-cert/v1\"");
        s.push_str(&format!(",\"k\":{}", self.k));
        s.push_str(&format!(",\"status\":\"{}\"", self.status.as_str()));
        s.push_str(&format!(",\"lower\":{}", self.lower));
        s.push_str(&format!(",\"evidence_lower\":{}", self.evidence_lower));
        s.push_str(&format!(",\"upper\":{}", self.upper));
        s.push_str(&format!(",\"copies_upper\":{}", self.copies_upper));
        s.push_str(&format!(",\"nodes_expanded\":{}", self.nodes_expanded));
        s.push_str(&format!(",\"bounds_tightened\":{}", self.bounds_tightened));
        s.push_str(&format!(",\"ils_restarts\":{}", self.ils_restarts));
        s.push_str(&format!(",\"budget_exhausted\":{}", self.budget_exhausted));
        s.push_str(",\"witness\":[");
        for (i, (v, m)) in self.witness.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{}]", v.0, m.0));
        }
        s.push_str("],\"cliques\":[");
        for (i, clique) in self.cliques.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, v) in clique.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&v.0.to_string());
            }
            s.push(']');
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matches_doc() {
        assert_eq!(CertStatus::classify(0, 0), CertStatus::Optimal);
        assert_eq!(CertStatus::classify(2, 2), CertStatus::Optimal);
        assert_eq!(CertStatus::classify(1, 3), CertStatus::InfeasibleAtK);
        assert_eq!(CertStatus::classify(0, 3), CertStatus::Bounded);
    }

    #[test]
    fn json_shape_is_stable() {
        let c = Certificate {
            k: 2,
            status: CertStatus::Optimal,
            lower: 1,
            evidence_lower: 1,
            upper: 1,
            copies_upper: 1,
            witness: vec![(ValueId(0), ModuleId(0)), (ValueId(1), ModuleId(1))],
            cliques: vec![vec![ValueId(0), ValueId(1), ValueId(2)]],
            nodes_expanded: 7,
            bounds_tightened: 1,
            ils_restarts: 0,
            budget_exhausted: false,
        };
        let j = c.to_json();
        assert!(j.starts_with("{\"schema\":\"parmem-cert/v1\""));
        assert!(j.contains("\"status\":\"optimal\""));
        assert!(j.contains("\"witness\":[[0,0],[1,1]]"));
        assert!(j.contains("\"cliques\":[[0,1,2]]"));
        assert!(j.ends_with('}'));
    }
}
