//! The lock-step RLIW machine: executes a scheduled program one long word
//! per cycle, fetching each word's operands from the `k` parallel memory
//! modules and stalling when several fetches hit the same module.
//!
//! Timing model (paper §3): a module performs one data transfer per Δ; all
//! modules work in parallel, so a word's memory-transfer time is
//! `max-load × Δ` where max-load is the busiest module's access count. The
//! simulator reports actual transfer time under the chosen
//! [`ArrayPlacement`], the analytic expectation under the uniform assumption
//! (`t_ave` — computed exactly per executed word), and the usual execution
//! statistics.

use liw_ir::tac::{eval_op, Value};
use liw_sched::{SOperand, SchedProgram, SchedTerm, SlotOp};
use parmem_core::assignment::Assignment;
use parmem_core::matching::makespan_schedule;
use parmem_core::types::{ModuleId, ModuleSet, ValueId};

use crate::arrays::{ArrayModuleMap, ArrayPlacement};
use crate::model::MaxloadTable;

/// Execution + memory statistics for one simulated run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Long words executed.
    pub words: u64,
    /// Machine cycles, counting stalls (`max(1, makespan)` per word).
    pub cycles: u64,
    /// Total memory-transfer time in Δ units under the actual array policy
    /// (Σ per-word max-load).
    pub transfer_time: u64,
    /// Exact expected transfer time under the paper's uniform-array
    /// assumption, accumulated per executed word (`t_ave`).
    pub expected_transfer_time: f64,
    /// Words that performed at least one memory access.
    pub mem_words: u64,
    /// Words whose *scalar* fetches alone conflicted (should be 0 with a
    /// verified assignment).
    pub scalar_conflict_words: u64,
    /// Scalar reads of values with no assigned module (should be 0).
    pub unplaced_reads: u64,
    /// makespan histogram: `makespan_hist[i]` = words with max-load `i`.
    pub makespan_hist: Vec<u64>,
    /// Accumulated analytic distribution Σ_w p_w(i) (divide by `mem_words`
    /// for the paper's `p(i)`).
    pub analytic_hist: Vec<f64>,
    /// Extra write transfers for duplicated values (each definition of a
    /// value with `c` copies schedules `c-1` module-to-module transfers).
    pub copy_write_transfers: u64,
    /// Transfers served per memory module (utilization profile).
    pub module_transfers: Vec<u64>,
    /// Scalar reads of values that hold more than one copy (the reads
    /// duplication spent memory on).
    pub dup_reads: u64,
    /// The subset of [`dup_reads`](SimStats::dup_reads) where the makespan
    /// scheduler actually used a copy *other than* the value's primary
    /// (lowest-index) module — i.e. the duplication paid off by letting the
    /// fetch dodge a busy module. `dup_alt_reads / dup_reads` is the
    /// duplication read hit-rate.
    pub dup_alt_reads: u64,
    /// Operations executed.
    pub ops: u64,
    /// Executions per basic block (indexed by block id) — the trip counts
    /// the static conflict predictor weights its per-word model with.
    pub block_exec: Vec<u64>,
    /// `print` output, in order.
    pub output: Vec<Value>,
}

impl SimStats {
    /// `t_min`: transfer time if no array access ever conflicts — every
    /// memory word costs exactly the scalar makespan (1 with a verified
    /// assignment).
    pub fn t_min(&self) -> u64 {
        self.mem_words
    }

    /// The paper's `p(i)`: probability that an instruction requires `i`
    /// operands from the same memory module, under the uniform-array
    /// assumption, averaged over the executed memory words.
    pub fn p_distribution(&self) -> Vec<f64> {
        if self.mem_words == 0 {
            return Vec::new();
        }
        self.analytic_hist
            .iter()
            .map(|&s| s / self.mem_words as f64)
            .collect()
    }

    fn bump_hist(&mut self, m: usize) {
        if self.makespan_hist.len() <= m {
            self.makespan_hist.resize(m + 1, 0);
        }
        self.makespan_hist[m] += 1;
    }
}

/// Simulation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// Executed more words than the fuel limit allows.
    OutOfFuel,
    /// Array index out of bounds.
    Bounds {
        /// Array name.
        array: String,
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfFuel => write!(f, "cycle limit exceeded"),
            SimError::Bounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (len {len})")
            }
        }
    }
}

impl std::error::Error for SimError {}

fn zero(ty: liw_ir::Ty) -> Value {
    match ty {
        liw_ir::Ty::Int => Value::Int(0),
        liw_ir::Ty::Real => Value::Real(0.0),
        liw_ir::Ty::Bool => Value::Bool(false),
    }
}

/// Execute `prog` under `assignment` with the given array policy.
///
/// `fuel` bounds the number of executed words (use
/// [`run`] for the default 100M).
pub fn run_with_fuel(
    prog: &SchedProgram,
    assignment: &Assignment,
    policy: ArrayPlacement,
    mut fuel: u64,
) -> Result<SimStats, SimError> {
    assert_eq!(
        assignment.modules(),
        prog.spec.modules,
        "assignment and machine must agree on k"
    );
    let k = prog.spec.modules;
    let mut run_span = parmem_obs::span("sim.run");
    run_span.attr("policy", policy.label());
    run_span.attr("k", k);
    let policy_label = policy.label();
    let mut arrays_map = ArrayModuleMap::new(policy, k);
    let mut table = MaxloadTable::new();

    // Runtime state: one logical value per data value (all copies hold the
    // same contents — copies are kept coherent by the compile-time-scheduled
    // broadcast transfers counted below), plus array storage.
    let mut values: Vec<Value> = (0..prog.n_values)
        .map(|w| zero(prog.var_ty[prog.value_var[w].index()]))
        .collect();
    let mut arrays: Vec<Vec<Value>> = prog
        .arrays
        .iter()
        .map(|a| vec![zero(a.elem); a.len])
        .collect();

    let mut stats = SimStats {
        block_exec: vec![0; prog.blocks.len()],
        ..SimStats::default()
    };
    let mut block = prog.entry;

    let read = |values: &[Value], o: &SOperand| -> Value {
        match o {
            SOperand::Const(c) => *c,
            SOperand::Scalar(w) => values[*w as usize],
        }
    };

    'outer: loop {
        stats.block_exec[block.index()] += 1;
        let b = &prog.blocks[block.index()];
        for wi in 0..b.words.len() {
            if fuel == 0 {
                return Err(SimError::OutOfFuel);
            }
            fuel -= 1;
            let word = &b.words[wi];

            // ---- evaluate ops against the word-start snapshot ----
            let mut scalar_writes: Vec<(u32, Value)> = Vec::new();
            let mut array_writes: Vec<(usize, usize, Value)> = Vec::new();
            let mut array_modules: Vec<Option<u16>> = Vec::new();
            for op in &word.ops {
                stats.ops += 1;
                match op {
                    SlotOp::Compute { dest, op, lhs, rhs } => {
                        let a = read(&values, lhs);
                        let b2 = rhs.as_ref().map(|r| read(&values, r));
                        scalar_writes.push((*dest, eval_op(*op, a, b2)));
                    }
                    SlotOp::Load { dest, arr, index } => {
                        let i = read(&values, index).as_int();
                        let store = &arrays[arr.index()];
                        if i < 0 || i as usize >= store.len() {
                            return Err(SimError::Bounds {
                                array: prog.arrays[arr.index()].name.clone(),
                                index: i,
                                len: store.len(),
                            });
                        }
                        array_modules.push(arrays_map.module_for(arr.0, i));
                        scalar_writes.push((*dest, store[i as usize]));
                    }
                    SlotOp::Store { arr, index, value } => {
                        let i = read(&values, index).as_int();
                        let v = read(&values, value);
                        let store = &arrays[arr.index()];
                        if i < 0 || i as usize >= store.len() {
                            return Err(SimError::Bounds {
                                array: prog.arrays[arr.index()].name.clone(),
                                index: i,
                                len: store.len(),
                            });
                        }
                        array_modules.push(arrays_map.module_for(arr.0, i));
                        array_writes.push((arr.index(), i as usize, v));
                    }
                    SlotOp::Print { value } => {
                        stats.output.push(read(&values, value));
                    }
                    SlotOp::Select {
                        cond,
                        if_true,
                        if_false,
                        dest,
                    } => {
                        let v = if read(&values, cond).as_bool() {
                            read(&values, if_true)
                        } else {
                            read(&values, if_false)
                        };
                        scalar_writes.push((*dest, v));
                    }
                }
            }

            // ---- memory accounting ----
            let scalar_webs = b.word_operands(wi);
            let mut op_sets: Vec<ModuleSet> = scalar_webs
                .iter()
                .map(|&w| assignment.copies(ValueId(w)))
                .collect();
            for s in op_sets.iter_mut() {
                if s.is_empty() {
                    stats.unplaced_reads += 1;
                    *s = ModuleSet::singleton(ModuleId(0));
                }
            }
            let (sched_mods, scalar_makespan) =
                makespan_schedule(&op_sets).expect("no empty sets remain");
            let mut loads = vec![0u32; k];
            for (&m, set) in sched_mods.iter().zip(&op_sets) {
                loads[m as usize] += 1;
                if set.len() > 1 {
                    stats.dup_reads += 1;
                    if Some(ModuleId(m)) != set.first() {
                        stats.dup_alt_reads += 1;
                    }
                }
            }
            if scalar_makespan > 1 {
                stats.scalar_conflict_words += 1;
            }

            let n_array = array_modules.len();
            let any_access = !scalar_webs.is_empty() || n_array > 0;

            // Analytic expectation from scalar base loads + uniform arrays.
            if any_access {
                let (e, dist) = table.lookup(&loads, n_array).clone();
                stats.expected_transfer_time += e;
                if stats.analytic_hist.len() < dist.len() {
                    stats.analytic_hist.resize(dist.len(), 0.0);
                }
                for (i, p) in dist.iter().enumerate() {
                    stats.analytic_hist[i] += p;
                }
            }

            // Actual max-load under the chosen policy.
            for m in array_modules.iter().flatten() {
                loads[*m as usize] += 1;
            }
            let mut makespan = *loads.iter().max().unwrap_or(&0) as usize;
            if any_access {
                makespan = makespan.max(1);
            }

            if stats.module_transfers.len() < k {
                stats.module_transfers.resize(k, 0);
            }
            for (m, &l) in loads.iter().enumerate() {
                stats.module_transfers[m] += l as u64;
            }
            stats.words += 1;
            stats.cycles += makespan.max(1) as u64;
            stats.transfer_time += makespan as u64;
            if any_access {
                stats.mem_words += 1;
                stats.bump_hist(makespan);
            }

            // Copy-creation transfers: each def of a duplicated value
            // broadcasts to its extra copies.
            for &(w, _) in &scalar_writes {
                let c = assignment.copies(ValueId(w)).len();
                if c > 1 {
                    stats.copy_write_transfers += (c - 1) as u64;
                }
            }

            // ---- commit writes ----
            for (w, v) in scalar_writes {
                values[w as usize] = v;
            }
            for (a, i, v) in array_writes {
                arrays[a][i] = v;
            }
        }

        match &b.term {
            SchedTerm::Jump(t) => block = *t,
            SchedTerm::Branch {
                cond,
                then_to,
                else_to,
            } => {
                block = if read(&values, cond).as_bool() {
                    *then_to
                } else {
                    *else_to
                };
            }
            SchedTerm::Halt => break 'outer,
        }
    }

    run_span.attr("words", stats.words);
    run_span.attr("cycles", stats.cycles);
    publish_metrics(&stats, policy_label);
    Ok(stats)
}

/// Publish the run's deterministic aggregates to the [`parmem_obs`] metric
/// registries, labelled by array policy. Called once per run (never per
/// instruction, keeping the simulator hot loop observation-free); a no-op
/// while tracing is disabled.
fn publish_metrics(stats: &SimStats, policy: &str) {
    if !parmem_obs::enabled() {
        return;
    }
    // Per-word max-load histogram: how many words stalled, and how badly —
    // the per-instruction conflict profile behind the paper's p(i).
    for (makespan, &n) in stats.makespan_hist.iter().enumerate() {
        parmem_obs::hist_record_n(
            &format!("sim.word_makespan[policy={policy}]"),
            makespan as u64,
            n,
        );
    }
    // Per-module access profile (memory utilization).
    for (m, &n) in stats.module_transfers.iter().enumerate() {
        parmem_obs::counter_add(
            &format!("sim.module_transfers[module={m},policy={policy}]"),
            n,
        );
    }
    parmem_obs::counter_add(&format!("sim.words[policy={policy}]"), stats.words);
    parmem_obs::counter_add(&format!("sim.cycles[policy={policy}]"), stats.cycles);
    parmem_obs::counter_add(
        &format!("sim.transfer_time[policy={policy}]"),
        stats.transfer_time,
    );
    parmem_obs::counter_add(
        &format!("sim.scalar_conflict_words[policy={policy}]"),
        stats.scalar_conflict_words,
    );
    parmem_obs::counter_add(
        &format!("sim.copy_write_transfers[policy={policy}]"),
        stats.copy_write_transfers,
    );
    // Duplication read hit-rate inputs.
    parmem_obs::counter_add(&format!("sim.dup_reads[policy={policy}]"), stats.dup_reads);
    parmem_obs::counter_add(
        &format!("sim.dup_alt_reads[policy={policy}]"),
        stats.dup_alt_reads,
    );
}

/// Execute with the default fuel (10^8 words).
pub fn run(
    prog: &SchedProgram,
    assignment: &Assignment,
    policy: ArrayPlacement,
) -> Result<SimStats, SimError> {
    run_with_fuel(prog, assignment, policy, 100_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_sched::{compile_and_schedule, MachineSpec};
    use parmem_core::assignment::{assign_trace, AssignParams};

    fn setup(src: &str, k: usize) -> (SchedProgram, Assignment) {
        let sp = compile_and_schedule(src, MachineSpec::with_modules(k)).unwrap();
        let (a, r) = assign_trace(&sp.access_trace(), &AssignParams::default());
        assert_eq!(r.residual_conflicts, 0, "assignment failed: {r:?}");
        (sp, a)
    }

    const SUM: &str = "program t; var i, s, n: int;
        begin
          n := 50; s := 0;
          for i := 1 to n do s := s + i;
          print s;
        end.";

    #[test]
    fn produces_same_output_as_reference_interpreter() {
        let (sp, a) = setup(SUM, 8);
        let stats = run(&sp, &a, ArrayPlacement::Interleaved).unwrap();
        let reference = liw_ir::run_source(SUM).unwrap();
        assert_eq!(stats.output, reference.output);
        assert_eq!(stats.output, vec![Value::Int(1275)]);
    }

    #[test]
    fn verified_assignment_has_no_scalar_conflicts() {
        let (sp, a) = setup(SUM, 8);
        let stats = run(&sp, &a, ArrayPlacement::Ideal).unwrap();
        assert_eq!(stats.scalar_conflict_words, 0);
        assert_eq!(stats.unplaced_reads, 0);
        // Ideal arrays + conflict-free scalars → t == t_min.
        assert_eq!(stats.transfer_time, stats.t_min());
    }

    #[test]
    fn single_module_baseline_serializes() {
        let (sp, _) = setup(SUM, 8);
        let baseline = parmem_core::baseline::single_module(&sp.access_trace());
        let stats = run(&sp, &baseline, ArrayPlacement::Ideal).unwrap();
        // Words reading ≥2 scalars now stall.
        assert!(stats.scalar_conflict_words > 0);
        let good = setup(SUM, 8).1;
        let good_stats = run(&sp, &good, ArrayPlacement::Ideal).unwrap();
        assert!(stats.cycles > good_stats.cycles);
        // Output is unaffected by conflicts.
        assert_eq!(stats.output, good_stats.output);
    }

    const ARRAY_PROG: &str = "program t; var a: array[64] of int; i, s: int;
        begin
          for i := 0 to 63 do a[i] := i;
          s := 0;
          for i := 0 to 63 do s := s + a[i];
          print s;
        end.";

    #[test]
    fn array_policies_order_correctly() {
        let (sp, a) = setup(ARRAY_PROG, 8);
        let ideal = run(&sp, &a, ArrayPlacement::Ideal).unwrap();
        let inter = run(&sp, &a, ArrayPlacement::Interleaved).unwrap();
        let rand = run(&sp, &a, ArrayPlacement::UniformRandom(1)).unwrap();
        let worst = run(&sp, &a, ArrayPlacement::SameModule(0)).unwrap();
        assert_eq!(ideal.output, vec![Value::Int(2016)]);
        assert_eq!(ideal.output, worst.output);
        // t_min ≤ t_interleaved, t_random ≤ t_max.
        assert!(ideal.transfer_time <= inter.transfer_time);
        assert!(ideal.transfer_time <= rand.transfer_time);
        assert!(inter.transfer_time <= worst.transfer_time);
        assert!(rand.transfer_time <= worst.transfer_time);
        // Analytic expectation sits between min and max too.
        assert!(ideal.expected_transfer_time >= ideal.t_min() as f64 - 1e-9);
        assert!(ideal.expected_transfer_time <= worst.transfer_time as f64 + 1e-9);
    }

    #[test]
    fn analytic_matches_monte_carlo_average() {
        let (sp, a) = setup(ARRAY_PROG, 4);
        let analytic = run(&sp, &a, ArrayPlacement::Ideal)
            .unwrap()
            .expected_transfer_time;
        // Average actual transfer over many random seeds.
        let trials = 30;
        let mut total = 0u64;
        for seed in 0..trials {
            total += run(&sp, &a, ArrayPlacement::UniformRandom(seed))
                .unwrap()
                .transfer_time;
        }
        let mc = total as f64 / trials as f64;
        let rel = (analytic - mc).abs() / analytic;
        assert!(rel < 0.05, "analytic {analytic} vs monte-carlo {mc}");
    }

    #[test]
    fn copy_transfers_counted_for_duplicated_values() {
        // Force duplication with a tiny k and a dense program.
        let src = "program t; var a, b, c, d, e: int;
            begin
              a := 1; b := 2; c := 3; d := 4; e := 5;
              a := b + c; b := c + d; c := d + e; d := e + a; e := a + b;
              print a + b + c + d + e;
            end.";
        let sp = compile_and_schedule(src, MachineSpec::with_modules(3)).unwrap();
        let (a, r) = assign_trace(&sp.access_trace(), &AssignParams::default());
        assert_eq!(r.residual_conflicts, 0);
        let stats = run(&sp, &a, ArrayPlacement::Ideal).unwrap();
        let reference = liw_ir::run_source(src).unwrap();
        assert_eq!(stats.output, reference.output);
        if r.multi_copy > 0 {
            assert!(stats.copy_write_transfers > 0);
        }
    }

    #[test]
    fn p_distribution_matches_paper_formula() {
        // t_ave = Σ i·Δ·p(i) per memory word: recomputing the expected
        // transfer time from p(i) must reproduce `expected_transfer_time`.
        let (sp, a) = setup(ARRAY_PROG, 4);
        let stats = run(&sp, &a, ArrayPlacement::Ideal).unwrap();
        let p = stats.p_distribution();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "p sums to 1");
        let t_ave_from_p: f64 = p
            .iter()
            .enumerate()
            .map(|(i, &pi)| i as f64 * pi)
            .sum::<f64>()
            * stats.mem_words as f64;
        assert!(
            (t_ave_from_p - stats.expected_transfer_time).abs() < 1e-6,
            "{t_ave_from_p} vs {}",
            stats.expected_transfer_time
        );
    }

    #[test]
    fn fuel_limit_triggers() {
        let (sp, a) = setup(SUM, 8);
        match run_with_fuel(&sp, &a, ArrayPlacement::Ideal, 3) {
            Err(SimError::OutOfFuel) => {}
            other => panic!("expected OutOfFuel, got {other:?}"),
        }
    }

    #[test]
    fn bounds_violation_detected() {
        let src = "program t; var a: array[4] of int; i: int;
            begin i := 9; a[i] := 1; end.";
        let (sp, a) = setup(src, 8);
        match run(&sp, &a, ArrayPlacement::Interleaved) {
            Err(SimError::Bounds { index: 9, .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn module_utilization_is_balanced_under_good_layout() {
        let (sp, a) = setup(ARRAY_PROG, 8);
        let stats = run(&sp, &a, ArrayPlacement::Interleaved).unwrap();
        assert_eq!(stats.module_transfers.len(), 8);
        let total: u64 = stats.module_transfers.iter().sum();
        assert!(total > 0);
        // Single-module baseline concentrates everything on M1.
        let baseline = parmem_core::baseline::single_module(&sp.access_trace());
        let worst = run(&sp, &baseline, ArrayPlacement::SameModule(0)).unwrap();
        assert_eq!(
            worst.module_transfers.iter().sum::<u64>(),
            worst.module_transfers[0],
            "all traffic on module 0: {:?}",
            worst.module_transfers
        );
    }

    #[test]
    fn cycles_at_least_words() {
        let (sp, a) = setup(SUM, 8);
        let stats = run(&sp, &a, ArrayPlacement::Ideal).unwrap();
        assert!(stats.cycles >= stats.words);
        assert!(stats.words > 0);
    }
}
