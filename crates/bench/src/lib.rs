//! # parmem-bench
//!
//! Harness that regenerates every table and figure of the paper's
//! evaluation:
//!
//! * `cargo run -p parmem-bench --bin table1` — Table 1 (duplication of
//!   data under STOR1/STOR2/STOR3, eight memory modules).
//! * `cargo run -p parmem-bench --bin table2` — Table 2 (memory conflicts
//!   due to array accesses, `t_ave/t_min` and `t_max/t_min` for k=8 and
//!   k=4).
//! * `cargo run -p parmem-bench --bin speedup` — the §3 prose claim
//!   (overall RLIW speed-up, 64–300% in the paper).
//!
//! The `benches/` directory adds criterion microbenchmarks and ablations
//! (coloring heuristic vs. first-fit, backtracking vs. hitting-set, atom
//! decomposition on/off, end-to-end pipeline cost).
//!
//! All three table generators run on the `parmem-batch` work-stealing
//! engine: each benchmark × configuration becomes one job, executed
//! concurrently with results merged back in submission order, so the
//! rendered tables are byte-identical to the old serial harness.

use liw_ir::unroll::UnrollConfig;
use parmem_batch::{BatchOptions, JobResult, JobSpec};
use parmem_core::strategies::Strategy;
use parmem_driver::Session;
use rliw_sim::pipeline::{CompiledProgram, Table2Row};
use rliw_sim::CompileOptions;
use workloads::benchmarks;

/// Shared harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Memory modules (= functional units).
    pub modules: usize,
    /// Innermost-loop unrolling factor applied before scheduling
    /// (`None` = no unrolling). The paper's compiler achieved comparable
    /// instruction-word density via trace scheduling.
    pub unroll: Option<usize>,
}

impl BenchConfig {
    pub fn new(modules: usize) -> BenchConfig {
        BenchConfig {
            modules,
            unroll: None,
        }
    }

    pub fn unrolled(modules: usize, factor: usize) -> BenchConfig {
        BenchConfig {
            modules,
            unroll: Some(factor),
        }
    }
}

/// The driver session matching a harness configuration: no scalar optimizer
/// (the tables measure the paper's pipeline as scheduled), renaming on,
/// unrolled when the configuration says so.
pub fn bench_session(cfg: BenchConfig) -> Session {
    Session::new(cfg.modules).with_opts(compile_options(cfg))
}

/// Compile one benchmark under a harness configuration.
pub fn compile_bench(source: &str, cfg: BenchConfig) -> CompiledProgram {
    bench_session(cfg)
        .compile(source)
        .expect("benchmark compiles")
}

/// The front-end options behind [`bench_session`].
fn compile_options(cfg: BenchConfig) -> CompileOptions {
    CompileOptions {
        unroll: cfg.unroll.map(|factor| UnrollConfig {
            factor,
            max_body_stmts: 16,
        }),
        optimize: false,
        rename: true,
    }
}

/// Run one batch-engine job per benchmark under `cfg` and hand each
/// successful output to `f`, panicking (like the old serial harness) on any
/// structured job failure.
fn batch_rows<R>(
    cfg: BenchConfig,
    f: impl Fn(&JobResult, &parmem_batch::JobOutput) -> R,
) -> Vec<R> {
    let opts = compile_options(cfg);
    let specs: Vec<JobSpec> = benchmarks()
        .iter()
        .map(|b| JobSpec::new(b.name, b.source, cfg.modules).with_opts(opts))
        .collect();
    let report = parmem_batch::run_batch(specs, &BatchOptions::default());
    report
        .results
        .iter()
        .map(|r| match &r.outcome {
            Ok(out) => f(r, out),
            Err(e) => panic!("{}: {e}", r.spec.program),
        })
        .collect()
}

/// One Table 1 cell: scalars with exactly one copy vs. more than one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1Cell {
    pub single: usize,
    pub multi: usize,
    pub residual_conflicts: usize,
}

/// One Table 1 row: a program under the three strategies.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub program: String,
    pub stor1: Table1Cell,
    pub stor2: Table1Cell,
    pub stor3: Table1Cell,
}

/// One Table 1 cell straight from a batch job's assignment statistics.
fn cell(r: &JobResult) -> Table1Cell {
    match &r.outcome {
        Ok(out) => Table1Cell {
            single: out.assign_report.single_copy,
            multi: out.assign_report.multi_copy,
            residual_conflicts: out.assign_report.residual_conflicts,
        },
        Err(e) => panic!("{}: {e}", r.spec.program),
    }
}

/// Regenerate Table 1 for a machine with `k` memory modules (the paper used
/// eight).
pub fn table1(k: usize) -> Vec<Table1Row> {
    table1_with(BenchConfig::new(k))
}

/// Table 1 under an explicit harness configuration: one batch job per
/// benchmark × strategy (18 jobs), regrouped into rows afterwards.
pub fn table1_with(cfg: BenchConfig) -> Vec<Table1Row> {
    const STRATEGIES: [Strategy; 3] = [Strategy::Stor1, Strategy::Stor2, Strategy::STOR3];
    let opts = compile_options(cfg);
    let specs: Vec<JobSpec> = benchmarks()
        .iter()
        .flat_map(|b| {
            STRATEGIES.map(|s| {
                JobSpec::new(b.name, b.source, cfg.modules)
                    .with_opts(opts)
                    .with_strategy(s)
            })
        })
        .collect();
    let report = parmem_batch::run_batch(specs, &BatchOptions::default());
    report
        .results
        .chunks(STRATEGIES.len())
        .map(|row| Table1Row {
            program: row[0].spec.program.clone(),
            stor1: cell(&row[0]),
            stor2: cell(&row[1]),
            stor3: cell(&row[2]),
        })
        .collect()
}

/// Render Table 1 in the paper's layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str("Table 1. Duplication of Data\n");
    s.push_str(&format!(
        "{:<10} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}\n",
        "", "STOR1", "", "STOR2", "", "STOR3", ""
    ));
    s.push_str(&format!(
        "{:<10} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}\n",
        "program", "=1", ">1", "=1", ">1", "=1", ">1"
    ));
    s.push_str(&"-".repeat(56));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<10} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}\n",
            r.program,
            r.stor1.single,
            r.stor1.multi,
            r.stor2.single,
            r.stor2.multi,
            r.stor3.single,
            r.stor3.multi
        ));
    }
    s
}

/// Regenerate Table 2 for a machine with `k` modules.
pub fn table2(k: usize) -> Vec<Table2Row> {
    table2_with(BenchConfig::new(k))
}

/// Table 2 under an explicit harness configuration (one batch job per
/// benchmark; the engine already fails jobs whose scalar assignment keeps
/// residual conflicts).
pub fn table2_with(cfg: BenchConfig) -> Vec<Table2Row> {
    batch_rows(cfg, |r, out| {
        assert_eq!(
            out.assign_report.residual_conflicts, 0,
            "{}: scalar assignment must be conflict-free",
            r.spec.program
        );
        out.table2.clone()
    })
}

/// Render Table 2 (both module counts) in the paper's layout.
pub fn format_table2(rows8: &[Table2Row], rows4: &[Table2Row]) -> String {
    let mut s = String::new();
    s.push_str("Table 2. Memory Conflicts due to Array Accesses\n");
    s.push_str(&format!(
        "{:<10} | {:^23} | {:^23}\n",
        "", "M = <M1..M8>", "M = <M1..M4>"
    ));
    s.push_str(&format!(
        "{:<10} | {:>11} {:>11} | {:>11} {:>11}\n",
        "program", "t_ave/t_min", "t_max/t_min", "t_ave/t_min", "t_max/t_min"
    ));
    s.push_str(&"-".repeat(64));
    s.push('\n');
    for (r8, r4) in rows8.iter().zip(rows4) {
        s.push_str(&format!(
            "{:<10} | {:>11.2} {:>11.2} | {:>11.2} {:>11.2}\n",
            r8.program,
            r8.ave_ratio(),
            r8.max_ratio(),
            r4.ave_ratio(),
            r4.max_ratio()
        ));
    }
    s
}

/// Speed-up of the LIW machine over a sequential 1-op/cycle machine for one
/// program, as a percentage (paper §3 reports 64–300%).
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    pub program: String,
    pub seq_steps: u64,
    pub liw_cycles: u64,
    /// e.g. 1.8 → 80% speed-up.
    pub speedup: f64,
    /// Fraction of transfer-time increase from array conflicts
    /// (interleaved vs. ideal).
    pub array_conflict_overhead: f64,
}

/// Run the speed-up experiment for all benchmarks at width/modules `k`.
pub fn speedup(k: usize) -> Vec<SpeedupRow> {
    speedup_with(BenchConfig::unrolled(k, 4))
}

/// Speed-up rows under an explicit harness configuration. The batch job
/// already simulated every array placement, so the conflict overhead is
/// `t_interleaved / t_min - 1` straight from its Table 2 measurements.
pub fn speedup_with(cfg: BenchConfig) -> Vec<SpeedupRow> {
    batch_rows(cfg, |r, out| {
        let overhead = if out.table2.t_min > 0 {
            out.table2.t_interleaved as f64 / out.table2.t_min as f64 - 1.0
        } else {
            0.0
        };
        SpeedupRow {
            program: r.spec.program.clone(),
            seq_steps: out.reference_steps,
            liw_cycles: out.cycles,
            speedup: out.speedup,
            array_conflict_overhead: overhead,
        }
    })
}

/// Render the speed-up report.
pub fn format_speedup(rows: &[SpeedupRow]) -> String {
    let mut s = String::new();
    s.push_str("RLIW speed-up over sequential execution (paper: 64-300%)\n");
    s.push_str(&format!(
        "{:<10} | {:>10} {:>10} {:>9} {:>16}\n",
        "program", "seq steps", "liw cycles", "speedup", "array overhead"
    ));
    s.push_str(&"-".repeat(62));
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<10} | {:>10} {:>10} {:>8.0}% {:>15.1}%\n",
            r.program,
            r.seq_steps,
            r.liw_cycles,
            (r.speedup - 1.0) * 100.0,
            r.array_conflict_overhead * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_runs_conflict_free_everywhere() {
        let rows = table1(8);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            for c in [r.stor1, r.stor2, r.stor3] {
                assert_eq!(c.residual_conflicts, 0, "{}", r.program);
                assert!(c.single + c.multi > 0, "{}", r.program);
            }
        }
    }

    #[test]
    fn table1_stor1_duplicates_least_overall() {
        // The paper's headline: STOR1 needs almost no duplication; the
        // staged strategies duplicate at least as much in total.
        let rows = table1(8);
        let total1: usize = rows.iter().map(|r| r.stor1.multi).sum();
        let total2: usize = rows.iter().map(|r| r.stor2.multi).sum();
        assert!(
            total1 <= total2,
            "STOR1 total duplication {total1} should not exceed STOR2 {total2}"
        );
    }

    #[test]
    fn table2_ratios_are_sane() {
        for k in [8, 4] {
            for r in table2(k) {
                assert!(r.ave_ratio() >= 1.0 - 1e-9, "{} k={k}: {r:?}", r.program);
                assert!(
                    r.max_ratio() + 1e-9 >= r.ave_ratio(),
                    "{} k={k}: {r:?}",
                    r.program
                );
                assert!(r.t_min > 0, "{} k={k}", r.program);
            }
        }
    }

    #[test]
    fn speedup_is_positive_for_all_benchmarks() {
        for r in speedup(8) {
            assert!(
                r.speedup > 1.0,
                "{}: LIW should beat sequential, got {:.2}",
                r.program,
                r.speedup
            );
        }
    }

    #[test]
    fn formatting_contains_all_programs() {
        let t1 = format_table1(&table1(8));
        for b in workloads::benchmarks() {
            assert!(t1.contains(b.name));
        }
    }
}
