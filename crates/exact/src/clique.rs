//! Clique-based lower-bound evidence.
//!
//! A clique of size `k + 1` in the access-conflict graph pigeonholes: any
//! single-copy assignment puts two of its values in the same module, and
//! since adjacent values co-occur in some instruction, at least one
//! instruction conflicts. Two cliques force *distinct* conflicting
//! instructions when their instruction supports (the instructions holding
//! two or more clique members) are disjoint — so a family of vertex-disjoint,
//! support-disjoint cliques of size `> k` is an additive, machine-checkable
//! lower bound on the residual.
//!
//! The greedy search below grows cliques from high-degree seeds inside one
//! connected component; it reuses the graph the core pipeline built (the
//! atoms of chordal regions are cliques too, and instruction operand sets —
//! including the paper's "oversized word" case `|I| > k` — are cliques by
//! construction, so both show up naturally as seeds).

use crate::instance::Instance;

/// Greedily collect vertex-disjoint, support-disjoint cliques of size
/// `> k` among `comp`'s vertices. Returns dense vertex lists (sorted).
pub(crate) fn clique_evidence(inst: &Instance, comp: &[u32]) -> Vec<Vec<u32>> {
    let k = inst.k;
    // Bitset rows for the high-degree hubs: clique growth probes (u, next)
    // adjacency against exactly those vertices, where CSR binary search is
    // slowest.
    let badj = inst.graph.bit_adjacency(0);
    let mut order: Vec<u32> = comp.to_vec();
    order.sort_by_key(|&v| (std::cmp::Reverse(inst.graph.degree(v)), v));

    let mut used_vert = vec![false; inst.n];
    let mut used_inst = vec![false; inst.view.len()];
    let mut out = Vec::new();

    for &seed in &order {
        if used_vert[seed as usize] || inst.graph.degree(seed) < k {
            continue;
        }
        // Grow a clique from `seed`, always taking the highest-degree
        // remaining candidate (ties: smallest id).
        let mut clique = vec![seed];
        let mut cand: Vec<u32> = inst
            .graph
            .neighbors(seed)
            .iter()
            .copied()
            .filter(|&u| !used_vert[u as usize])
            .collect();
        while clique.len() <= k && !cand.is_empty() {
            let &next = cand
                .iter()
                .max_by_key(|&&u| (inst.graph.degree(u), std::cmp::Reverse(u)))
                .expect("cand non-empty");
            clique.push(next);
            cand.retain(|&u| u != next && badj.has_edge(&inst.graph, u, next));
        }
        if clique.len() <= k {
            continue;
        }
        // Support: instructions holding >= 2 clique members.
        let support: Vec<u32> = inst.view.support_of(|v| clique.contains(&v));
        if support.iter().any(|&i| used_inst[i as usize]) {
            continue;
        }
        for &i in &support {
            used_inst[i as usize] = true;
        }
        for &v in &clique {
            used_vert[v as usize] = true;
        }
        clique.sort_unstable();
        out.push(clique);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmem_core::types::AccessTrace;

    #[test]
    fn finds_the_oversized_instruction_clique() {
        // One word reading 4 scalars on a 3-module machine: K4, lb = 1.
        let trace = AccessTrace::from_lists(3, &[&[0, 1, 2, 3]]);
        let inst = Instance::build(&trace);
        let comp: Vec<u32> = (0..4).collect();
        let ev = clique_evidence(&inst, &comp);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].len(), 4);
    }

    #[test]
    fn disjoint_supports_make_the_bound_additive() {
        // Two disjoint K3s on a 2-module machine.
        let trace = AccessTrace::from_lists(2, &[&[0, 1, 2], &[3, 4, 5]]);
        let inst = Instance::build(&trace);
        let ev0 = clique_evidence(&inst, &[0, 1, 2]);
        let ev1 = clique_evidence(&inst, &[3, 4, 5]);
        assert_eq!(ev0.len() + ev1.len(), 2);
    }

    #[test]
    fn no_clique_when_graph_is_k_colorable() {
        // A 4-cycle is 2-colorable: no K3 exists.
        let trace = AccessTrace::from_lists(2, &[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let inst = Instance::build(&trace);
        let comp: Vec<u32> = (0..4).collect();
        assert!(clique_evidence(&inst, &comp).is_empty());
    }
}
