#![warn(missing_docs)]

//! # parmem-driver
//!
//! The pipeline session layer: the *single* place the staged pipeline
//! (frontend → optimize → schedule → assign → verify → simulate →
//! exact-gap) is chained, instrumented, and configured. Every consumer —
//! the `parmem` CLI subcommands, the `parmem-batch` engine, the
//! `parmem-bench` bins, and the integration tests — drives the pipeline
//! through this crate instead of wiring the stages by hand:
//!
//! * [`Session`] owns the shared configuration (module count, storage
//!   strategy, compile options, assignment parameters, seeds, optional
//!   exact-gap stage) and mints [`JobSpec`]s or runs programs directly;
//! * [`PipelineContext`] executes the stages one at a time, applying fault
//!   injection, per-stage wall/alloc metrics, and obs span wrapping in
//!   exactly one place — [`run_job`] adds panic isolation on top;
//! * [`args`] is the CLI's shared argument parser ([`args::CommonArgs`])
//!   plus the option → pipeline-config builders.
//!
//! ```
//! use parmem_driver::Session;
//!
//! let result = Session::new(4).run("DEMO", "program d; var x: int;
//!     begin x := 6; print x * 7; end.");
//! assert_eq!(result.status(), "ok");
//! ```

pub mod args;
pub mod job;
pub mod session;
pub mod telemetry;

pub use args::CommonArgs;
pub use job::{
    hash_output, run_job, run_stages, FaultInjection, GapSummary, JobError, JobOutput, JobResult,
    JobSpec, PipelineContext, PlannedSummary,
};
pub use session::Session;
pub use telemetry::{TelemetryConfig, TelemetryGuard};
