//! Array storage policies — how array elements map to memory modules.
//!
//! Scalar data values get modules from the compile-time assignment; array
//! element accesses are *unpredictable at compile time* (paper §3), so their
//! module is a run-time property of the chosen storage policy. The three
//! policies mirror the paper's Table 2 columns:
//!
//! * [`ArrayPlacement::Ideal`] — array fetches never conflict (`t_min`),
//! * [`ArrayPlacement::SameModule`] — every array lives in one module
//!   (`t_max`),
//! * [`ArrayPlacement::Interleaved`] / [`ArrayPlacement::UniformRandom`] —
//!   realistic layouts (`t_ave`; the paper's analytic model assumes the
//!   uniform distribution),
//! * [`ArrayPlacement::Planned`] — a compile-time [`MemoryLayout`] plan:
//!   each element's module is decided by the planner's per-array scheme
//!   (interleaved / hash / block), making array behaviour as deterministic
//!   as the scalar assignment.
//!
//! ## Seeding
//!
//! The uniform-random policy models the paper's t_ave assumption, so its
//! draws must be reproducible *per workload* but must not be correlated
//! *across* workloads: a fixed constant seed would replay the identical
//! module sequence for every program, silently biasing corpus-level
//! statistics toward one sample path. Callers therefore derive the seed
//! with [`uniform_seed`]`(base_seed, workload_digest)` — the session's
//! user-visible seed mixed (FNV-1a) with the scheduled program's
//! structural digest. Same program + same `--seed` → byte-identical runs
//! (across `--jobs` too, since nothing depends on thread order); different
//! programs → independent sample paths. Scalar-only programs never draw
//! from the RNG, so their outputs are unaffected by the choice of seed.

use std::sync::Arc;

use parmem_core::layout::MemoryLayout;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Derive the per-workload uniform-random seed: the user-level `base` seed
/// mixed with the workload's structural digest via FNV-1a (see the module
/// docs on seeding).
pub fn uniform_seed(base: u64, workload_digest: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in base
        .to_le_bytes()
        .into_iter()
        .chain(workload_digest.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Module selection for array element accesses.
#[derive(Clone, Debug)]
pub enum ArrayPlacement {
    /// `t_min`: array accesses never collide — each lands on its own
    /// imaginary spare module.
    Ideal,
    /// `t_max`: every array element in module `m`.
    SameModule(u16),
    /// Element `i` of array `a` lives in module `(base_a + i) mod k`, the
    /// classic interleaved layout (deterministic).
    Interleaved,
    /// Every access draws a module uniformly at random (seeded) — exactly
    /// the assumption behind the paper's `t_ave` formula.
    UniformRandom(u64),
    /// The compile-time plan: each element's module comes from the
    /// [`MemoryLayout`]'s per-array scheme (deterministic, stateless).
    Planned(Arc<MemoryLayout>),
}

impl ArrayPlacement {
    /// Stable policy label used in metric names and trace attributes
    /// (deliberately parameter-free so metrics aggregate across seeds; the
    /// planned label folds in the *policy* — the dimension benches compare —
    /// but not the per-program plan).
    pub fn label(&self) -> &'static str {
        match self {
            ArrayPlacement::Ideal => "ideal",
            ArrayPlacement::SameModule(_) => "same_module",
            ArrayPlacement::Interleaved => "interleaved",
            ArrayPlacement::UniformRandom(_) => "uniform_random",
            ArrayPlacement::Planned(layout) => match layout.policy {
                parmem_core::layout::ArrayPolicy::Interleaved => "planned_interleaved",
                parmem_core::layout::ArrayPolicy::Hash => "planned_hash",
                parmem_core::layout::ArrayPolicy::Block => "planned_block",
                parmem_core::layout::ArrayPolicy::Auto => "planned_auto",
            },
        }
    }
}

/// Stateful resolver created per simulation run.
pub struct ArrayModuleMap {
    policy: ArrayPlacement,
    modules: usize,
    rng: Option<ChaCha8Rng>,
}

impl ArrayModuleMap {
    /// Create a resolver for `modules` memory modules under `policy`.
    pub fn new(policy: ArrayPlacement, modules: usize) -> ArrayModuleMap {
        let rng = match &policy {
            ArrayPlacement::UniformRandom(seed) => Some(ChaCha8Rng::seed_from_u64(*seed)),
            _ => None,
        };
        ArrayModuleMap {
            policy,
            modules,
            rng,
        }
    }

    /// Module for accessing element `index` of array `array_id`, or `None`
    /// under the ideal (conflict-free) policy.
    pub fn module_for(&mut self, array_id: u32, index: i64) -> Option<u16> {
        let k = self.modules as i64;
        match &self.policy {
            ArrayPlacement::Ideal => None,
            ArrayPlacement::SameModule(m) => Some((*m as usize % self.modules) as u16),
            ArrayPlacement::Interleaved => Some(((array_id as i64 + index).rem_euclid(k)) as u16),
            ArrayPlacement::UniformRandom(_) => {
                let r = self.rng.as_mut().expect("rng for uniform policy");
                Some(r.gen_range(0..self.modules) as u16)
            }
            ArrayPlacement::Planned(layout) => Some(layout.module_of(array_id, index)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_never_assigns_a_module() {
        let mut m = ArrayModuleMap::new(ArrayPlacement::Ideal, 4);
        assert_eq!(m.module_for(0, 17), None);
    }

    #[test]
    fn same_module_is_constant() {
        let mut m = ArrayModuleMap::new(ArrayPlacement::SameModule(2), 4);
        for i in 0..10 {
            assert_eq!(m.module_for(3, i), Some(2));
        }
        // Out-of-range module wraps.
        let mut m = ArrayModuleMap::new(ArrayPlacement::SameModule(9), 4);
        assert_eq!(m.module_for(0, 0), Some(1));
    }

    #[test]
    fn interleaved_cycles_through_modules() {
        let mut m = ArrayModuleMap::new(ArrayPlacement::Interleaved, 4);
        let mods: Vec<u16> = (0..8).map(|i| m.module_for(0, i).unwrap()).collect();
        assert_eq!(mods, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Different arrays are offset.
        assert_eq!(m.module_for(1, 0), Some(1));
    }

    #[test]
    fn uniform_random_is_seeded() {
        let mut a = ArrayModuleMap::new(ArrayPlacement::UniformRandom(7), 8);
        let mut b = ArrayModuleMap::new(ArrayPlacement::UniformRandom(7), 8);
        for i in 0..100 {
            assert_eq!(a.module_for(0, i), b.module_for(0, i));
        }
        let mut c = ArrayModuleMap::new(ArrayPlacement::UniformRandom(8), 8);
        let diff = (0..100).any(|i| {
            let x = ArrayModuleMap::new(ArrayPlacement::UniformRandom(7), 8).module_for(0, i);
            x != c.module_for(0, i)
        });
        assert!(diff);
    }

    #[test]
    fn uniform_random_covers_all_modules() {
        let mut m = ArrayModuleMap::new(ArrayPlacement::UniformRandom(1), 4);
        let mut seen = [false; 4];
        for i in 0..200 {
            seen[m.module_for(0, i).unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_index_wraps_safely() {
        let mut m = ArrayModuleMap::new(ArrayPlacement::Interleaved, 4);
        // Bounds errors are caught by the executor; the mapper must still be
        // total.
        assert!(m.module_for(0, -1).unwrap() < 4);
    }

    #[test]
    fn planned_interleaved_matches_legacy_interleaved() {
        use parmem_core::layout::{plan, ArrayPolicy, ArrayProfile};
        use parmem_core::Assignment;
        let profiles = vec![
            ArrayProfile {
                name: "a".into(),
                len: 8,
                loads: 1,
                stores: 0,
                dominant_stride: Some(1),
            },
            ArrayProfile {
                name: "b".into(),
                len: 8,
                loads: 0,
                stores: 1,
                dominant_stride: None,
            },
        ];
        let layout = Arc::new(plan(
            4,
            ArrayPolicy::Interleaved,
            Assignment::new(4),
            &profiles,
        ));
        let mut planned = ArrayModuleMap::new(ArrayPlacement::Planned(layout), 4);
        let mut legacy = ArrayModuleMap::new(ArrayPlacement::Interleaved, 4);
        for id in 0..2 {
            for i in -3..20 {
                assert_eq!(planned.module_for(id, i), legacy.module_for(id, i));
            }
        }
    }

    #[test]
    fn planned_labels_name_the_policy() {
        use parmem_core::layout::{plan, ArrayPolicy};
        use parmem_core::Assignment;
        for (policy, label) in [
            (ArrayPolicy::Interleaved, "planned_interleaved"),
            (ArrayPolicy::Hash, "planned_hash"),
            (ArrayPolicy::Block, "planned_block"),
            (ArrayPolicy::Auto, "planned_auto"),
        ] {
            let layout = Arc::new(plan(4, policy, Assignment::new(4), &[]));
            assert_eq!(ArrayPlacement::Planned(layout).label(), label);
        }
    }

    #[test]
    fn uniform_seed_mixes_base_and_digest() {
        // Distinct workloads decorrelate; same inputs reproduce.
        assert_eq!(uniform_seed(0xC0FFEE, 42), uniform_seed(0xC0FFEE, 42));
        assert_ne!(uniform_seed(0xC0FFEE, 42), uniform_seed(0xC0FFEE, 43));
        assert_ne!(uniform_seed(0xC0FFEE, 42), uniform_seed(0xC0FFEF, 42));
        // The mix must not degenerate to the base seed (the old bug: a fixed
        // constant replayed one sample path for every workload).
        assert_ne!(uniform_seed(7, 42), 7);
    }
}
