//! Loop unrolling — the classic ILP-raising transformation LIW compilers
//! apply before scheduling (the paper's RLIW compiler exposed fine-grained
//! parallelism the same way; our per-block list scheduler needs bigger
//! blocks to fill wide instruction words).
//!
//! AST-level, innermost `for` loops only:
//!
//! ```text
//! for i := a to b do S(i)
//! ```
//! becomes
//! ```text
//! i := a;
//! while i + (U-1) <= b do begin
//!     S(i); S(i+1); ... S(i+U-1);      // reads of i replaced by i+j
//!     i := i + U;
//! end;
//! while i <= b do begin S(i); i := i + 1; end;
//! ```
//!
//! Body copies index with `i + j` instead of chained increments, so address
//! computations of different iterations are independent and schedule in
//! parallel. Loops whose body writes the induction variable, or contains
//! inner loops, are left untouched. `downto` loops unroll symmetrically.

use crate::ast::{BinOp, Expr, LValue, Program, Stmt};

/// Unrolling configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnrollConfig {
    /// Bodies are replicated this many times per iteration of the unrolled
    /// loop. 1 = no unrolling.
    pub factor: usize,
    /// Loops whose body exceeds this many statements are not unrolled
    /// (code-size guard).
    pub max_body_stmts: usize,
}

impl Default for UnrollConfig {
    fn default() -> Self {
        UnrollConfig {
            factor: 4,
            max_body_stmts: 12,
        }
    }
}

/// Unroll all eligible innermost `for` loops of `p`.
pub fn unroll_program(p: &Program, cfg: UnrollConfig) -> Program {
    if cfg.factor <= 1 {
        return p.clone();
    }
    let mut sp = parmem_obs::span("ir.unroll");
    sp.attr("factor", cfg.factor);
    Program {
        name: p.name.clone(),
        decls: p.decls.clone(),
        body: unroll_stmts(&p.body, cfg),
    }
}

fn unroll_stmts(stmts: &[Stmt], cfg: UnrollConfig) -> Vec<Stmt> {
    stmts.iter().flat_map(|s| unroll_stmt(s, cfg)).collect()
}

fn unroll_stmt(s: &Stmt, cfg: UnrollConfig) -> Vec<Stmt> {
    match s {
        Stmt::For {
            var,
            from,
            to,
            down,
            body,
            line,
        } => {
            let body_unrolled = unroll_stmts(body, cfg);
            // The unrolled form re-evaluates `to` at each iteration, whereas
            // Pascal `for` evaluates it once — so the body must not write
            // any variable `to` reads (nor the induction variable).
            let mut bound_vars = Vec::new();
            expr_vars(to, &mut bound_vars);
            let bound_invariant = bound_vars.iter().all(|v| !writes_var(body, v));
            if is_innermost(body)
                && body.len() <= cfg.max_body_stmts
                && !writes_var(body, var)
                && bound_invariant
            {
                unroll_for(var, from, to, *down, body, *line, cfg.factor)
            } else {
                vec![Stmt::For {
                    var: var.clone(),
                    from: from.clone(),
                    to: to.clone(),
                    down: *down,
                    body: body_unrolled,
                    line: *line,
                }]
            }
        }
        Stmt::While { cond, body, line } => vec![Stmt::While {
            cond: cond.clone(),
            body: unroll_stmts(body, cfg),
            line: *line,
        }],
        Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        } => vec![Stmt::If {
            cond: cond.clone(),
            then_body: unroll_stmts(then_body, cfg),
            else_body: unroll_stmts(else_body, cfg),
            line: *line,
        }],
        other => vec![other.clone()],
    }
}

/// Collect every variable an expression reads.
fn expr_vars(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Var(v) => out.push(v.clone()),
        Expr::Index { array, index } => {
            out.push(array.clone());
            expr_vars(index, out);
        }
        Expr::Unary { expr, .. } => expr_vars(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_vars(lhs, out);
            expr_vars(rhs, out);
        }
        Expr::Call { arg, .. } => expr_vars(arg, out),
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) => {}
    }
}

/// No nested loops inside.
fn is_innermost(body: &[Stmt]) -> bool {
    body.iter().all(|s| match s {
        Stmt::For { .. } | Stmt::While { .. } => false,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => is_innermost(then_body) && is_innermost(else_body),
        _ => true,
    })
}

/// Whether any statement assigns `var`.
fn writes_var(body: &[Stmt], var: &str) -> bool {
    body.iter().any(|s| match s {
        Stmt::Assign {
            target: LValue::Var(v),
            ..
        } => v == var,
        Stmt::Assign { .. } | Stmt::Print { .. } => false,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => writes_var(then_body, var) || writes_var(else_body, var),
        Stmt::While { body, .. } => writes_var(body, var),
        Stmt::For {
            var: inner,
            body,
            from,
            to,
            ..
        } => {
            inner == var || writes_var(body, var) || {
                // from/to are expressions; they cannot write.
                let _ = (from, to);
                false
            }
        }
    })
}

fn unroll_for(
    var: &str,
    from: &Expr,
    to: &Expr,
    down: bool,
    body: &[Stmt],
    line: u32,
    factor: usize,
) -> Vec<Stmt> {
    let u = factor as i64;
    let ivar = || Expr::Var(var.to_string());
    let offset = |j: i64| -> Expr {
        if j == 0 {
            ivar()
        } else {
            Expr::Binary {
                op: if down { BinOp::Sub } else { BinOp::Add },
                lhs: Box::new(ivar()),
                rhs: Box::new(Expr::IntLit(j)),
            }
        }
    };

    let mut out = Vec::new();
    // i := from
    out.push(Stmt::Assign {
        target: LValue::Var(var.to_string()),
        value: from.clone(),
        line,
    });

    // Main unrolled loop: while i ± (U-1) within bound.
    let guard_lhs = offset(u - 1);
    let cond = Expr::Binary {
        op: if down { BinOp::Ge } else { BinOp::Le },
        lhs: Box::new(guard_lhs),
        rhs: Box::new(to.clone()),
    };
    let mut main_body = Vec::new();
    for j in 0..u {
        for s in body {
            main_body.push(substitute_stmt(s, var, &offset(j)));
        }
    }
    main_body.push(Stmt::Assign {
        target: LValue::Var(var.to_string()),
        value: Expr::Binary {
            op: if down { BinOp::Sub } else { BinOp::Add },
            lhs: Box::new(ivar()),
            rhs: Box::new(Expr::IntLit(u)),
        },
        line,
    });
    out.push(Stmt::While {
        cond,
        body: main_body,
        line,
    });

    // Remainder loop.
    let rem_cond = Expr::Binary {
        op: if down { BinOp::Ge } else { BinOp::Le },
        lhs: Box::new(ivar()),
        rhs: Box::new(to.clone()),
    };
    let mut rem_body = body.to_vec();
    rem_body.push(Stmt::Assign {
        target: LValue::Var(var.to_string()),
        value: Expr::Binary {
            op: if down { BinOp::Sub } else { BinOp::Add },
            lhs: Box::new(ivar()),
            rhs: Box::new(Expr::IntLit(1)),
        },
        line,
    });
    out.push(Stmt::While {
        cond: rem_cond,
        body: rem_body,
        line,
    });

    out
}

/// Replace every read of `var` in a statement by `repl`.
fn substitute_stmt(s: &Stmt, var: &str, repl: &Expr) -> Stmt {
    match s {
        Stmt::Assign {
            target,
            value,
            line,
        } => Stmt::Assign {
            target: match target {
                LValue::Var(v) => LValue::Var(v.clone()),
                LValue::Index { array, index } => LValue::Index {
                    array: array.clone(),
                    index: substitute_expr(index, var, repl),
                },
            },
            value: substitute_expr(value, var, repl),
            line: *line,
        },
        Stmt::Print { value, line } => Stmt::Print {
            value: substitute_expr(value, var, repl),
            line: *line,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        } => Stmt::If {
            cond: substitute_expr(cond, var, repl),
            then_body: then_body
                .iter()
                .map(|s| substitute_stmt(s, var, repl))
                .collect(),
            else_body: else_body
                .iter()
                .map(|s| substitute_stmt(s, var, repl))
                .collect(),
            line: *line,
        },
        // Only eligible (innermost, loop-free) bodies are substituted, but
        // keep the recursion total for safety.
        Stmt::While { cond, body, line } => Stmt::While {
            cond: substitute_expr(cond, var, repl),
            body: body.iter().map(|s| substitute_stmt(s, var, repl)).collect(),
            line: *line,
        },
        Stmt::For {
            var: v,
            from,
            to,
            down,
            body,
            line,
        } => Stmt::For {
            var: v.clone(),
            from: substitute_expr(from, var, repl),
            to: substitute_expr(to, var, repl),
            down: *down,
            body: if v == var {
                body.clone() // shadowed: inner loop redefines the variable
            } else {
                body.iter().map(|s| substitute_stmt(s, var, repl)).collect()
            },
            line: *line,
        },
    }
}

fn substitute_expr(e: &Expr, var: &str, repl: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v == var => repl.clone(),
        Expr::Var(_) | Expr::IntLit(_) | Expr::RealLit(_) | Expr::BoolLit(_) => e.clone(),
        Expr::Index { array, index } => Expr::Index {
            array: array.clone(),
            index: Box::new(substitute_expr(index, var, repl)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_expr(expr, var, repl)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute_expr(lhs, var, repl)),
            rhs: Box::new(substitute_expr(rhs, var, repl)),
        },
        Expr::Call { func, arg } => Expr::Call {
            func: *func,
            arg: Box::new(substitute_expr(arg, var, repl)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run;
    use crate::lower::lower;
    use crate::parser::parse;

    /// Semantic equivalence: unrolled program prints the same output.
    fn assert_equivalent(src: &str, factor: usize) {
        let ast = parse(src).unwrap();
        let plain = run(&lower(&ast).unwrap()).unwrap();
        let unrolled_ast = unroll_program(
            &ast,
            UnrollConfig {
                factor,
                max_body_stmts: 32,
            },
        );
        let unrolled = run(&lower(&unrolled_ast).unwrap()).unwrap();
        assert_eq!(plain.output, unrolled.output, "factor {factor}\n{src}");
    }

    #[test]
    fn simple_sum_loop() {
        let src = "program t; var i, s: int;
            begin s := 0; for i := 1 to 17 do s := s + i; print s; end.";
        for f in [2, 3, 4, 8] {
            assert_equivalent(src, f);
        }
    }

    #[test]
    fn downto_loop() {
        let src = "program t; var i, s: int;
            begin s := 0; for i := 13 downto 1 do s := s + i * i; print s; end.";
        for f in [2, 4, 5] {
            assert_equivalent(src, f);
        }
    }

    #[test]
    fn array_fill_and_read() {
        let src = "program t; var a: array[32] of int; i, s: int;
            begin
              for i := 0 to 31 do a[i] := i * 3;
              s := 0;
              for i := 0 to 31 do s := s + a[i];
              print s;
            end.";
        for f in [2, 4, 7] {
            assert_equivalent(src, f);
        }
    }

    #[test]
    fn trip_count_shorter_than_factor() {
        let src = "program t; var i, s: int;
            begin s := 0; for i := 1 to 2 do s := s + i; print s; end.";
        assert_equivalent(src, 8);
    }

    #[test]
    fn empty_trip_count() {
        let src = "program t; var i, s: int;
            begin s := 0; for i := 5 to 2 do s := s + i; print s; end.";
        assert_equivalent(src, 4);
    }

    #[test]
    fn nested_loops_unroll_inner_only() {
        let src = "program t; var i, j, s: int;
            begin
              s := 0;
              for i := 0 to 5 do
                for j := 0 to 5 do
                  s := s + i * j;
              print s;
            end.";
        assert_equivalent(src, 4);
        // Structure check: the outer loop survives as a For.
        let ast = parse(src).unwrap();
        let u = unroll_program(&ast, UnrollConfig::default());
        assert!(
            u.body.iter().any(|s| matches!(s, Stmt::For { .. })),
            "outer loop should remain a For"
        );
    }

    #[test]
    fn loop_with_conditional_body() {
        let src = "program t; var i, s: int;
            begin
              s := 0;
              for i := 0 to 20 do
                if i mod 3 = 0 then s := s + i; else s := s - 1;
              print s;
            end.";
        for f in [2, 4] {
            assert_equivalent(src, f);
        }
    }

    #[test]
    fn body_writing_induction_var_is_skipped() {
        let src = "program t; var i, s: int;
            begin
              s := 0;
              for i := 0 to 10 do begin
                s := s + i;
                i := i + 1; { skips every other value }
              end;
              print s;
            end.";
        // Must stay semantically identical (i.e. not unrolled at all).
        assert_equivalent(src, 4);
        let ast = parse(src).unwrap();
        let u = unroll_program(&ast, UnrollConfig::default());
        assert!(u.body.iter().any(|s| matches!(s, Stmt::For { .. })));
    }

    #[test]
    fn factor_one_is_identity() {
        let src = "program t; var i: int; begin for i := 0 to 3 do print i; end.";
        let ast = parse(src).unwrap();
        let u = unroll_program(
            &ast,
            UnrollConfig {
                factor: 1,
                max_body_stmts: 8,
            },
        );
        assert_eq!(ast, u);
    }

    #[test]
    fn unrolling_benchmarks_preserves_semantics() {
        // The full six-benchmark suite through the unroller.
        for b in [crate::unroll::tests::helpers::TAYLOR_LIKE] {
            assert_equivalent(b, 4);
        }
    }

    mod helpers {
        pub const TAYLOR_LIKE: &str = "program t;
            var g: array[16] of real; f: array[16] of real; n, i, kk: int; s: real;
            begin
              n := 12;
              for i := 0 to n do g[i] := 1.0 / itor(i + 1);
              f[0] := 1.0;
              for i := 1 to n do begin
                s := 0.0;
                for kk := 1 to i do s := s + itor(kk) * g[kk] * f[i - kk];
                f[i] := s / itor(i);
              end;
              for i := 0 to n do print f[i];
            end.";
    }

    #[test]
    fn variable_bounds_work() {
        let src = "program t; var i, n, s: int;
            begin n := 19; s := 0; for i := 3 to n - 1 do s := s + i; print s; end.";
        for f in [2, 4, 6] {
            assert_equivalent(src, f);
        }
    }
}
