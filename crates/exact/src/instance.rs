//! Dense problem representation shared by the solver passes.
//!
//! The access-conflict graph already gives every distinct trace value a
//! dense vertex id (sorted by [`ValueId`]); this module adds the instruction
//! view the exact objective needs: which *multi-operand* instructions exist
//! (only those can conflict under a single-copy assignment) and which of
//! them each vertex participates in.

use parmem_core::graph::ConflictGraph;
use parmem_core::types::AccessTrace;

/// Sentinel for "vertex not yet colored".
pub(crate) const NONE: u8 = u8::MAX;

pub(crate) struct Instance {
    pub graph: ConflictGraph,
    /// Number of vertices (distinct trace values).
    pub n: usize,
    /// Number of memory modules.
    pub k: usize,
    /// Multi-operand instructions as dense vertex lists, in program order.
    pub insts: Vec<Vec<u32>>,
    /// For each vertex, the indices into `insts` it appears in.
    pub vert_insts: Vec<Vec<u32>>,
}

impl Instance {
    pub fn build(trace: &AccessTrace) -> Instance {
        let graph = ConflictGraph::build(trace);
        let n = graph.len();
        let k = trace.modules;
        let mut insts = Vec::new();
        for op in &trace.instructions {
            if op.len() < 2 {
                continue;
            }
            let vs: Vec<u32> = op
                .iter()
                .map(|v| graph.vertex_of(v).expect("operand has a vertex"))
                .collect();
            insts.push(vs);
        }
        let mut vert_insts = vec![Vec::new(); n];
        for (i, vs) in insts.iter().enumerate() {
            for &v in vs {
                vert_insts[v as usize].push(i as u32);
            }
        }
        Instance {
            graph,
            n,
            k,
            insts,
            vert_insts,
        }
    }

    /// Residual of a complete coloring: the number of multi-operand
    /// instructions with two operands in the same module.
    pub fn residual_of(&self, colors: &[u8]) -> usize {
        self.insts
            .iter()
            .filter(|vs| {
                for i in 0..vs.len() {
                    for j in (i + 1)..vs.len() {
                        if colors[vs[i] as usize] == colors[vs[j] as usize] {
                            return true;
                        }
                    }
                }
                false
            })
            .count()
    }
}
