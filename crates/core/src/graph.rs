//! The *access conflict graph* (paper §2).
//!
//! Nodes are data values; an edge joins two values that appear as operands of
//! the same long instruction. Each edge carries `conf(u,v)`, the number of
//! instructions in which both endpoints occur — the weight source for the
//! coloring heuristic of Fig. 4.

use std::collections::HashMap;

use crate::types::{AccessTrace, ValueId};

/// Access conflict graph over the distinct values of an [`AccessTrace`].
///
/// Vertices are stored densely (`0..n`) with a mapping back to [`ValueId`]s,
/// so the coloring and decomposition algorithms can use flat arrays.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    /// Dense vertex -> original value.
    values: Vec<ValueId>,
    /// Original value index -> dense vertex (sparse; `u32::MAX` = absent).
    dense_of: HashMap<ValueId, u32>,
    /// Adjacency lists, sorted ascending, no self loops, no duplicates.
    adj: Vec<Vec<u32>>,
    /// `conf(u, v)` for `u < v`.
    conf: HashMap<(u32, u32), u32>,
    /// Total number of edges.
    edges: usize,
}

impl ConflictGraph {
    /// Build the conflict graph of `trace`. Every pair of distinct values
    /// co-occurring in an instruction gets an edge; multiplicity is counted
    /// in `conf`.
    pub fn build(trace: &AccessTrace) -> ConflictGraph {
        Self::build_filtered(trace, |_| true)
    }

    /// Build the conflict graph considering only values for which `keep`
    /// returns true (used by the STOR2 global/local split, where each stage
    /// sees a projection of the instruction stream).
    pub fn build_filtered(
        trace: &AccessTrace,
        mut keep: impl FnMut(ValueId) -> bool,
    ) -> ConflictGraph {
        let mut values: Vec<ValueId> = trace
            .instructions
            .iter()
            .flat_map(|i| i.iter())
            .filter(|&v| keep(v))
            .collect();
        values.sort_unstable();
        values.dedup();

        let dense_of: HashMap<ValueId, u32> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();

        let mut conf: HashMap<(u32, u32), u32> = HashMap::new();
        for inst in &trace.instructions {
            let ops: Vec<u32> = inst
                .iter()
                .filter_map(|v| dense_of.get(&v).copied())
                .collect();
            for i in 0..ops.len() {
                for j in (i + 1)..ops.len() {
                    let (a, b) = if ops[i] < ops[j] {
                        (ops[i], ops[j])
                    } else {
                        (ops[j], ops[i])
                    };
                    *conf.entry((a, b)).or_insert(0) += 1;
                }
            }
        }

        let mut adj = vec![Vec::new(); values.len()];
        for &(a, b) in conf.keys() {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let edges = conf.len();

        ConflictGraph {
            values,
            dense_of,
            adj,
            conf,
            edges,
        }
    }

    /// Build directly from dense edge lists (used by tests, the synthetic
    /// generators, and the atom decomposition which works on subgraphs).
    pub fn from_edges(n: usize, edge_list: &[(u32, u32, u32)]) -> ConflictGraph {
        let values: Vec<ValueId> = (0..n as u32).map(ValueId).collect();
        let dense_of = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut conf = HashMap::new();
        let mut adj = vec![Vec::new(); n];
        for &(a, b, c) in edge_list {
            assert!(a != b, "self loops are not allowed");
            let key = if a < b { (a, b) } else { (b, a) };
            if conf.insert(key, c).is_none() {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let edges = conf.len();
        ConflictGraph {
            values,
            dense_of,
            adj,
            conf,
            edges,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The value a dense vertex represents.
    pub fn value(&self, v: u32) -> ValueId {
        self.values[v as usize]
    }

    /// Dense vertex of a value, if the value occurs in the graph.
    pub fn vertex_of(&self, v: ValueId) -> Option<u32> {
        self.dense_of.get(&v).copied()
    }

    /// Neighbors of a dense vertex, ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of a dense vertex.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// `conf(u, v)` — how many instructions use both endpoints (0 if no edge).
    pub fn conf(&self, u: u32, v: u32) -> u32 {
        let key = if u < v { (u, v) } else { (v, u) };
        self.conf.get(&key).copied().unwrap_or(0)
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.conf(u, v) > 0
    }

    /// Whether every pair of vertices in `set` is adjacent (i.e. `set`
    /// induces a clique). Used by the clique-separator decomposition.
    pub fn is_clique(&self, set: &[u32]) -> bool {
        for i in 0..set.len() {
            for j in (i + 1)..set.len() {
                if !self.has_edge(set[i], set[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Induced subgraph on `vertices` (dense vertex ids of `self`). The
    /// returned graph's vertex `i` corresponds to `vertices[i]`; its
    /// `value()` mapping is preserved from the parent.
    pub fn induced(&self, vertices: &[u32]) -> ConflictGraph {
        let mut local = HashMap::with_capacity(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            local.insert(v, i as u32);
        }
        let values: Vec<ValueId> = vertices.iter().map(|&v| self.value(v)).collect();
        let dense_of = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut conf = HashMap::new();
        let mut adj = vec![Vec::new(); vertices.len()];
        for (i, &v) in vertices.iter().enumerate() {
            for &w in self.neighbors(v) {
                if let Some(&j) = local.get(&w) {
                    if (i as u32) < j {
                        conf.insert((i as u32, j), self.conf(v, w));
                        adj[i].push(j);
                        adj[j as usize].push(i as u32);
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let edges = conf.len();
        ConflictGraph {
            values,
            dense_of,
            adj,
            conf,
            edges,
        }
    }

    /// Iterate all edges as `(u, v, conf)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.conf.iter().map(|(&(u, v), &c)| (u, v, c))
    }

    /// Connected components as lists of dense vertices (ascending within
    /// each component; components ordered by smallest vertex).
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n as u32 {
            if seen[s as usize] {
                continue;
            }
            let mut comp = Vec::new();
            seen[s as usize] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccessTrace;

    /// The Fig. 1 trace from the paper: instructions {V1 V2 V4}, {V2 V3 V5},
    /// {V2 V3 V4} with three modules.
    fn fig1() -> AccessTrace {
        AccessTrace::from_lists(3, &[&[1, 2, 4], &[2, 3, 5], &[2, 3, 4]])
    }

    #[test]
    fn builds_fig1_graph() {
        let g = ConflictGraph::build(&fig1());
        assert_eq!(g.len(), 5);
        // Edges: 1-2, 1-4, 2-4, 2-3, 2-5, 3-5, 3-4.
        assert_eq!(g.edge_count(), 7);
        let v2 = g.vertex_of(ValueId(2)).unwrap();
        let v3 = g.vertex_of(ValueId(3)).unwrap();
        let v1 = g.vertex_of(ValueId(1)).unwrap();
        let v5 = g.vertex_of(ValueId(5)).unwrap();
        // V2 and V3 co-occur twice.
        assert_eq!(g.conf(v2, v3), 2);
        assert_eq!(g.conf(v1, v2), 1);
        assert_eq!(g.conf(v1, v5), 0);
        assert!(!g.has_edge(v1, v5));
        assert_eq!(g.degree(v2), 4);
    }

    #[test]
    fn filtered_build_projects_values() {
        let t = fig1();
        // Keep only odd values: instructions project to {1}, {3,5}, {3}.
        let g = ConflictGraph::build_filtered(&t, |v| v.0 % 2 == 1);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 1);
        let v3 = g.vertex_of(ValueId(3)).unwrap();
        let v5 = g.vertex_of(ValueId(5)).unwrap();
        assert_eq!(g.conf(v3, v5), 1);
    }

    #[test]
    fn clique_detection() {
        let g = ConflictGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]);
        let v = |i: u32| i;
        assert!(g.is_clique(&[v(0), v(1), v(2)]));
        assert!(!g.is_clique(&[v(0), v(1), v(3)]));
        assert!(g.is_clique(&[v(2), v(3)]));
        assert!(g.is_clique(&[v(0)]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    fn induced_subgraph_preserves_values_and_conf() {
        let g = ConflictGraph::build(&fig1());
        let v2 = g.vertex_of(ValueId(2)).unwrap();
        let v3 = g.vertex_of(ValueId(3)).unwrap();
        let v5 = g.vertex_of(ValueId(5)).unwrap();
        let sub = g.induced(&[v2, v3, v5]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.edge_count(), 3);
        let s2 = sub.vertex_of(ValueId(2)).unwrap();
        let s3 = sub.vertex_of(ValueId(3)).unwrap();
        assert_eq!(sub.conf(s2, s3), 2);
        assert_eq!(sub.value(s2), ValueId(2));
    }

    #[test]
    fn connected_components_split() {
        let g = ConflictGraph::from_edges(5, &[(0, 1, 1), (2, 3, 1)]);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn from_edges_dedups() {
        let g = ConflictGraph::from_edges(3, &[(0, 1, 2), (1, 0, 2)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.conf(0, 1), 2);
    }
}
