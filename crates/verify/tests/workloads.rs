//! The verifier against the paper's six benchmark programs: every pipeline
//! invariant must hold on real workloads, across machine sizes and both
//! duplication strategies, and a deliberately corrupted assignment must be
//! caught with a diagnostic naming the offending instruction.

use parmem_core::assignment::{assign_trace, AssignParams, DuplicationStrategy};
use parmem_core::types::{ModuleId, ModuleSet};
use parmem_driver::Session;
use parmem_verify::{verify_all, verify_trace, Code};
use rliw_sim::ArrayPlacement;

#[test]
fn all_six_workloads_verify_clean() {
    for bench in workloads::benchmarks() {
        for k in [4, 8] {
            let prog = Session::new(k)
                .without_optimizer()
                .compile(bench.source)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            let (a, r) = assign_trace(&prog.sched.access_trace(), &AssignParams::default());
            let report = verify_all(&prog.tac, &prog.sched, &a, Some(&r));
            assert!(report.is_clean(), "{} (k={k}): {report}", bench.name);
        }
    }
}

#[test]
fn both_duplication_strategies_verify_clean() {
    for bench in workloads::benchmarks() {
        for dup in [
            DuplicationStrategy::Backtrack,
            DuplicationStrategy::HittingSet,
        ] {
            let prog = Session::new(4)
                .without_optimizer()
                .compile(bench.source)
                .unwrap();
            let params = AssignParams {
                duplication: dup,
                ..AssignParams::default()
            };
            let (a, r) = assign_trace(&prog.sched.access_trace(), &params);
            let report = verify_all(&prog.tac, &prog.sched, &a, Some(&r));
            assert!(report.is_clean(), "{} ({dup:?}): {report}", bench.name);
        }
    }
}

#[test]
fn static_prediction_matches_simulator_on_all_workloads() {
    // With a verified assignment the static prediction is "no conflicts";
    // the simulator must agree exactly, workload by workload.
    for bench in workloads::benchmarks() {
        for k in [2, 4, 8] {
            let prog = Session::new(k)
                .without_optimizer()
                .compile(bench.source)
                .unwrap();
            let (a, r) = assign_trace(&prog.sched.access_trace(), &AssignParams::default());
            assert_eq!(r.residual_conflicts, 0, "{} k={k}", bench.name);
            let prediction = parmem_verify::differential::predict(&prog.sched, &a);
            assert!(
                prediction.conflicting_words.is_empty(),
                "{} k={k}: static conflicts {:?}",
                bench.name,
                prediction.conflicting_words
            );
            let stats = rliw_sim::run(&prog.sched, &a, ArrayPlacement::Ideal)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert_eq!(stats.scalar_conflict_words, 0, "{} k={k}", bench.name);
            assert_eq!(stats.unplaced_reads, 0, "{} k={k}", bench.name);
        }
    }
}

#[test]
fn corrupted_assignment_yields_pm_diagnostic_naming_the_instruction() {
    // Acceptance demo: force two operands of one instruction into a single
    // module and watch the verifier name that exact instruction.
    let bench = workloads::by_name("taylor1")
        .or_else(|| workloads::benchmarks().into_iter().next())
        .expect("at least one workload");
    let prog = Session::new(8)
        .without_optimizer()
        .compile(bench.source)
        .unwrap();
    let trace = prog.sched.access_trace();
    let (mut a, _) = assign_trace(&trace, &AssignParams::default());

    let inst = trace
        .instructions
        .iter()
        .position(|i| i.len() >= 2)
        .expect("some word fetches two scalars");
    let ops: Vec<_> = trace.instructions[inst].iter().collect();
    a.set_copies(ops[0], ModuleSet::singleton(ModuleId(3)));
    a.set_copies(ops[1], ModuleSet::singleton(ModuleId(3)));

    let report = verify_trace(&trace, &a, None);
    let hits = report.with_code(Code::PM003);
    assert!(
        hits.iter().any(|d| d.instruction == Some(inst)),
        "expected PM003 naming instruction {inst}, got: {report}"
    );
    // The clashing pair is also reported at value granularity.
    assert!(report.has_code(Code::PM005));
    // And the JSON rendering carries the code for machine consumption.
    assert!(report.to_json().contains("\"PM003\""));
}

#[test]
fn extended_workload_set_verifies_clean() {
    for bench in workloads::all_benchmarks() {
        let prog = Session::new(8)
            .without_optimizer()
            .compile(bench.source)
            .unwrap();
        let (a, r) = assign_trace(&prog.sched.access_trace(), &AssignParams::default());
        let report = verify_all(&prog.tac, &prog.sched, &a, Some(&r));
        assert!(report.is_clean(), "{}: {report}", bench.name);
    }
}
