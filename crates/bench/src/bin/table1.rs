//! Regenerate the paper's Table 1: duplication of data under the three
//! storage strategies, eight memory modules.
//!
//! Usage: `cargo run -p parmem-bench --bin table1 [-- <modules>]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "csv");
    let k = args.iter().find_map(|a| a.parse().ok()).unwrap_or(8);
    let rows = parmem_bench::table1(k);
    if csv {
        println!(
            "program,stor1_single,stor1_multi,stor2_single,stor2_multi,stor3_single,stor3_multi"
        );
        for r in &rows {
            println!(
                "{},{},{},{},{},{},{}",
                r.program,
                r.stor1.single,
                r.stor1.multi,
                r.stor2.single,
                r.stor2.multi,
                r.stor3.single,
                r.stor3.multi
            );
        }
        return;
    }
    println!("(k = {k} memory modules)");
    print!("{}", parmem_bench::format_table1(&rows));
    let residual: usize = rows
        .iter()
        .flat_map(|r| [r.stor1, r.stor2, r.stor3])
        .map(|c| c.residual_conflicts)
        .sum();
    println!("\nresidual scalar conflicts across all runs: {residual}");
}
