//! AST → three-address-code lowering, with integrated semantic checking
//! (symbol resolution, type checking, implicit int→real coercion).

use std::collections::HashMap;
use std::fmt;

use crate::ast::{self, BinOp, Decl, DeclTy, Expr, Intrinsic, LValue, Stmt, Ty, UnOp};
use crate::tac::{
    eval_op, ArrayId, ArrayInfo, Block, BlockId, Instr, OpCode, Operand, TacProgram, Terminator,
    Value, VarId, VarInfo,
};

/// A semantic error with the source line it was detected on.
#[derive(Clone, Debug, PartialEq)]
pub struct SemaError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SemaError {}

/// Lower a parsed program to TAC. All semantic checks happen here.
pub fn lower(ast: &ast::Program) -> Result<TacProgram, SemaError> {
    let mut sp = parmem_obs::span("ir.lower");
    let mut lw = Lowerer::new(&ast.name);
    lw.declare_all(&ast.decls)?;
    let entry = lw.new_block();
    lw.current = entry;
    lw.stmts(&ast.body)?;
    lw.terminate(Terminator::Halt);
    let prog = lw.finish(entry);
    sp.attr("blocks", prog.blocks.len());
    sp.attr("vars", prog.vars.len());
    Ok(prog)
}

#[derive(Clone, Copy)]
enum Sym {
    Scalar(VarId, Ty),
    Array(ArrayId, Ty),
}

struct ProtoBlock {
    instrs: Vec<Instr>,
    term: Option<Terminator>,
}

struct Lowerer {
    name: String,
    vars: Vec<VarInfo>,
    arrays: Vec<ArrayInfo>,
    symbols: HashMap<String, Sym>,
    blocks: Vec<ProtoBlock>,
    current: BlockId,
    next_temp: u32,
}

impl Lowerer {
    fn new(name: &str) -> Lowerer {
        Lowerer {
            name: name.to_string(),
            vars: Vec::new(),
            arrays: Vec::new(),
            symbols: HashMap::new(),
            blocks: Vec::new(),
            current: BlockId(0),
            next_temp: 0,
        }
    }

    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, SemaError> {
        Err(SemaError {
            message: msg.into(),
            line,
        })
    }

    fn declare_all(&mut self, decls: &[Decl]) -> Result<(), SemaError> {
        for d in decls {
            for name in &d.names {
                if self.symbols.contains_key(name) {
                    return self.err(d.line, format!("`{name}` declared twice"));
                }
                match &d.ty {
                    DeclTy::Scalar(ty) => {
                        let id = VarId(self.vars.len() as u32);
                        self.vars.push(VarInfo {
                            name: name.clone(),
                            ty: *ty,
                            is_temp: false,
                        });
                        self.symbols.insert(name.clone(), Sym::Scalar(id, *ty));
                    }
                    DeclTy::Array { len, elem } => {
                        let id = ArrayId(self.arrays.len() as u32);
                        self.arrays.push(ArrayInfo {
                            name: name.clone(),
                            len: *len,
                            elem: *elem,
                        });
                        self.symbols.insert(name.clone(), Sym::Array(id, *elem));
                    }
                }
            }
        }
        Ok(())
    }

    fn new_temp(&mut self, ty: Ty) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: format!("t{}", self.next_temp),
            ty,
            is_temp: true,
        });
        self.next_temp += 1;
        id
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(ProtoBlock {
            instrs: Vec::new(),
            term: None,
        });
        id
    }

    fn emit(&mut self, i: Instr) {
        self.blocks[self.current.index()].instrs.push(i);
    }

    fn terminate(&mut self, t: Terminator) {
        let b = &mut self.blocks[self.current.index()];
        if b.term.is_none() {
            b.term = Some(t);
        }
    }

    fn finish(self, entry: BlockId) -> TacProgram {
        TacProgram {
            name: self.name,
            vars: self.vars,
            arrays: self.arrays,
            blocks: self
                .blocks
                .into_iter()
                .map(|p| Block {
                    instrs: p.instrs,
                    term: p.term.unwrap_or(Terminator::Halt),
                })
                .collect(),
            entry,
        }
    }

    // ---- statements ----

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), SemaError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SemaError> {
        match s {
            Stmt::Assign {
                target,
                value,
                line,
            } => self.assign(target, value, *line),
            Stmt::Print { value, line } => {
                let (op, _) = self.expr(value, *line)?;
                self.emit(Instr::Print { value: op });
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let (c, cty) = self.expr(cond, *line)?;
                if cty != Ty::Bool {
                    return self.err(*line, "if condition must be bool");
                }
                let then_b = self.new_block();
                let else_b = self.new_block();
                let join_b = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_to: then_b,
                    else_to: else_b,
                });
                self.current = then_b;
                self.stmts(then_body)?;
                self.terminate(Terminator::Jump(join_b));
                self.current = else_b;
                self.stmts(else_body)?;
                self.terminate(Terminator::Jump(join_b));
                self.current = join_b;
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let head = self.new_block();
                self.terminate(Terminator::Jump(head));
                self.current = head;
                let (c, cty) = self.expr(cond, *line)?;
                if cty != Ty::Bool {
                    return self.err(*line, "while condition must be bool");
                }
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_to: body_b,
                    else_to: exit_b,
                });
                self.current = body_b;
                self.stmts(body)?;
                self.terminate(Terminator::Jump(head));
                self.current = exit_b;
                Ok(())
            }
            Stmt::For {
                var,
                from,
                to,
                down,
                body,
                line,
            } => {
                let (vid, vty) = self.scalar(var, *line)?;
                if vty != Ty::Int {
                    return self.err(*line, "for-loop variable must be int");
                }
                // i := from
                let (f, fty) = self.expr(from, *line)?;
                if fty != Ty::Int {
                    return self.err(*line, "for-loop bound must be int");
                }
                self.emit(Instr::Compute {
                    dest: vid,
                    op: OpCode::Copy,
                    lhs: f,
                    rhs: None,
                });
                // limit evaluated once, like Pascal.
                let (t, tty) = self.expr(to, *line)?;
                if tty != Ty::Int {
                    return self.err(*line, "for-loop bound must be int");
                }
                let limit = match t {
                    Operand::Const(_) => t,
                    Operand::Var(_) => {
                        let lt = self.new_temp(Ty::Int);
                        self.emit(Instr::Compute {
                            dest: lt,
                            op: OpCode::Copy,
                            lhs: t,
                            rhs: None,
                        });
                        Operand::Var(lt)
                    }
                };
                let head = self.new_block();
                self.terminate(Terminator::Jump(head));
                self.current = head;
                let cond_t = self.new_temp(Ty::Bool);
                self.emit(Instr::Compute {
                    dest: cond_t,
                    op: if *down { OpCode::Ge } else { OpCode::Le },
                    lhs: Operand::Var(vid),
                    rhs: Some(limit),
                });
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: Operand::Var(cond_t),
                    then_to: body_b,
                    else_to: exit_b,
                });
                self.current = body_b;
                self.stmts(body)?;
                self.emit(Instr::Compute {
                    dest: vid,
                    op: if *down { OpCode::Sub } else { OpCode::Add },
                    lhs: Operand::Var(vid),
                    rhs: Some(Operand::Const(Value::Int(1))),
                });
                self.terminate(Terminator::Jump(head));
                self.current = exit_b;
                Ok(())
            }
        }
    }

    fn assign(&mut self, target: &LValue, value: &Expr, line: u32) -> Result<(), SemaError> {
        match target {
            LValue::Var(name) => {
                let (vid, vty) = self.scalar(name, line)?;
                let (op, ty) = self.expr(value, line)?;
                let op = self.coerce(op, ty, vty, line)?;
                // Peephole: if the value was computed into a fresh temp by
                // the immediately preceding instruction, retarget it.
                if let Operand::Var(t) = op {
                    if self.vars[t.index()].is_temp {
                        if let Some(Instr::Compute { dest, .. } | Instr::Load { dest, .. }) =
                            self.blocks[self.current.index()].instrs.last_mut()
                        {
                            if *dest == t {
                                *dest = vid;
                                return Ok(());
                            }
                        }
                    }
                }
                self.emit(Instr::Compute {
                    dest: vid,
                    op: OpCode::Copy,
                    lhs: op,
                    rhs: None,
                });
                Ok(())
            }
            LValue::Index { array, index } => {
                let (aid, ety) = self.array(array, line)?;
                let (idx, ity) = self.expr(index, line)?;
                if ity != Ty::Int {
                    return self.err(line, "array index must be int");
                }
                let (val, vty) = self.expr(value, line)?;
                let val = self.coerce(val, vty, ety, line)?;
                self.emit(Instr::Store {
                    arr: aid,
                    index: idx,
                    value: val,
                });
                Ok(())
            }
        }
    }

    // ---- symbols ----

    fn scalar(&self, name: &str, line: u32) -> Result<(VarId, Ty), SemaError> {
        match self.symbols.get(name) {
            Some(Sym::Scalar(id, ty)) => Ok((*id, *ty)),
            Some(Sym::Array(..)) => self.err(line, format!("`{name}` is an array")),
            None => self.err(line, format!("undeclared variable `{name}`")),
        }
    }

    fn array(&self, name: &str, line: u32) -> Result<(ArrayId, Ty), SemaError> {
        match self.symbols.get(name) {
            Some(Sym::Array(id, ty)) => Ok((*id, *ty)),
            Some(Sym::Scalar(..)) => self.err(line, format!("`{name}` is not an array")),
            None => self.err(line, format!("undeclared array `{name}`")),
        }
    }

    // ---- expressions ----

    /// Coerce `op: from` to type `to`, inserting a conversion if needed.
    fn coerce(&mut self, op: Operand, from: Ty, to: Ty, line: u32) -> Result<Operand, SemaError> {
        if from == to {
            return Ok(op);
        }
        match (from, to) {
            (Ty::Int, Ty::Real) => Ok(self.convert(op, OpCode::IntToReal)),
            (Ty::Real, Ty::Int) => self.err(line, "cannot assign real to int (use trunc())"),
            _ => self.err(line, format!("type mismatch: {from:?} vs {to:?}")),
        }
    }

    fn convert(&mut self, op: Operand, code: OpCode) -> Operand {
        if let Operand::Const(c) = op {
            return Operand::Const(eval_op(code, c, None));
        }
        let t = self.new_temp(code.result_ty());
        self.emit(Instr::Compute {
            dest: t,
            op: code,
            lhs: op,
            rhs: None,
        });
        Operand::Var(t)
    }

    fn expr(&mut self, e: &Expr, line: u32) -> Result<(Operand, Ty), SemaError> {
        match e {
            Expr::IntLit(v) => Ok((Operand::Const(Value::Int(*v)), Ty::Int)),
            Expr::RealLit(v) => Ok((Operand::Const(Value::Real(*v)), Ty::Real)),
            Expr::BoolLit(b) => Ok((Operand::Const(Value::Bool(*b)), Ty::Bool)),
            Expr::Var(name) => {
                let (id, ty) = self.scalar(name, line)?;
                Ok((Operand::Var(id), ty))
            }
            Expr::Index { array, index } => {
                let (aid, ety) = self.array(array, line)?;
                let (idx, ity) = self.expr(index, line)?;
                if ity != Ty::Int {
                    return self.err(line, "array index must be int");
                }
                let t = self.new_temp(ety);
                self.emit(Instr::Load {
                    dest: t,
                    arr: aid,
                    index: idx,
                });
                Ok((Operand::Var(t), ety))
            }
            Expr::Unary { op, expr } => {
                let (v, ty) = self.expr(expr, line)?;
                match op {
                    UnOp::Neg => {
                        let code = match ty {
                            Ty::Int => OpCode::Neg,
                            Ty::Real => OpCode::FNeg,
                            Ty::Bool => return self.err(line, "cannot negate bool"),
                        };
                        Ok((self.apply(code, v, None), code.result_ty()))
                    }
                    UnOp::Not => {
                        if ty != Ty::Bool {
                            return self.err(line, "`not` requires bool");
                        }
                        Ok((self.apply(OpCode::Not, v, None), Ty::Bool))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, line),
            Expr::Call { func, arg } => {
                let (v, ty) = self.expr(arg, line)?;
                let (code, want) = match func {
                    Intrinsic::Sqrt => (OpCode::Sqrt, Ty::Real),
                    Intrinsic::Sin => (OpCode::Sin, Ty::Real),
                    Intrinsic::Cos => (OpCode::Cos, Ty::Real),
                    Intrinsic::Exp => (OpCode::Exp, Ty::Real),
                    Intrinsic::Ln => (OpCode::Ln, Ty::Real),
                    Intrinsic::ToReal => (OpCode::IntToReal, Ty::Int),
                    Intrinsic::Trunc => (OpCode::Trunc, Ty::Real),
                    Intrinsic::Abs => {
                        let code = match ty {
                            Ty::Int => OpCode::IAbs,
                            Ty::Real => OpCode::FAbs,
                            Ty::Bool => return self.err(line, "abs() requires a number"),
                        };
                        return Ok((self.apply(code, v, None), code.result_ty()));
                    }
                };
                if ty == Ty::Bool {
                    return self.err(line, "intrinsic requires a numeric argument");
                }
                let v = if want == Ty::Real && ty == Ty::Int {
                    self.convert(v, OpCode::IntToReal)
                } else if want == Ty::Int && ty == Ty::Real {
                    return self.err(line, "intrinsic requires an int argument");
                } else {
                    v
                };
                Ok((self.apply(code, v, None), code.result_ty()))
            }
        }
    }

    /// Emit `code` (folding constants) and return the result operand.
    fn apply(&mut self, code: OpCode, lhs: Operand, rhs: Option<Operand>) -> Operand {
        if let Operand::Const(a) = lhs {
            match rhs {
                None => return Operand::Const(eval_op(code, a, None)),
                Some(Operand::Const(b)) => return Operand::Const(eval_op(code, a, Some(b))),
                _ => {}
            }
        }
        let t = self.new_temp(code.result_ty());
        self.emit(Instr::Compute {
            dest: t,
            op: code,
            lhs,
            rhs,
        });
        Operand::Var(t)
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<(Operand, Ty), SemaError> {
        let (a, aty) = self.expr(lhs, line)?;
        let (b, bty) = self.expr(rhs, line)?;

        if op.is_logical() {
            if aty != Ty::Bool || bty != Ty::Bool {
                return self.err(line, "logical operator requires bool operands");
            }
            let code = if op == BinOp::And {
                OpCode::And
            } else {
                OpCode::Or
            };
            return Ok((self.apply(code, a, Some(b)), Ty::Bool));
        }

        if aty == Ty::Bool || bty == Ty::Bool {
            // Only = and <> make sense on bools.
            if matches!(op, BinOp::Eq | BinOp::Ne) && aty == Ty::Bool && bty == Ty::Bool {
                let code = if op == BinOp::Eq {
                    OpCode::Eq
                } else {
                    OpCode::Ne
                };
                return Ok((self.apply(code, a, Some(b)), Ty::Bool));
            }
            return self.err(line, "arithmetic on bool operands");
        }

        // Numeric: decide integer vs real forms.
        let real = aty == Ty::Real || bty == Ty::Real || op == BinOp::Div;
        let (a, b) = if real {
            (
                if aty == Ty::Int {
                    self.convert(a, OpCode::IntToReal)
                } else {
                    a
                },
                if bty == Ty::Int {
                    self.convert(b, OpCode::IntToReal)
                } else {
                    b
                },
            )
        } else {
            (a, b)
        };

        let code = match (op, real) {
            (BinOp::Add, false) => OpCode::Add,
            (BinOp::Sub, false) => OpCode::Sub,
            (BinOp::Mul, false) => OpCode::Mul,
            (BinOp::Add, true) => OpCode::FAdd,
            (BinOp::Sub, true) => OpCode::FSub,
            (BinOp::Mul, true) => OpCode::FMul,
            (BinOp::Div, _) => OpCode::FDiv,
            (BinOp::IDiv, false) => OpCode::IDiv,
            (BinOp::Mod, false) => OpCode::Mod,
            (BinOp::IDiv | BinOp::Mod, true) => {
                return self.err(line, "`div`/`mod` require int operands")
            }
            (BinOp::Eq, false) => OpCode::Eq,
            (BinOp::Ne, false) => OpCode::Ne,
            (BinOp::Lt, false) => OpCode::Lt,
            (BinOp::Le, false) => OpCode::Le,
            (BinOp::Gt, false) => OpCode::Gt,
            (BinOp::Ge, false) => OpCode::Ge,
            (BinOp::Eq, true) => OpCode::FEq,
            (BinOp::Ne, true) => OpCode::FNe,
            (BinOp::Lt, true) => OpCode::FLt,
            (BinOp::Le, true) => OpCode::FLe,
            (BinOp::Gt, true) => OpCode::FGt,
            (BinOp::Ge, true) => OpCode::FGe,
            (BinOp::And | BinOp::Or, _) => unreachable!("handled above"),
        };
        Ok((self.apply(code, a, Some(b)), code.result_ty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> TacProgram {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn compile_err(src: &str) -> SemaError {
        lower(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn lowers_straight_line_code() {
        let p = compile("program t; var x, y: int; begin x := 1 + 2; y := x * 3; end.");
        // 1+2 folds to a constant copy.
        let b0 = &p.blocks[p.entry.index()];
        assert_eq!(b0.instrs.len(), 2);
        assert!(matches!(
            b0.instrs[0],
            Instr::Compute {
                op: OpCode::Copy,
                lhs: Operand::Const(Value::Int(3)),
                ..
            }
        ));
        assert!(matches!(
            b0.instrs[1],
            Instr::Compute {
                op: OpCode::Mul,
                ..
            }
        ));
        assert!(matches!(b0.term, Terminator::Halt));
    }

    #[test]
    fn peephole_retargets_temp_to_var() {
        let p = compile("program t; var x, y: int; begin y := x + 1; end.");
        let b0 = &p.blocks[p.entry.index()];
        assert_eq!(b0.instrs.len(), 1, "{}", p.to_text());
        match &b0.instrs[0] {
            Instr::Compute {
                dest,
                op: OpCode::Add,
                ..
            } => {
                assert_eq!(p.var(*dest).name, "y");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_builds_diamond_cfg() {
        let p = compile("program t; var x: int; begin if x > 0 then x := 1; else x := 2; end.");
        assert_eq!(p.blocks.len(), 4); // entry, then, else, join
        match &p.blocks[p.entry.index()].term {
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                assert_ne!(then_to, else_to);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_builds_loop_cfg() {
        let p = compile("program t; var i: int; begin i := 0; while i < 10 do i := i + 1; end.");
        // entry, head, body, exit
        assert_eq!(p.blocks.len(), 4);
        let head = match &p.blocks[p.entry.index()].term {
            Terminator::Jump(h) => *h,
            other => panic!("{other:?}"),
        };
        match &p.blocks[head.index()].term {
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                // Body jumps back to head.
                match &p.blocks[then_to.index()].term {
                    Terminator::Jump(back) => assert_eq!(*back, head),
                    other => panic!("{other:?}"),
                }
                assert!(matches!(p.blocks[else_to.index()].term, Terminator::Halt));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_loop_evaluates_limit_once() {
        let p = compile(
            "program t; var i, n, s: int;
             begin n := 5; for i := 0 to n do s := s + i; end.",
        );
        let text = p.to_text();
        // The limit `n` is copied to a temp before the loop head.
        assert!(
            text.contains("t0 = Copy n") || text.contains("= Copy n"),
            "{text}"
        );
    }

    #[test]
    fn mixed_arithmetic_inserts_conversion() {
        let p = compile("program t; var x: real; i: int; begin x := i + 1.5; end.");
        let text = p.to_text();
        assert!(text.contains("IntToReal"), "{text}");
    }

    #[test]
    fn division_is_always_real() {
        let p = compile("program t; var x: real; begin x := 1 / 4; end.");
        let b0 = &p.blocks[p.entry.index()];
        // Constant folded: 1/4 = 0.25.
        assert!(
            matches!(
                b0.instrs[0],
                Instr::Compute {
                    op: OpCode::Copy,
                    lhs: Operand::Const(Value::Real(0.25)),
                    ..
                }
            ),
            "{}",
            p.to_text()
        );
    }

    #[test]
    fn array_load_store() {
        let p = compile(
            "program t; var a: array[8] of int; i, x: int;
             begin a[i] := x; x := a[i + 1]; end.",
        );
        let b0 = &p.blocks[p.entry.index()];
        assert!(matches!(b0.instrs[0], Instr::Store { .. }));
        assert!(b0.instrs.iter().any(|i| matches!(i, Instr::Load { .. })));
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = compile_err("program t; begin x := 1; end.");
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let e = compile_err("program t; var x: int; x: real; begin end.");
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn rejects_real_to_int_assignment() {
        let e = compile_err("program t; var i: int; begin i := 1.5; end.");
        assert!(e.message.contains("trunc"));
    }

    #[test]
    fn trunc_allows_real_to_int() {
        let p = compile("program t; var i: int; x: real; begin i := trunc(x); end.");
        assert!(p.to_text().contains("Trunc"));
    }

    #[test]
    fn rejects_bool_condition_misuse() {
        let e = compile_err("program t; var i: int; begin if i then i := 1; end.");
        assert!(e.message.contains("bool"));
    }

    #[test]
    fn rejects_non_int_index() {
        let e = compile_err("program t; var a: array[4] of int; x: real; begin a[x] := 1; end.");
        assert!(e.message.contains("index"));
    }

    #[test]
    fn rejects_mod_on_reals() {
        let e = compile_err("program t; var x: real; begin x := 1.0; x := x mod 2.0; end.");
        assert!(e.message.contains("mod") || e.message.contains("int"));
    }

    #[test]
    fn rejects_for_with_real_var() {
        let e = compile_err("program t; var x: real; begin for x := 0 to 3 do print x; end.");
        assert!(e.message.contains("int"));
    }

    #[test]
    fn intrinsics_coerce_int_args() {
        let p = compile("program t; var x: real; begin x := sqrt(9); end.");
        // sqrt(9) folds: IntToReal(9) → 9.0, Sqrt(9.0) → 3.0.
        let b0 = &p.blocks[p.entry.index()];
        assert!(
            matches!(
                b0.instrs[0],
                Instr::Compute {
                    op: OpCode::Copy,
                    lhs: Operand::Const(Value::Real(v)),
                    ..
                } if v == 3.0
            ),
            "{}",
            p.to_text()
        );
    }

    #[test]
    fn bool_equality_allowed() {
        let p = compile("program t; var a, b, c: bool; begin c := a = b; end.");
        assert!(p.to_text().contains("Eq"));
    }

    #[test]
    fn downto_uses_ge_and_sub() {
        let p = compile("program t; var i: int; begin for i := 5 downto 1 do print i; end.");
        let text = p.to_text();
        assert!(text.contains("Ge"), "{text}");
        assert!(text.contains("Sub"), "{text}");
    }
}
