//! Argument-contract audit for every `parmem` subcommand: unknown options
//! must exit with status 2 and an error listing the accepted flags, so no
//! subcommand silently swallows a typo'd or out-of-place option.

use std::process::Command;

/// All subcommands the CLI dispatches (kept in sync with `arg_spec` in
/// `src/bin/parmem.rs` — a new subcommand that misses this list fails the
/// completeness test below).
const SUBCOMMANDS: &[&str] = &[
    "assign", "compile", "run", "verify", "batch", "trace", "exact", "lint", "synth", "serve",
];

/// Dispatchable but deliberately absent from the usage line: deprecated
/// aliases kept for compatibility. They still get the full exit-2 audit.
const HIDDEN_ALIASES: &[&str] = &["serve-metrics"];

/// Subcommands that accept `--flight-dump PATH` (everything long-running;
/// `run` is a bare interpreter loop and the `serve-metrics` alias has no
/// pipeline to record).
const FLIGHT_DUMP_CMDS: &[&str] = &[
    "assign", "compile", "verify", "batch", "trace", "exact", "lint", "synth", "serve",
];

/// Subcommands that accept `--metrics-addr ADDR` (the multi-job /
/// scale-workload commands, plus the dedicated endpoint stub).
const METRICS_ADDR_CMDS: &[&str] = &["batch", "exact", "lint", "synth", "serve-metrics"];

fn parmem(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_parmem"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn parmem")
}

#[test]
fn every_subcommand_rejects_unknown_options_with_exit_2() {
    for cmd in SUBCOMMANDS.iter().chain(HIDDEN_ALIASES) {
        let out = parmem(&[cmd, "--definitely-not-a-flag"]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`parmem {cmd}` accepted a bogus flag (stderr: {stderr})"
        );
        assert!(
            stderr.contains("unknown option `--definitely-not-a-flag`"),
            "`parmem {cmd}` stderr does not name the bad option: {stderr}"
        );
        assert!(
            stderr.contains("accepted:"),
            "`parmem {cmd}` stderr does not list accepted options: {stderr}"
        );
    }
}

#[test]
fn double_dash_k_only_works_where_k_is_declared() {
    // `run` takes no module count: `--k` must be rejected like any other
    // unknown option, not silently swallowed with its value.
    let out = parmem(&["run", "--k", "4"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("unknown option `--k`"), "{stderr}");

    // `lint` declares `-k`, so the `--k` spelling parses there.
    let out = parmem(&["lint", "FFT", "--k", "4"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    let out = parmem(&["frobnicate"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr.contains("usage: parmem"), "{stderr}");
    // The usage line advertises every dispatchable subcommand…
    for cmd in SUBCOMMANDS {
        assert!(stderr.contains(cmd), "usage line misses `{cmd}`: {stderr}");
    }
    // …but not the deprecated aliases (they keep working, silently).
    for alias in HIDDEN_ALIASES {
        assert!(
            !stderr.contains(alias),
            "usage line advertises deprecated `{alias}`: {stderr}"
        );
    }
}

#[test]
fn missing_option_values_exit_2() {
    let out = parmem(&["lint", "--seed"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("requires a value"), "{stderr}");
}

/// Audit the telemetry flags across *every* subcommand: the commands in the
/// accept-lists must parse the option (probed with a missing value — exit 2
/// with "requires a value", so no server binds and no file is written), and
/// every other command must reject it as unknown.
#[test]
fn telemetry_options_accepted_exactly_where_declared() {
    for (opt, accepts) in [
        ("--flight-dump", FLIGHT_DUMP_CMDS),
        ("--metrics-addr", METRICS_ADDR_CMDS),
    ] {
        for cmd in SUBCOMMANDS.iter().chain(HIDDEN_ALIASES) {
            let out = parmem(&[cmd, opt]);
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert_eq!(
                out.status.code(),
                Some(2),
                "`parmem {cmd} {opt}` (no value) should exit 2: {stderr}"
            );
            if accepts.contains(cmd) {
                assert!(
                    stderr.contains("requires a value"),
                    "`parmem {cmd}` should accept {opt}: {stderr}"
                );
            } else {
                assert!(
                    stderr.contains(&format!("unknown option `{opt}`")),
                    "`parmem {cmd}` should reject {opt}: {stderr}"
                );
            }
        }
    }
}

#[test]
fn serve_metrics_rejects_flight_dump_and_bad_max_requests() {
    let out = parmem(&["serve-metrics", "--flight-dump", "/tmp/x.json"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown option `--flight-dump`"),
        "{stderr}"
    );

    // A malformed --max-requests fails before any socket is bound.
    let out = parmem(&["serve-metrics", "--max-requests", "many"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("--max-requests"), "{stderr}");
}

/// Audit the daemon's own flags: every value-taking option parses exactly
/// on `serve` (probed with a missing value so nothing binds), the
/// `--metrics-only` flag takes none, and malformed values fail before any
/// socket is bound.
#[test]
fn serve_flag_contract() {
    for opt in [
        "--addr",
        "--jobs",
        "--cache-bytes",
        "--queue-depth",
        "--max-requests",
    ] {
        let out = parmem(&["serve", opt]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`parmem serve {opt}` (no value) should exit 2: {stderr}"
        );
        assert!(
            stderr.contains("requires a value"),
            "`parmem serve` should accept {opt}: {stderr}"
        );
    }

    // `--metrics-only` is a bare flag; a bogus companion is still unknown.
    let out = parmem(&["serve", "--metrics-only", "--metrics-addr", "x"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown option `--metrics-addr`"),
        "`serve` must take --addr, not the legacy --metrics-addr: {stderr}"
    );

    // Malformed values exit 1 (parse error) before any socket is bound.
    for bad in [
        ["serve", "--jobs", "many"],
        ["serve", "--cache-bytes", "tiny"],
        ["serve", "--queue-depth", "-1"],
        ["serve", "--max-requests", "two"],
    ] {
        let out = parmem(&bad);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "{bad:?}: {stderr}");
    }
}
