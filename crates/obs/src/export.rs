//! The drained [`Session`] and its human/machine exporters: an indented
//! span tree, a JSON document, and a Prometheus-style text metrics dump
//! (the Chrome trace-event exporter lives in [`crate::chrome`]).
//!
//! Every exporter has a *timing* mode (wall-clock fields included; differs
//! run to run) and a *deterministic* mode (structure, attributes, and
//! metric values only — byte-identical across runs and worker counts for
//! the same work, because roots are sorted by label, thread ids and span
//! ids are omitted, and all metric registries iterate sorted).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::metric::{
    snapshot_counters, snapshot_hists, split_labels, take_counters, take_hists, Histogram,
    BUCKET_BOUNDS,
};
use crate::span::{snapshot_records, take_records, AttrValue, SpanRecord};

/// Everything the collector gathered between enable and drain: finished
/// spans plus the counter/histogram registries.
#[derive(Clone, Debug, Default)]
pub struct Session {
    /// Finished spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter registry (sorted by name).
    pub counters: BTreeMap<String, u64>,
    /// Histogram registry (sorted by name).
    pub hists: BTreeMap<String, Histogram>,
}

/// Drain the global collector into a [`Session`]. Tracing stays in whatever
/// enabled state it was; only the buffered data moves. Also clears the live
/// progress registry so successive enable/drain cycles stay independent.
pub fn take() -> Session {
    crate::progress::clear_registry();
    Session {
        spans: take_records(),
        counters: take_counters(),
        hists: take_hists(),
    }
}

/// Clone the collector's current contents into a [`Session`] *without*
/// draining: finished spans, counters, and histograms as of this instant.
/// This is the live-telemetry read path (the `/metrics` endpoint and the
/// flight recorder); a concurrent writer may land between the three locks,
/// so the view is consistent per registry, not across them.
pub fn snapshot() -> Session {
    Session {
        spans: snapshot_records(),
        counters: snapshot_counters(),
        hists: snapshot_hists(),
    }
}

/// `(root indices, children-by-span-id)` with children in start order.
pub(crate) fn build_forest(spans: &[SpanRecord]) -> (Vec<usize>, HashMap<u64, Vec<usize>>) {
    let ids: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut roots: Vec<usize> = Vec::new();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent.filter(|p| ids.contains_key(p)) {
            Some(p) => children.entry(p).or_default().push(i),
            None => roots.push(i),
        }
    }
    let by_start = |&i: &usize| (spans[i].start_ns, spans[i].id);
    roots.sort_by_key(by_start);
    for kids in children.values_mut() {
        kids.sort_by_key(by_start);
    }
    (roots, children)
}

fn render_label(s: &SpanRecord) -> String {
    let mut out = s.name.clone();
    if !s.attrs.is_empty() {
        out.push('{');
        for (i, (k, v)) in s.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('}');
    }
    out
}

/// Human-readable duration: `417ns`, `23.4µs`, `1.234ms`, `2.50s`.
pub fn fmt_duration(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl Session {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.hists.is_empty()
    }

    /// Indented span tree. With `timing`, each line carries its wall-clock
    /// duration and roots keep start order; without, durations and thread
    /// ids are omitted and roots are sorted by label, making the output
    /// deterministic for deterministic work.
    pub fn span_tree(&self, timing: bool) -> String {
        let (mut roots, children) = build_forest(&self.spans);
        if !timing {
            roots.sort_by(|&a, &b| {
                render_label(&self.spans[a])
                    .cmp(&render_label(&self.spans[b]))
                    .then(a.cmp(&b))
            });
        }
        let mut out = String::new();
        for r in roots {
            self.tree_line(&mut out, r, 0, timing, &children);
        }
        out
    }

    fn tree_line(
        &self,
        out: &mut String,
        i: usize,
        depth: usize,
        timing: bool,
        children: &HashMap<u64, Vec<usize>>,
    ) {
        let s = &self.spans[i];
        let _ = write!(out, "{}{}", "  ".repeat(depth), render_label(s));
        if timing {
            let _ = write!(out, "  [{}]", fmt_duration(s.dur_ns));
        }
        out.push('\n');
        if let Some(kids) = children.get(&s.id) {
            for &k in kids {
                self.tree_line(out, k, depth + 1, timing, children);
            }
        }
    }

    /// JSON document: nested span forest plus the metric registries. With
    /// `timing` off, `start_ns`/`dur_ns`/`thread` are omitted and roots are
    /// sorted by label (deterministic mode).
    pub fn to_json(&self, timing: bool) -> String {
        let (mut roots, children) = build_forest(&self.spans);
        if !timing {
            roots.sort_by(|&a, &b| {
                render_label(&self.spans[a])
                    .cmp(&render_label(&self.spans[b]))
                    .then(a.cmp(&b))
            });
        }
        let mut s = String::from("{\"schema\":\"parmem-obs/v1\",\"spans\":[");
        for (n, &r) in roots.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            self.span_json(&mut s, r, timing, &children);
        }
        s.push_str("],\"counters\":{");
        for (n, (name, v)) in self.counters.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", json_escape(name), v);
        }
        s.push_str("},\"histograms\":{");
        for (n, (name, h)) in self.hists.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.sum,
                h.max
            );
            for (bi, b) in h.buckets.iter().enumerate() {
                if bi > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    fn span_json(
        &self,
        out: &mut String,
        i: usize,
        timing: bool,
        children: &HashMap<u64, Vec<usize>>,
    ) {
        let s = &self.spans[i];
        let _ = write!(out, "{{\"name\":\"{}\"", json_escape(&s.name));
        if timing {
            let _ = write!(
                out,
                ",\"start_ns\":{},\"dur_ns\":{},\"thread\":{}",
                s.start_ns, s.dur_ns, s.thread
            );
        }
        if !s.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (n, (k, v)) in s.attrs.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", json_escape(k));
                match v {
                    AttrValue::Int(x) => {
                        let _ = write!(out, "{x}");
                    }
                    AttrValue::Uint(x) => {
                        let _ = write!(out, "{x}");
                    }
                    AttrValue::Bool(x) => {
                        let _ = write!(out, "{x}");
                    }
                    AttrValue::Str(x) => {
                        let _ = write!(out, "\"{}\"", json_escape(x));
                    }
                }
            }
            out.push('}');
        }
        let kids = children.get(&s.id);
        if let Some(kids) = kids.filter(|k| !k.is_empty()) {
            out.push_str(",\"children\":[");
            for (n, &k) in kids.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                self.span_json(out, k, timing, children);
            }
            out.push(']');
        }
        out.push('}');
    }

    /// Prometheus text-format dump of the counter and histogram registries
    /// (`# HELP`/`# TYPE` headers, escaped label values). Metric values are
    /// deterministic facts of the work (never wall times), so this dump is
    /// byte-identical across runs and worker counts.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::HashSet<String> = Default::default();
        for (name, v) in &self.counters {
            let (base, labels) = split_labels(name);
            let prom = sanitize(base);
            if typed.insert(prom.clone()) {
                let _ = writeln!(
                    out,
                    "# HELP parmem_{prom} parmem counter {}",
                    escape_help(base)
                );
                let _ = writeln!(out, "# TYPE parmem_{prom} counter");
            }
            let _ = writeln!(out, "parmem_{prom}{} {v}", fmt_labels(&labels, None));
        }
        for (name, h) in &self.hists {
            let (base, labels) = split_labels(name);
            let prom = sanitize(base);
            if typed.insert(prom.clone()) {
                let _ = writeln!(
                    out,
                    "# HELP parmem_{prom} parmem histogram {}",
                    escape_help(base)
                );
                let _ = writeln!(out, "# TYPE parmem_{prom} histogram");
            }
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cum += b;
                let le = if i < BUCKET_BOUNDS.len() {
                    BUCKET_BOUNDS[i].to_string()
                } else {
                    "+Inf".to_string()
                };
                let _ = writeln!(
                    out,
                    "parmem_{prom}_bucket{} {cum}",
                    fmt_labels(&labels, Some(&le))
                );
            }
            let _ = writeln!(
                out,
                "parmem_{prom}_sum{} {}",
                fmt_labels(&labels, None),
                h.sum
            );
            let _ = writeln!(
                out,
                "parmem_{prom}_count{} {}",
                fmt_labels(&labels, None),
                h.count
            );
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn fmt_labels(labels: &[(&str, &str)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize(k), escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Prometheus label-value escaping: backslash, double quote, and newline.
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus HELP-text escaping: backslash and newline (quotes are legal
/// in help text and stay as-is).
pub(crate) fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, span};

    fn sample_session() -> Session {
        let _records = take(); // drop anything a prior test leaked
        set_enabled(true);
        {
            let mut job = span("job");
            job.attr("program", "FFT");
            job.attr("k", 4u64);
            {
                let mut st = span("stage.frontend");
                st.attr("words", 10u64);
                drop(span("ir.parse"));
            }
            drop(span("stage.assign"));
        }
        crate::metric::counter_add("assign.copies", 3);
        crate::metric::hist_record_n("sim.word_makespan[policy=ideal]", 1, 7);
        crate::metric::hist_record_n("sim.word_makespan[policy=ideal]", 3, 2);
        set_enabled(false);
        take()
    }

    #[test]
    fn tree_nests_and_sorts_deterministically() {
        let _guard = crate::test_lock();
        let s = sample_session();
        let tree = s.span_tree(false);
        let expected =
            "job{program=FFT, k=4}\n  stage.frontend{words=10}\n    ir.parse\n  stage.assign\n";
        assert_eq!(tree, expected);
        // Timing mode adds durations but keeps the same structure.
        let timed = s.span_tree(true);
        assert!(timed.contains("ir.parse  ["));
    }

    #[test]
    fn json_is_parseable_and_deterministic_mode_hides_clocks() {
        let _guard = crate::test_lock();
        let s = sample_session();
        let det = s.to_json(false);
        let v = crate::json::parse(&det).expect("valid json");
        assert!(det.find("start_ns").is_none());
        let spans = v.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("job"));
        let timed = s.to_json(true);
        assert!(crate::json::parse(&timed).is_ok());
        assert!(timed.contains("start_ns"));
    }

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let _guard = crate::test_lock();
        let s = sample_session();
        let m = s.metrics_text();
        assert!(m.contains("# TYPE parmem_assign_copies counter"), "{m}");
        assert!(m.contains("parmem_assign_copies 3"), "{m}");
        assert!(
            m.contains("parmem_sim_word_makespan_bucket{policy=\"ideal\",le=\"1\"} 7"),
            "{m}"
        );
        assert!(
            m.contains("parmem_sim_word_makespan_bucket{policy=\"ideal\",le=\"+Inf\"} 9"),
            "{m}"
        );
        assert!(
            m.contains("parmem_sim_word_makespan_sum{policy=\"ideal\"} 13"),
            "{m}"
        );
        assert!(
            m.contains("parmem_sim_word_makespan_count{policy=\"ideal\"} 9"),
            "{m}"
        );
    }

    #[test]
    fn metrics_text_conformance_help_type_and_escaping() {
        let _guard = crate::test_lock();
        let _drop = take();
        set_enabled(true);
        crate::metric::counter_add("weird.metric[path=a\\b\"c\nd]", 1);
        crate::metric::hist_record("weird.hist", 2);
        set_enabled(false);
        let m = take().metrics_text();
        // HELP precedes TYPE for every family, once each.
        let help_at = m.find("# HELP parmem_weird_metric ").expect("HELP line");
        let type_at = m
            .find("# TYPE parmem_weird_metric counter")
            .expect("TYPE line");
        assert!(help_at < type_at, "{m}");
        assert!(m.contains("# HELP parmem_weird_hist parmem histogram weird.hist"));
        assert!(m.contains("# TYPE parmem_weird_hist histogram"));
        // Label values escape backslash, quote, and newline.
        assert!(
            m.contains("parmem_weird_metric{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "{m}"
        );
        // Exactly one HELP+TYPE pair per family.
        assert_eq!(m.matches("# TYPE parmem_weird_hist").count(), 1);
        assert_eq!(m.matches("# HELP parmem_weird_hist").count(), 1);
    }

    #[test]
    fn snapshot_does_not_drain() {
        let _guard = crate::test_lock();
        let _drop = take();
        set_enabled(true);
        crate::metric::counter_add("snap.live", 4);
        drop(span("snap.span"));
        let live = crate::snapshot();
        assert_eq!(live.counters.get("snap.live"), Some(&4));
        assert!(live.spans.iter().any(|s| s.name == "snap.span"));
        // Still there after the snapshot; a second snapshot sees more work.
        crate::metric::counter_add("snap.live", 1);
        let live2 = crate::snapshot();
        assert_eq!(live2.counters.get("snap.live"), Some(&5));
        set_enabled(false);
        let drained = take();
        assert_eq!(drained.counters.get("snap.live"), Some(&5));
        assert!(take().is_empty(), "take() drained everything");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(417), "417ns");
        assert_eq!(fmt_duration(23_400), "23.4µs");
        assert_eq!(fmt_duration(1_234_000), "1.234ms");
        assert_eq!(fmt_duration(2_500_000_000), "2.50s");
    }
}
