//! The LIW list scheduler: packs each basic block's three-address
//! instructions into long instruction words.
//!
//! Per block, a dependence DAG is built over the instructions:
//!
//! | kind                        | latency (words) |
//! |-----------------------------|-----------------|
//! | scalar RAW (def → use)      | 1               |
//! | scalar WAW (def → def)      | 1               |
//! | scalar WAR (use → def)      | 0 (same word ok: reads at word start, writes at word end) |
//! | array RAW/WAW (per array)   | 1               |
//! | array WAR                   | 0               |
//! | print → print               | 1 (output order)|
//!
//! Cycle-driven greedy packing: at each cycle the ready operations (all
//! predecessors issued early enough) are taken in priority order — longest
//! latency-weighted path to a sink first, program order on ties — while the
//! word has a free functional unit and the memory-port budget (distinct
//! scalar reads + array accesses ≤ `mem_ports`) is respected.
//!
//! A branch's condition is fetched during the block's final word; if the
//! condition is computed in that word or its ports are full, an extra word
//! is appended (the branch then issues there).

use liw_ir::cfg;
use liw_ir::tac::BlockId;
use liw_ir::tac::{Instr, Operand, TacProgram, Terminator};
use liw_ir::webs::{compute_webs, Webs, TERM_IDX};

use crate::program::{
    LongWord, MachineSpec, SOperand, SchedBlock, SchedProgram, SchedTerm, SlotOp,
};

/// Ready-list priority used when several operations compete for a word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulePriority {
    /// Longest latency-weighted path to a sink first (standard list
    /// scheduling; default).
    #[default]
    CriticalPath,
    /// Plain program order — the naive baseline for the ablation benches.
    ProgramOrder,
}

/// Scheduling options beyond the machine shape.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOptions {
    /// Rename variables into per-definition data values (webs). `true` is
    /// the paper's model; `false` keeps one data value per variable — the
    /// ablation for the paper's §3 renaming remark.
    pub rename: bool,
    /// Ready-list priority.
    pub priority: SchedulePriority,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            rename: true,
            priority: SchedulePriority::CriticalPath,
        }
    }
}

/// Schedule a TAC program into long instruction words (with renaming).
pub fn schedule(p: &TacProgram, spec: MachineSpec) -> SchedProgram {
    schedule_with(p, spec, ScheduleOptions::default())
}

/// Schedule with explicit options.
pub fn schedule_with(p: &TacProgram, spec: MachineSpec, opts: ScheduleOptions) -> SchedProgram {
    assert!(spec.width >= 1 && spec.mem_ports >= 1 && spec.modules >= 1);
    let mut sp = parmem_obs::span("sched.schedule");
    sp.attr("blocks", p.blocks.len());
    sp.attr("rename", opts.rename);
    let webs = if opts.rename {
        compute_webs(p)
    } else {
        liw_ir::webs::one_web_per_var(p)
    };
    let (region_of, n_regions) = cfg::regions(p);

    let blocks: Vec<SchedBlock> = p
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, _)| schedule_block(p, &webs, BlockId(bi as u32), spec, opts.priority))
        .collect();

    SchedProgram {
        name: p.name.clone(),
        spec,
        blocks,
        entry: p.entry,
        n_values: webs.n_webs,
        value_var: webs.web_var.clone(),
        var_ty: p.vars.iter().map(|v| v.ty).collect(),
        entry_value: (0..p.vars.len())
            .map(|v| webs.of_entry(liw_ir::tac::VarId(v as u32)).unwrap_or(0))
            .collect(),
        arrays: p.arrays.clone(),
        region_of_block: region_of.iter().map(|r| r.0).collect(),
        n_regions,
    }
}

/// Convert one TAC operand at a use site to a scheduled operand.
fn soperand(webs: &Webs, block: BlockId, idx: u32, o: &Operand) -> SOperand {
    match o {
        Operand::Const(c) => SOperand::Const(*c),
        Operand::Var(v) => {
            SOperand::Scalar(webs.of_use(block, idx, *v).expect("every use has a web"))
        }
    }
}

fn to_slot_op(webs: &Webs, block: BlockId, idx: u32, inst: &Instr) -> SlotOp {
    match inst {
        Instr::Compute {
            dest: _,
            op,
            lhs,
            rhs,
        } => SlotOp::Compute {
            dest: webs.of_def(block, idx).expect("def web"),
            op: *op,
            lhs: soperand(webs, block, idx, lhs),
            rhs: rhs.as_ref().map(|r| soperand(webs, block, idx, r)),
        },
        Instr::Load {
            dest: _,
            arr,
            index,
        } => SlotOp::Load {
            dest: webs.of_def(block, idx).expect("def web"),
            arr: *arr,
            index: soperand(webs, block, idx, index),
        },
        Instr::Store { arr, index, value } => SlotOp::Store {
            arr: *arr,
            index: soperand(webs, block, idx, index),
            value: soperand(webs, block, idx, value),
        },
        Instr::Print { value } => SlotOp::Print {
            value: soperand(webs, block, idx, value),
        },
        Instr::Select {
            cond,
            if_true,
            if_false,
            dest: _,
        } => SlotOp::Select {
            cond: soperand(webs, block, idx, cond),
            if_true: soperand(webs, block, idx, if_true),
            if_false: soperand(webs, block, idx, if_false),
            dest: webs.of_def(block, idx).expect("def web"),
        },
    }
}

fn schedule_block(
    p: &TacProgram,
    webs: &Webs,
    block: BlockId,
    spec: MachineSpec,
    priority: SchedulePriority,
) -> SchedBlock {
    let b = p.block(block);
    let n = b.instrs.len();
    let ops: Vec<SlotOp> = b
        .instrs
        .iter()
        .enumerate()
        .map(|(i, inst)| to_slot_op(webs, block, i as u32, inst))
        .collect();

    // ---- dependence edges (succ lists with latencies) ----
    let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut preds_cnt = vec![0usize; n];
    {
        let mut edge = |from: usize, to: usize, lat: u32, succs: &mut Vec<Vec<(usize, u32)>>| {
            if from != to {
                succs[from].push((to, lat));
                preds_cnt[to] += 1;
            }
        };
        use std::collections::HashMap;
        let mut last_def: HashMap<u32, usize> = HashMap::new(); // web -> op idx
        let mut uses_since_def: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut last_array_store: HashMap<u32, usize> = HashMap::new();
        let mut loads_since_store: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut last_print: Option<usize> = None;

        for (i, op) in ops.iter().enumerate() {
            // Scalar RAW.
            for w in op.scalar_reads() {
                if let Some(&d) = last_def.get(&w) {
                    edge(d, i, 1, &mut succs);
                }
                uses_since_def.entry(w).or_default().push(i);
            }
            // Scalar WAW + WAR.
            if let Some(w) = op.writes() {
                if let Some(&d) = last_def.get(&w) {
                    edge(d, i, 1, &mut succs);
                }
                if let Some(users) = uses_since_def.get(&w) {
                    for &u in users {
                        edge(u, i, 0, &mut succs);
                    }
                }
                last_def.insert(w, i);
                uses_since_def.insert(w, Vec::new());
            }
            // Array deps.
            match op {
                SlotOp::Load { arr, .. } => {
                    if let Some(&s) = last_array_store.get(&arr.0) {
                        edge(s, i, 1, &mut succs);
                    }
                    loads_since_store.entry(arr.0).or_default().push(i);
                }
                SlotOp::Store { arr, .. } => {
                    if let Some(&s) = last_array_store.get(&arr.0) {
                        edge(s, i, 1, &mut succs);
                    }
                    if let Some(loads) = loads_since_store.get(&arr.0) {
                        for &l in loads {
                            edge(l, i, 0, &mut succs);
                        }
                    }
                    last_array_store.insert(arr.0, i);
                    loads_since_store.insert(arr.0, Vec::new());
                }
                _ => {}
            }
            // Print ordering.
            if matches!(op, SlotOp::Print { .. }) {
                if let Some(lp) = last_print {
                    edge(lp, i, 1, &mut succs);
                }
                last_print = Some(i);
            }
        }
    }

    // ---- priorities: latency-weighted height ----
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        for &(s, lat) in &succs[i] {
            height[i] = height[i].max(height[s] + lat + 1);
        }
    }

    // ---- cycle-driven list scheduling ----
    let mut word_of = vec![usize::MAX; n];
    let mut earliest = vec![0usize; n];
    let mut remaining_preds = preds_cnt;
    let mut scheduled = 0usize;
    let mut words: Vec<LongWord> = Vec::new();
    let mut cycle = 0usize;

    // Ready set: ops with no remaining predecessors.
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();

    while scheduled < n {
        // Candidates issueable this cycle, best priority first.
        let mut candidates: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&i| earliest[i] <= cycle)
            .collect();
        match priority {
            SchedulePriority::CriticalPath => {
                candidates.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i))
            }
            SchedulePriority::ProgramOrder => candidates.sort_unstable(),
        }

        let mut word = LongWord::default();
        let mut word_webs: Vec<u32> = Vec::new();
        let mut array_cnt = 0usize;
        let mut issued: Vec<usize> = Vec::new();

        for &i in &candidates {
            if word.ops.len() >= spec.width {
                break;
            }
            // Memory-port check: distinct scalar webs + array accesses.
            let mut new_webs = word_webs.clone();
            for w in ops[i].scalar_reads() {
                if !new_webs.contains(&w) {
                    new_webs.push(w);
                }
            }
            let new_arrays = array_cnt + ops[i].array_accesses();
            let fits = new_webs.len() + new_arrays <= spec.mem_ports;
            // A word must make progress: admit the first op even if it alone
            // exceeds a degenerate port budget.
            if fits || word.ops.is_empty() {
                word_webs = new_webs;
                array_cnt = new_arrays;
                word.ops.push(ops[i].clone());
                word_of[i] = cycle;
                issued.push(i);
            }
        }

        if !issued.is_empty() {
            for &i in &issued {
                ready.retain(|&r| r != i);
                scheduled += 1;
                for &(s, lat) in &succs[i] {
                    earliest[s] = earliest[s].max(cycle + lat as usize);
                    remaining_preds[s] -= 1;
                    if remaining_preds[s] == 0 {
                        ready.push(s);
                    }
                }
            }
            // Pad skipped cycles with nothing (cannot occur: see below).
            while words.len() < cycle {
                words.push(LongWord::default());
            }
            words.push(word);
        }
        cycle += 1;
        // Safety: with all latencies ≤ 1 the ready set refills every cycle,
        // so `cycle` can run at most one past the last issue.
        assert!(
            cycle <= 2 * n + 2,
            "scheduler failed to make progress in block {block:?}"
        );
    }

    // ---- terminator ----
    let term = match &b.term {
        Terminator::Jump(t) => SchedTerm::Jump(*t),
        Terminator::Halt => SchedTerm::Halt,
        Terminator::Branch {
            cond,
            then_to,
            else_to,
        } => SchedTerm::Branch {
            cond: soperand(webs, block, TERM_IDX, cond),
            then_to: *then_to,
            else_to: *else_to,
        },
    };

    let mut blk = SchedBlock { words, term };

    // The branch condition is fetched in the final word; make sure that is
    // legal (cond defined before the final word, and a port is free).
    if let SchedTerm::Branch { cond, .. } = &blk.term {
        if let SOperand::Scalar(w) = cond {
            let needs_new_word = if blk.words.is_empty() {
                true
            } else {
                let last = blk.words.len() - 1;
                let defined_in_last = blk.words[last].ops.iter().any(|o| o.writes() == Some(*w));
                let reads = blk.words[last].scalar_read_set();
                let ports_full = !reads.contains(w)
                    && reads.len() + blk.words[last].array_access_count() + 1 > spec.mem_ports;
                defined_in_last || ports_full
            };
            if needs_new_word {
                blk.words.push(LongWord::default());
            }
        } else if blk.words.is_empty() {
            // Constant condition still occupies a (trivial) fetch word so
            // that every block takes at least one cycle.
            blk.words.push(LongWord::default());
        }
    }
    if blk.words.is_empty() {
        // Every block costs at least one cycle on the RLIW.
        blk.words.push(LongWord::default());
    }

    blk
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_ir::compile;

    fn sched(src: &str, spec: MachineSpec) -> SchedProgram {
        schedule(&compile(src).unwrap(), spec)
    }

    /// Check the fundamental safety property: no op reads a data value in
    /// the same or an earlier word than the in-block op that defines it, and
    /// structural limits hold.
    fn assert_valid(sp: &SchedProgram) {
        for b in &sp.blocks {
            let mut def_word: std::collections::HashMap<u32, usize> = Default::default();
            for (wi, w) in b.words.iter().enumerate() {
                assert!(w.ops.len() <= sp.spec.width, "width exceeded");
                for op in &w.ops {
                    for r in op.scalar_reads() {
                        if let Some(&dw) = def_word.get(&r) {
                            assert!(dw < wi, "RAW violated: def in word {dw}, use in {wi}");
                        }
                    }
                }
                for op in &w.ops {
                    if let Some(d) = op.writes() {
                        def_word.insert(d, wi);
                    }
                }
            }
            if let Some(cw) = b.term.cond_web() {
                if let Some(&dw) = def_word.get(&cw) {
                    assert!(
                        dw < b.words.len() - 1
                            || b.words[b.words.len() - 1].ops.is_empty()
                            || dw < b.words.len() - 1,
                        "branch cond defined in its own fetch word"
                    );
                    assert!(
                        dw + 1 <= b.words.len() - 1 || dw < b.words.len() - 1,
                        "cond def word {dw} vs words {}",
                        b.words.len()
                    );
                }
            }
        }
    }

    #[test]
    fn independent_ops_pack_into_one_word() {
        let sp = sched(
            "program t; var a, b, c, d, e, f: int;
             begin
               d := a + b;
               e := b + c;
               f := a + c;
             end.",
            MachineSpec::with_modules(8),
        );
        assert_valid(&sp);
        let entry = &sp.blocks[sp.entry.index()];
        assert_eq!(entry.words.len(), 1, "three independent adds fit one word");
        assert_eq!(entry.words[0].ops.len(), 3);
    }

    #[test]
    fn dependent_chain_serializes() {
        let sp = sched(
            "program t; var a, b: int;
             begin
               b := a + 1;
               b := b * 2;
               b := b - 3;
             end.",
            MachineSpec::with_modules(8),
        );
        assert_valid(&sp);
        let entry = &sp.blocks[sp.entry.index()];
        assert_eq!(entry.words.len(), 3, "chain must serialize");
    }

    #[test]
    fn width_limit_is_respected() {
        let spec = MachineSpec {
            width: 2,
            mem_ports: 8,
            modules: 8,
        };
        let sp = sched(
            "program t; var a, b, c, d, e, f, g, h: int;
             begin
               e := a + 1; f := b + 1; g := c + 1; h := d + 1;
             end.",
            spec,
        );
        assert_valid(&sp);
        let entry = &sp.blocks[sp.entry.index()];
        assert_eq!(entry.words.len(), 2);
        assert!(entry.words.iter().all(|w| w.ops.len() <= 2));
    }

    #[test]
    fn mem_port_limit_is_respected() {
        let spec = MachineSpec {
            width: 8,
            mem_ports: 3,
            modules: 8,
        };
        let sp = sched(
            "program t; var a, b, c, d, e, f, x, y, z: int;
             begin
               x := a + b;
               y := c + d;
               z := e + f;
             end.",
            spec,
        );
        assert_valid(&sp);
        for b in &sp.blocks {
            for (i, w) in b.words.iter().enumerate() {
                let ports = b.word_operands(i).len() + w.array_access_count();
                assert!(ports <= 3, "word uses {ports} ports");
            }
        }
    }

    #[test]
    fn shared_operand_counts_once() {
        // Four ops all reading the same two values: one fetch each.
        let spec = MachineSpec {
            width: 8,
            mem_ports: 2,
            modules: 8,
        };
        let sp = sched(
            "program t; var a, b, w, x, y, z: int;
             begin
               w := a + b; x := a - b; y := a * b; z := b - a;
             end.",
            spec,
        );
        assert_valid(&sp);
        let entry = &sp.blocks[sp.entry.index()];
        assert_eq!(entry.words.len(), 1, "broadcast reads share one port");
    }

    #[test]
    fn array_raw_dependency_is_kept() {
        let sp = sched(
            "program t; var a: array[8] of int; x, i, j: int;
             begin
               a[i] := 5;
               x := a[j];
             end.",
            MachineSpec::with_modules(8),
        );
        assert_valid(&sp);
        let entry = &sp.blocks[sp.entry.index()];
        // Store and dependent load cannot share a word.
        assert!(entry.words.len() >= 2);
    }

    #[test]
    fn war_allows_same_word() {
        // y := x; x := 1 — read of old x and write of new x can share a word.
        let sp = sched(
            "program t; var x, y: int;
             begin
               y := x;
               x := 1;
             end.",
            MachineSpec::with_modules(8),
        );
        assert_valid(&sp);
        let entry = &sp.blocks[sp.entry.index()];
        assert_eq!(entry.words.len(), 1, "{:?}", entry.words);
    }

    #[test]
    fn branch_condition_not_in_defining_word() {
        let sp = sched(
            "program t; var i: int;
             begin
               i := 0;
               while i < 10 do i := i + 1;
             end.",
            MachineSpec::with_modules(8),
        );
        assert_valid(&sp);
        // The loop-head block computes `i < 10` then branches; the cond web
        // must not be defined in the final word.
        for b in &sp.blocks {
            if let Some(cw) = b.term.cond_web() {
                let last = b.words.len() - 1;
                let defined_in_last = b.words[last].ops.iter().any(|o| o.writes() == Some(cw));
                assert!(!defined_in_last);
            }
        }
    }

    #[test]
    fn every_block_has_at_least_one_word() {
        let sp = sched(
            "program t; var x: int;
             begin if x > 0 then x := 1; end.",
            MachineSpec::with_modules(8),
        );
        assert_valid(&sp);
        for b in &sp.blocks {
            assert!(!b.words.is_empty());
        }
    }

    #[test]
    fn no_rename_serializes_reused_temporaries() {
        // One temporary reused across independent chains: with renaming the
        // chains overlap; without it WAW/WAW dependences serialize them.
        let src = "program t; var a, b, c, d, t1, x, y: int;
            begin
              t1 := a * b;  x := t1 + c;
              t1 := c * d;  y := t1 + a;
            end.";
        let tac = compile(src).unwrap();
        let spec = MachineSpec::with_modules(8);
        let renamed = schedule_with(
            &tac,
            spec,
            ScheduleOptions {
                rename: true,
                ..Default::default()
            },
        );
        let flat = schedule_with(
            &tac,
            spec,
            ScheduleOptions {
                rename: false,
                ..Default::default()
            },
        );
        assert!(
            renamed.word_count() < flat.word_count(),
            "renamed {} vs flat {}",
            renamed.word_count(),
            flat.word_count()
        );
        assert_valid(&renamed);
        assert_valid(&flat);
    }

    #[test]
    fn critical_path_priority_beats_program_order() {
        // A long chain plus independent fillers: critical-path priority
        // starts the chain immediately; program order can waste early slots
        // on fillers. Both schedules must be valid, and CP never longer.
        let src = "program t; var a, b, c, d, e, f, g, h, x: int;
            begin
              e := a + 1; f := b + 1; g := c + 1; h := d + 1;
              x := a * b;
              x := x * c;
              x := x * d;
              x := x + e;
            end.";
        let tac = compile(src).unwrap();
        let spec = MachineSpec {
            width: 2,
            mem_ports: 8,
            modules: 8,
        };
        let cp = schedule_with(
            &tac,
            spec,
            ScheduleOptions {
                rename: true,
                priority: SchedulePriority::CriticalPath,
            },
        );
        let po = schedule_with(
            &tac,
            spec,
            ScheduleOptions {
                rename: true,
                priority: SchedulePriority::ProgramOrder,
            },
        );
        assert_valid(&cp);
        assert_valid(&po);
        assert!(
            cp.word_count() <= po.word_count(),
            "critical path {} vs program order {}",
            cp.word_count(),
            po.word_count()
        );
    }

    #[test]
    fn select_ops_schedule_with_three_reads() {
        // Build a TAC program containing a Select directly and check the
        // scheduler respects its 3-operand port footprint.
        use liw_ir::tac::{Block, Instr, Operand, TacProgram, Terminator, VarId, VarInfo};
        let var = |name: &str| VarInfo {
            name: name.into(),
            ty: liw_ir::Ty::Int,
            is_temp: false,
        };
        let p = TacProgram {
            name: "sel".into(),
            vars: vec![var("c"), var("a"), var("b"), var("x"), var("y"), var("z")],
            arrays: vec![],
            blocks: vec![Block {
                instrs: vec![
                    Instr::Select {
                        cond: Operand::Var(VarId(0)),
                        if_true: Operand::Var(VarId(1)),
                        if_false: Operand::Var(VarId(2)),
                        dest: VarId(3),
                    },
                    Instr::Select {
                        cond: Operand::Var(VarId(0)),
                        if_true: Operand::Var(VarId(2)),
                        if_false: Operand::Var(VarId(1)),
                        dest: VarId(4),
                    },
                    Instr::Compute {
                        dest: VarId(5),
                        op: liw_ir::tac::OpCode::Add,
                        lhs: Operand::Var(VarId(3)),
                        rhs: Some(Operand::Var(VarId(4))),
                    },
                ],
                term: Terminator::Halt,
            }],
            entry: liw_ir::BlockId(0),
        };
        // Both selects share their 3 source values → they fit one word on a
        // 3-port machine; the dependent add goes in the next word.
        let sp = schedule(
            &p,
            MachineSpec {
                width: 4,
                mem_ports: 3,
                modules: 4,
            },
        );
        assert_valid(&sp);
        let b0 = &sp.blocks[0];
        assert_eq!(b0.words.len(), 2, "{:?}", b0.words);
        assert_eq!(b0.words[0].ops.len(), 2);
        assert_eq!(b0.word_operands(0).len(), 3);
    }

    #[test]
    fn no_rename_has_one_value_per_variable() {
        let src = "program t; var x, y: int;
            begin x := 1; y := x; x := 2; y := x; end.";
        let tac = compile(src).unwrap();
        let sp = schedule_with(
            &tac,
            MachineSpec::with_modules(4),
            ScheduleOptions {
                rename: false,
                ..Default::default()
            },
        );
        assert_eq!(sp.n_values, tac.vars.len());
    }

    #[test]
    fn access_trace_has_one_entry_per_word() {
        let sp = sched(
            "program t; var a, b, c: int;
             begin c := a + b; c := c * 2; end.",
            MachineSpec::with_modules(4),
        );
        let t = sp.access_trace();
        assert_eq!(t.instructions.len(), sp.word_count());
        assert_eq!(t.modules, 4);
        assert_eq!(t.oversized_instructions(), 0);
    }

    #[test]
    fn regionized_trace_finds_loop_globals() {
        let sp = sched(
            "program t; var i, s, n: int;
             begin
               n := 100;
               s := 0;
               for i := 1 to n do s := s + i;
               print s;
             end.",
            MachineSpec::with_modules(4),
        );
        let rt = sp.regionized_trace();
        assert!(rt.regions.len() >= 2);
        // s and i straddle the loop boundary → several globals.
        assert!(!rt.globals.is_empty());
        // Flat trace equals access trace length.
        assert_eq!(
            rt.flat().instructions.len(),
            sp.access_trace().instructions.len()
        );
    }
}
