//! Concrete dataflow analyses over `liw-ir` TAC, all phrased as
//! [`Analysis`] instances of the shared fixpoint engine: liveness, reaching
//! definitions, definite initialization, constant propagation, and the
//! subscript (stride) analysis behind the static bank-conflict lints.
//!
//! The liveness and reaching-definitions results are pinned to the
//! historical `parmem-verify` solvers — that crate now delegates here
//! behind a source-compatible shim, and a differential test keeps the two
//! byte-identical over the whole workload corpus.

use std::collections::HashMap;

use liw_ir::cfg::{natural_loops, Cfg};
use liw_ir::tac::{eval_op, BlockId, Instr, OpCode, Operand, TacProgram, Value, VarId};
use liw_ir::webs::TERM_IDX;
use liw_ir::Ty;

use crate::bitset::BitSet;
use crate::engine::{solve, steps_bound, Analysis, Direction, FlowGraph};

// ---------------------------------------------------------------- liveness

/// Per-block liveness of scalar variables (backward may analysis).
pub struct Liveness {
    /// Variables live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Variables live on exit from each block.
    pub live_out: Vec<BitSet>,
}

struct LivenessAnalysis {
    use_b: Vec<BitSet>,
    def_b: Vec<BitSet>,
    n_vars: usize,
}

impl Analysis for LivenessAnalysis {
    type Domain = BitSet;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.n_vars)
    }
    fn init(&self) -> BitSet {
        BitSet::new(self.n_vars)
    }
    fn join(&self, into: &mut BitSet, from: &BitSet) {
        into.union_with(from);
    }
    fn transfer(&self, n: usize, live_out: &BitSet) -> BitSet {
        // live_in = use ∪ (live_out − def)
        let mut live_in = live_out.clone();
        live_in.subtract(&self.def_b[n]);
        live_in.union_with(&self.use_b[n]);
        live_in
    }
}

impl Liveness {
    /// Solve backward liveness over `p`. Unreachable blocks get empty sets.
    pub fn compute(p: &TacProgram) -> Liveness {
        let cfg = Cfg::build(p);
        let g = FlowGraph::from_cfg(&cfg);
        let n_vars = p.vars.len();
        let nb = p.blocks.len();

        let mut use_b = vec![BitSet::new(n_vars); nb];
        let mut def_b = vec![BitSet::new(n_vars); nb];
        for (bi, b) in p.blocks.iter().enumerate() {
            for inst in &b.instrs {
                for v in inst.reads() {
                    if !def_b[bi].contains(v.index()) {
                        use_b[bi].insert(v.index());
                    }
                }
                if let Some(v) = inst.writes() {
                    def_b[bi].insert(v.index());
                }
            }
            for v in b.term.reads() {
                if !def_b[bi].contains(v.index()) {
                    use_b[bi].insert(v.index());
                }
            }
        }

        let a = LivenessAnalysis {
            use_b,
            def_b,
            n_vars,
        };
        let sol = solve(&g, &a, steps_bound(nb, n_vars));
        debug_assert!(sol.converged, "liveness is monotone");
        Liveness {
            live_in: sol.output,
            live_out: sol.input,
        }
    }
}

// -------------------------------------------------------- reaching defs

/// A definition site: the implicit zero-initialization at program entry, or
/// an explicit write by the instruction at `(block, index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefSite {
    /// The implicit zero-initialization of `var` at program entry.
    Entry(VarId),
    /// The instruction at `(block, index)`.
    Instr(BlockId, u32),
}

/// Reaching definitions per use site (forward may analysis).
pub struct ReachingDefs {
    /// Definition sites in enumeration order: entry defs for every variable
    /// first, then instruction defs in `(block, instr)` order.
    pub sites: Vec<DefSite>,
    /// The variable each site defines (parallel to `sites`).
    pub site_var: Vec<VarId>,
    /// For each scalar use `(block, instr-or-TERM_IDX, var)`: every
    /// definition of `var` that reaches it, in site-enumeration order.
    pub at_use: HashMap<(BlockId, u32, VarId), Vec<DefSite>>,
}

struct ReachingAnalysis {
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
    n_sites: usize,
    entry_sites: BitSet,
}

impl Analysis for ReachingAnalysis {
    type Domain = BitSet;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> BitSet {
        self.entry_sites.clone()
    }
    fn init(&self) -> BitSet {
        BitSet::new(self.n_sites)
    }
    fn join(&self, into: &mut BitSet, from: &BitSet) {
        into.union_with(from);
    }
    fn transfer(&self, n: usize, input: &BitSet) -> BitSet {
        // out = (in − kill) ∪ gen
        let mut out = input.clone();
        out.subtract(&self.kill[n]);
        out.union_with(&self.gen[n]);
        out
    }
}

impl ReachingDefs {
    /// Solve the forward may-reach problem over `p` and collect, for every
    /// scalar use, the set of definitions reaching it.
    pub fn compute(p: &TacProgram) -> ReachingDefs {
        let cfg = Cfg::build(p);
        let g = FlowGraph::from_cfg(&cfg);
        let n_vars = p.vars.len();
        let nb = p.blocks.len();

        // Enumerate definition sites densely: entry defs first.
        let mut sites: Vec<DefSite> = (0..n_vars as u32)
            .map(|v| DefSite::Entry(VarId(v)))
            .collect();
        let mut site_var: Vec<VarId> = (0..n_vars as u32).map(VarId).collect();
        for (bi, b) in p.blocks.iter().enumerate() {
            for (ii, inst) in b.instrs.iter().enumerate() {
                if let Some(v) = inst.writes() {
                    sites.push(DefSite::Instr(BlockId(bi as u32), ii as u32));
                    site_var.push(v);
                }
            }
        }
        let n_sites = sites.len();
        let mut sites_of_var: Vec<Vec<usize>> = vec![Vec::new(); n_vars];
        for (s, &v) in site_var.iter().enumerate() {
            sites_of_var[v.index()].push(s);
        }
        let site_index: HashMap<DefSite, usize> =
            sites.iter().enumerate().map(|(i, &d)| (d, i)).collect();

        // Per-block gen (last def of each var) and kill (all other defs of
        // a var the block writes).
        let mut gen = vec![BitSet::new(n_sites); nb];
        let mut kill = vec![BitSet::new(n_sites); nb];
        for (bi, b) in p.blocks.iter().enumerate() {
            let mut last: HashMap<VarId, usize> = HashMap::new();
            for (ii, inst) in b.instrs.iter().enumerate() {
                if let Some(v) = inst.writes() {
                    last.insert(
                        v,
                        site_index[&DefSite::Instr(BlockId(bi as u32), ii as u32)],
                    );
                }
            }
            for (&v, &d) in &last {
                gen[bi].insert(d);
                for &other in &sites_of_var[v.index()] {
                    if other != d {
                        kill[bi].insert(other);
                    }
                }
            }
        }

        let mut entry_sites = BitSet::new(n_sites);
        for s in 0..n_vars {
            entry_sites.insert(s);
        }
        let a = ReachingAnalysis {
            gen,
            kill,
            n_sites,
            entry_sites,
        };
        let sol = solve(&g, &a, steps_bound(nb, n_sites));
        debug_assert!(sol.converged, "reaching defs is monotone");

        // Walk each reachable block collecting the defs reaching each use.
        let mut at_use = HashMap::new();
        for &b in &cfg.rpo {
            let bi = b.index();
            let mut local_last: HashMap<VarId, usize> = HashMap::new();
            let reaching = |v: VarId, local_last: &HashMap<VarId, usize>| -> Vec<DefSite> {
                if let Some(&d) = local_last.get(&v) {
                    return vec![sites[d]];
                }
                // Site-index order equals (entry-first, then block/instr)
                // order, so ascending bit iteration is already sorted.
                sol.input[bi]
                    .iter()
                    .filter(|&d| site_var[d] == v)
                    .map(|d| sites[d])
                    .collect()
            };
            for (ii, inst) in p.blocks[bi].instrs.iter().enumerate() {
                for v in inst.reads() {
                    at_use.insert((b, ii as u32, v), reaching(v, &local_last));
                }
                if let Some(v) = inst.writes() {
                    local_last.insert(v, site_index[&DefSite::Instr(b, ii as u32)]);
                }
            }
            for v in p.blocks[bi].term.reads() {
                at_use.insert((b, TERM_IDX, v), reaching(v, &local_last));
            }
        }

        ReachingDefs {
            sites,
            site_var,
            at_use,
        }
    }
}

// ------------------------------------------------------- definite init

/// Definitely-initialized variables (forward must analysis): a variable is
/// in the set only when it has been explicitly assigned on *every* path
/// from entry. Uses outside the set rely on MiniLang's implicit zero
/// initialization on at least one path.
pub struct DefiniteInit {
    /// Variables definitely assigned on entry to each block.
    pub assigned_in: Vec<BitSet>,
}

struct InitAnalysis {
    writes_b: Vec<BitSet>,
    n_vars: usize,
}

impl Analysis for InitAnalysis {
    type Domain = BitSet;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.n_vars)
    }
    fn init(&self) -> BitSet {
        // Must analysis: the join identity is ⊤ (everything assigned).
        BitSet::full(self.n_vars)
    }
    fn join(&self, into: &mut BitSet, from: &BitSet) {
        into.intersect_with(from);
    }
    fn transfer(&self, n: usize, input: &BitSet) -> BitSet {
        let mut out = input.clone();
        out.union_with(&self.writes_b[n]);
        out
    }
}

impl DefiniteInit {
    /// Solve definite initialization over `p`.
    pub fn compute(p: &TacProgram) -> DefiniteInit {
        let cfg = Cfg::build(p);
        let g = FlowGraph::from_cfg(&cfg);
        let n_vars = p.vars.len();
        let nb = p.blocks.len();

        let mut writes_b = vec![BitSet::new(n_vars); nb];
        for (bi, b) in p.blocks.iter().enumerate() {
            for inst in &b.instrs {
                if let Some(v) = inst.writes() {
                    writes_b[bi].insert(v.index());
                }
            }
        }
        let a = InitAnalysis { writes_b, n_vars };
        let sol = solve(&g, &a, steps_bound(nb, n_vars));
        debug_assert!(sol.converged, "definite init is monotone");
        DefiniteInit {
            assigned_in: sol.input,
        }
    }

    /// Every scalar use that may execute before any explicit assignment of
    /// its variable, sorted by `(block, instr, var)`. The instruction index
    /// is `TERM_IDX` for terminator (branch condition) uses.
    pub fn maybe_uninit_uses(p: &TacProgram) -> Vec<(BlockId, u32, VarId)> {
        let cfg = Cfg::build(p);
        let di = DefiniteInit::compute(p);
        let mut out = Vec::new();
        for &b in &cfg.rpo {
            let bi = b.index();
            let mut assigned = di.assigned_in[bi].clone();
            for (ii, inst) in p.blocks[bi].instrs.iter().enumerate() {
                for v in inst.reads() {
                    if !assigned.contains(v.index()) {
                        out.push((b, ii as u32, v));
                    }
                }
                if let Some(v) = inst.writes() {
                    assigned.insert(v.index());
                }
            }
            for v in p.blocks[bi].term.reads() {
                if !assigned.contains(v.index()) {
                    out.push((b, TERM_IDX, v));
                }
            }
        }
        out.sort_by_key(|&(b, i, v)| (b.0, i, v.0));
        out
    }
}

// --------------------------------------------------------- const prop

/// One variable's value in the constant-propagation lattice:
/// `Bottom < Known(v) < Top`.
#[derive(Clone, Debug, PartialEq)]
pub enum ConstVal {
    /// No path reaches this point yet (the join identity).
    Bottom,
    /// Every path computes exactly this value.
    Known(Value),
    /// Different paths disagree (or the value is data-dependent).
    Top,
}

impl ConstVal {
    /// `self ⊔= other`.
    pub fn join_with(&mut self, other: &ConstVal) {
        match (&*self, other) {
            (_, ConstVal::Bottom) => {}
            (ConstVal::Bottom, _) => *self = other.clone(),
            (ConstVal::Top, _) | (_, ConstVal::Top) => *self = ConstVal::Top,
            (ConstVal::Known(a), ConstVal::Known(b)) => {
                if a != b {
                    *self = ConstVal::Top;
                }
            }
        }
    }
}

/// Sparse conditional-free constant propagation (forward analysis over the
/// pointwise [`ConstVal`] lattice). The boundary seeds every variable with
/// its implicit zero initializer, matching the interpreter's semantics.
pub struct ConstProp {
    /// The lattice environment on entry to each block (unreachable blocks
    /// stay all-`Bottom`).
    pub entry_env: Vec<Vec<ConstVal>>,
}

struct ConstAnalysis<'p> {
    p: &'p TacProgram,
}

fn zero_value(ty: Ty) -> Value {
    match ty {
        Ty::Int => Value::Int(0),
        Ty::Real => Value::Real(0.0),
        Ty::Bool => Value::Bool(false),
    }
}

impl Analysis for ConstAnalysis<'_> {
    type Domain = Vec<ConstVal>;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> Vec<ConstVal> {
        self.p
            .vars
            .iter()
            .map(|v| ConstVal::Known(zero_value(v.ty)))
            .collect()
    }
    fn init(&self) -> Vec<ConstVal> {
        vec![ConstVal::Bottom; self.p.vars.len()]
    }
    fn join(&self, into: &mut Vec<ConstVal>, from: &Vec<ConstVal>) {
        for (a, b) in into.iter_mut().zip(from) {
            a.join_with(b);
        }
    }
    fn transfer(&self, n: usize, input: &Vec<ConstVal>) -> Vec<ConstVal> {
        let mut env = input.clone();
        for inst in &self.p.blocks[n].instrs {
            ConstProp::apply_instr(&mut env, inst);
        }
        env
    }
}

impl ConstProp {
    /// Solve constant propagation over `p`.
    pub fn compute(p: &TacProgram) -> ConstProp {
        let cfg = Cfg::build(p);
        let g = FlowGraph::from_cfg(&cfg);
        let a = ConstAnalysis { p };
        // Each variable can move Bottom → Known → Top: height 2·n_vars.
        let sol = solve(&g, &a, steps_bound(p.blocks.len(), 2 * p.vars.len()));
        debug_assert!(sol.converged, "const prop is monotone");
        ConstProp {
            entry_env: sol.input,
        }
    }

    /// The lattice value of an operand under `env`.
    pub fn eval_operand(env: &[ConstVal], o: &Operand) -> ConstVal {
        match o {
            Operand::Const(c) => ConstVal::Known(*c),
            Operand::Var(v) => env[v.index()].clone(),
        }
    }

    /// Advance `env` across one instruction (the per-instruction transfer;
    /// lint passes replay this to query facts *between* instructions).
    pub fn apply_instr(env: &mut [ConstVal], inst: &Instr) {
        match inst {
            Instr::Compute { dest, op, lhs, rhs } => {
                let a = ConstProp::eval_operand(env, lhs);
                let b = rhs.as_ref().map(|r| ConstProp::eval_operand(env, r));
                env[dest.index()] = match (a, b) {
                    (ConstVal::Bottom, _) | (_, Some(ConstVal::Bottom)) => ConstVal::Bottom,
                    (ConstVal::Top, _) | (_, Some(ConstVal::Top)) => ConstVal::Top,
                    (ConstVal::Known(x), None) => ConstVal::Known(eval_op(*op, x, None)),
                    (ConstVal::Known(x), Some(ConstVal::Known(y))) => {
                        ConstVal::Known(eval_op(*op, x, Some(y)))
                    }
                };
            }
            Instr::Load { dest, .. } => env[dest.index()] = ConstVal::Top,
            Instr::Select {
                cond,
                if_true,
                if_false,
                dest,
            } => {
                let c = ConstProp::eval_operand(env, cond);
                let t = ConstProp::eval_operand(env, if_true);
                let f = ConstProp::eval_operand(env, if_false);
                env[dest.index()] = match c {
                    ConstVal::Bottom => ConstVal::Bottom,
                    ConstVal::Known(v) => {
                        if v.as_bool() {
                            t
                        } else {
                            f
                        }
                    }
                    ConstVal::Top => {
                        let mut j = t;
                        j.join_with(&f);
                        j
                    }
                };
            }
            Instr::Store { .. } | Instr::Print { .. } => {}
        }
    }
}

// ------------------------------------------------------ subscripts

/// The compile-time shape of one array subscript.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubscriptClass {
    /// The subscript is this constant every time the access executes.
    Fixed(i64),
    /// Inside its innermost loop the subscript advances by this (non-zero)
    /// stride per iteration.
    Strided(i64),
    /// The subscript does not change across iterations of the innermost
    /// enclosing loop.
    Invariant,
    /// No compile-time shape established.
    Unknown,
}

/// Constant/stride classification of every array subscript, from constant
/// propagation plus an induction-variable analysis over the natural loops.
///
/// The stride classification is a *may* fact used for advisory lints: an
/// access tagged `Strided(s)` advances by `s` on the iterations that
/// execute it, which is what the interleaved-layout hazard check needs.
pub struct SubscriptAnalysis {
    /// Class per array-access instruction `(block, instr)`.
    pub classes: HashMap<(BlockId, u32), SubscriptClass>,
}

impl SubscriptAnalysis {
    /// Classify every `Load`/`Store` subscript in `p` (reachable blocks
    /// only).
    pub fn compute(p: &TacProgram) -> SubscriptAnalysis {
        let cfg = Cfg::build(p);
        let idom = cfg.dominators();
        let loops = natural_loops(&cfg);
        let nb = p.blocks.len();

        // Innermost (smallest) containing loop per block.
        let mut inner: Vec<Option<usize>> = vec![None; nb];
        for (bi, slot) in inner.iter_mut().enumerate() {
            let mut best: Option<usize> = None;
            for (li, l) in loops.iter().enumerate() {
                if l.blocks.contains(&BlockId(bi as u32))
                    && best.is_none_or(|cur: usize| loops[cur].blocks.len() > l.blocks.len())
                {
                    best = Some(li);
                }
            }
            *slot = best;
        }

        // Basic induction variables per loop: exactly one in-loop def of
        // the form `v := v ± c`, whose block dominates every latch (so the
        // increment runs once per iteration).
        let mut ivs: Vec<HashMap<VarId, i64>> = vec![HashMap::new(); loops.len()];
        for (li, l) in loops.iter().enumerate() {
            let mut defs: HashMap<VarId, Vec<(BlockId, usize)>> = HashMap::new();
            for &b in &l.blocks {
                for (ii, inst) in p.blocks[b.index()].instrs.iter().enumerate() {
                    if let Some(v) = inst.writes() {
                        defs.entry(v).or_default().push((b, ii));
                    }
                }
            }
            let latches: Vec<BlockId> = cfg.preds[l.header.index()]
                .iter()
                .filter(|b| l.blocks.contains(b))
                .copied()
                .collect();
            for (&v, sites) in &defs {
                let [(db, di)] = sites.as_slice() else {
                    continue;
                };
                if !latches.iter().all(|&lt| cfg.dominates(&idom, *db, lt)) {
                    continue;
                }
                if let Instr::Compute { dest, op, lhs, rhs } = &p.blocks[db.index()].instrs[*di] {
                    debug_assert_eq!(*dest, v);
                    let stride = match (op, lhs, rhs) {
                        (OpCode::Add, Operand::Var(x), Some(Operand::Const(Value::Int(c))))
                            if *x == v =>
                        {
                            Some(*c)
                        }
                        (OpCode::Add, Operand::Const(Value::Int(c)), Some(Operand::Var(x)))
                            if *x == v =>
                        {
                            Some(*c)
                        }
                        (OpCode::Sub, Operand::Var(x), Some(Operand::Const(Value::Int(c))))
                            if *x == v =>
                        {
                            Some(-*c)
                        }
                        _ => None,
                    };
                    if let Some(s) = stride {
                        if s != 0 {
                            ivs[li].insert(v, s);
                        }
                    }
                }
            }
        }

        let cp = ConstProp::compute(p);
        let rd = ReachingDefs::compute(p);

        let mut classes = HashMap::new();
        for &b in &cfg.rpo {
            let bi = b.index();
            let mut env = cp.entry_env[bi].clone();
            for (ii, inst) in p.blocks[bi].instrs.iter().enumerate() {
                if let Instr::Load { index, .. } | Instr::Store { index, .. } = inst {
                    let class =
                        classify(p, index, &env, b, ii as u32, inner[bi], &loops, &ivs, &rd);
                    classes.insert((b, ii as u32), class);
                }
                ConstProp::apply_instr(&mut env, inst);
            }
        }
        SubscriptAnalysis { classes }
    }
}

/// Classify one subscript operand at `(b, ii)` under environment `env`.
#[allow(clippy::too_many_arguments)]
fn classify(
    p: &TacProgram,
    index: &Operand,
    env: &[ConstVal],
    b: BlockId,
    ii: u32,
    inner: Option<usize>,
    loops: &[liw_ir::cfg::NaturalLoop],
    ivs: &[HashMap<VarId, i64>],
    rd: &ReachingDefs,
) -> SubscriptClass {
    let x = match index {
        Operand::Const(c) => return SubscriptClass::Fixed(c.as_int()),
        Operand::Var(x) => *x,
    };
    if let ConstVal::Known(v) = &env[x.index()] {
        return SubscriptClass::Fixed(v.as_int());
    }
    let Some(li) = inner else {
        return SubscriptClass::Unknown;
    };
    if let Some(&s) = ivs[li].get(&x) {
        return SubscriptClass::Strided(s);
    }
    let Some(defs) = rd.at_use.get(&(b, ii, x)) else {
        return SubscriptClass::Unknown;
    };
    let in_loop = |d: &DefSite| matches!(d, DefSite::Instr(db, _) if loops[li].blocks.contains(db));
    if defs.iter().all(|d| !in_loop(d)) {
        return SubscriptClass::Invariant;
    }
    // Single reaching def inside the loop: recognize one derivation step
    // off a basic induction variable.
    if let [DefSite::Instr(db, di)] = defs.as_slice() {
        if in_loop(&defs[0]) {
            if let Instr::Compute { op, lhs, rhs, .. } = &p.blocks[db.index()].instrs[*di as usize]
            {
                let iv_stride = |o: &Operand| o.var().and_then(|v| ivs[li].get(&v).copied());
                let derived = match (op, lhs, rhs) {
                    (OpCode::Mul, l, Some(Operand::Const(Value::Int(c)))) => {
                        iv_stride(l).map(|s| s * c)
                    }
                    (OpCode::Mul, Operand::Const(Value::Int(c)), Some(r)) => {
                        iv_stride(r).map(|s| c * s)
                    }
                    (OpCode::Add, l, Some(Operand::Const(Value::Int(_)))) => iv_stride(l),
                    (OpCode::Add, Operand::Const(Value::Int(_)), Some(r)) => iv_stride(r),
                    (OpCode::Sub, l, Some(Operand::Const(Value::Int(_)))) => iv_stride(l),
                    (OpCode::Copy, l, None) => iv_stride(l),
                    _ => None,
                };
                if let Some(s) = derived {
                    if s != 0 {
                        return SubscriptClass::Strided(s);
                    }
                }
            }
        }
    }
    SubscriptClass::Unknown
}

/// Per-array placement profiles for the layout planner: the IR's static
/// access metadata enriched with each array's *dominant stride* — the most
/// common `Strided(s)` class among its subscripts (ties resolve to the
/// smaller |s|, then the smaller s). Accesses classified `Fixed`/`Invariant`
/// count as stride 0 (they revisit one element, the worst case for
/// interleaving); arrays whose subscripts are all `Unknown` get `None`.
///
/// This is the bridge from `parmem-lint`'s induction-variable analysis to
/// `parmem_core::layout::plan` — e.g. `ArrayPolicy::Auto` interleaves only
/// when the dominant stride is coprime to the module count.
pub fn array_stride_profiles(p: &TacProgram) -> Vec<parmem_core::layout::ArrayProfile> {
    let sa = SubscriptAnalysis::compute(p);
    let meta = p.array_access_meta();
    let mut strides: Vec<HashMap<i64, u64>> = vec![HashMap::new(); meta.len()];
    for site in p.array_access_sites() {
        let s = match sa.classes.get(&(site.block, site.instr as u32)) {
            Some(SubscriptClass::Strided(s)) => Some(*s),
            Some(SubscriptClass::Fixed(_)) | Some(SubscriptClass::Invariant) => Some(0),
            Some(SubscriptClass::Unknown) | None => None,
        };
        if let Some(s) = s {
            *strides[site.arr.index()].entry(s).or_insert(0) += 1;
        }
    }
    meta.into_iter()
        .zip(strides)
        .map(|(m, hist)| parmem_core::layout::ArrayProfile {
            name: m.name,
            len: m.len,
            loads: m.loads,
            stores: m.stores,
            dominant_stride: hist
                .into_iter()
                .max_by(|(sa, ca), (sb, cb)| {
                    ca.cmp(cb)
                        .then(sb.unsigned_abs().cmp(&sa.unsigned_abs()))
                        .then(sb.cmp(sa))
                })
                .map(|(s, _)| s),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tac(src: &str) -> TacProgram {
        liw_ir::compile(src).unwrap()
    }

    const BRANCHY: &str = "program t; var x, c, y: int;
        begin
          c := 3;
          if c > 0 then x := 1; else x := 2;
          y := x;
          while y < 10 do y := y + x;
          print y;
        end.";

    fn var(p: &TacProgram, name: &str) -> VarId {
        VarId(p.vars.iter().position(|v| v.name == name).unwrap() as u32)
    }

    #[test]
    fn liveness_sees_loop_carried_values() {
        let p = tac(BRANCHY);
        let lv = Liveness::compute(&p);
        let x = var(&p, "x");
        assert!(lv.live_out.iter().any(|s| s.contains(x.index())));
        assert_eq!(lv.live_in.len(), p.blocks.len());
    }

    #[test]
    fn reaching_defs_cover_merges() {
        let p = tac(BRANCHY);
        let rd = ReachingDefs::compute(&p);
        let multi = rd
            .at_use
            .iter()
            .any(|((_, _, v), defs)| p.var(*v).name == "x" && defs.len() == 2);
        assert!(multi, "join use of x should see both defs");
    }

    #[test]
    fn definite_init_flags_zero_init_reads() {
        let p = tac("program t; var s, i: int;
            begin for i := 1 to 3 do s := s + i; print s; end.");
        let uses = DefiniteInit::maybe_uninit_uses(&p);
        let s = var(&p, "s");
        assert!(uses.iter().any(|&(_, _, v)| v == s), "{uses:?}");
        // `i` is explicitly initialized by the for-loop header.
        let i = var(&p, "i");
        assert!(!uses.iter().any(|&(_, _, v)| v == i), "{uses:?}");
    }

    #[test]
    fn definite_init_clean_when_initialized() {
        let p = tac("program t; var s: int; begin s := 1; print s; end.");
        assert!(DefiniteInit::maybe_uninit_uses(&p).is_empty());
    }

    #[test]
    fn const_prop_folds_straight_line() {
        let p = tac("program t; var a, b: int; begin a := 2; b := a + 3; print b; end.");
        let cp = ConstProp::compute(&p);
        // Walk the entry block and confirm `b` folds to 5 at the print.
        let bi = p.entry.index();
        let mut env = cp.entry_env[bi].clone();
        let mut seen = false;
        for inst in &p.blocks[bi].instrs {
            if let Instr::Print { value } = inst {
                let b = var(&p, "b");
                match value {
                    Operand::Var(v) if *v == b => {
                        assert_eq!(env[b.index()], ConstVal::Known(Value::Int(5)));
                        seen = true;
                    }
                    _ => {
                        // Copy propagation upstream may print a temp; check it
                        // folded too.
                        assert_eq!(
                            ConstProp::eval_operand(&env, value),
                            ConstVal::Known(Value::Int(5))
                        );
                        seen = true;
                    }
                }
            }
            ConstProp::apply_instr(&mut env, inst);
        }
        assert!(seen);
    }

    #[test]
    fn const_prop_tops_at_joins() {
        let p = tac(BRANCHY);
        let cp = ConstProp::compute(&p);
        let x = var(&p, "x");
        // Some block sees x as Top (1 on one path, 2 on the other).
        assert!(cp
            .entry_env
            .iter()
            .any(|env| env[x.index()] == ConstVal::Top));
    }

    #[test]
    fn subscript_unit_stride_detected() {
        let p = tac("program t; var a: array[64] of int; i: int;
            begin for i := 0 to 63 do a[i] := i; end.");
        let sa = SubscriptAnalysis::compute(&p);
        assert!(
            sa.classes
                .values()
                .any(|c| *c == SubscriptClass::Strided(1)),
            "{:?}",
            sa.classes
        );
    }

    #[test]
    fn subscript_derived_stride_detected() {
        let p = tac("program t; var a: array[64] of int; i: int;
            begin for i := 0 to 31 do a[i * 2] := i; end.");
        let sa = SubscriptAnalysis::compute(&p);
        assert!(
            sa.classes
                .values()
                .any(|c| *c == SubscriptClass::Strided(2)),
            "{:?}",
            sa.classes
        );
    }

    #[test]
    fn subscript_invariant_detected() {
        let p = tac("program t; var a: array[8] of int; i, j, s: int;
            begin
              j := 3;
              for i := 0 to 7 do s := s + a[j + i - i];
            end.");
        // `j + i - i` defeats our one-step derivation, but a direct `a[j]`
        // with j loop-invariant must classify as Invariant or Fixed.
        let p2 = tac("program t; var a: array[8] of int; i, j, s: int;
            begin
              s := 0;
              for i := 0 to 20 do begin
                j := s + 1;
                s := s + a[j];
              end;
            end.");
        let sa2 = SubscriptAnalysis::compute(&p2);
        // a[j]: j's reaching def is in-loop and data-dependent → Unknown.
        assert!(sa2
            .classes
            .values()
            .any(|c| matches!(c, SubscriptClass::Unknown | SubscriptClass::Invariant)));
        let _ = SubscriptAnalysis::compute(&p);
    }

    #[test]
    fn subscript_fixed_from_const_prop() {
        let p = tac("program t; var a: array[8] of int; i: int;
            begin i := 5; a[i] := 1; end.");
        let sa = SubscriptAnalysis::compute(&p);
        assert!(
            sa.classes.values().any(|c| *c == SubscriptClass::Fixed(5)),
            "{:?}",
            sa.classes
        );
    }

    #[test]
    fn stride_profiles_report_dominant_stride() {
        let p = tac(
            "program t; var a: array[64] of int; b: array[16] of int; i: int;
            begin
              for i := 0 to 31 do a[i * 2] := i;
              for i := 0 to 15 do b[i] := i;
            end.",
        );
        let profiles = array_stride_profiles(&p);
        assert_eq!(profiles.len(), 2);
        let a = profiles.iter().find(|p| p.name == "a").unwrap();
        assert_eq!(a.dominant_stride, Some(2));
        assert_eq!((a.len, a.stores), (64, 1));
        let b = profiles.iter().find(|p| p.name == "b").unwrap();
        assert_eq!(b.dominant_stride, Some(1));
    }

    #[test]
    fn stride_profiles_handle_unknown_subscripts() {
        let p = tac("program t; var a: array[8] of int; i, j, s: int;
            begin
              s := 0;
              for i := 0 to 20 do begin
                j := s + 1;
                s := s + a[j];
              end;
            end.");
        let profiles = array_stride_profiles(&p);
        assert_eq!(profiles.len(), 1);
        // Data-dependent subscript: no stride claim.
        assert_eq!(profiles[0].dominant_stride, None);
    }
}
