//! Minimal std-only HTTP stack — one server implementation shared by the
//! `--metrics-addr` live-telemetry endpoint and the `parmem serve` daemon
//! (`parmem-serve` builds its router on [`serve_http`], so there is exactly
//! one accept loop / connection handler / response writer in the tree).
//!
//! [`serve_http`] binds a `TcpListener` and answers each connection on its
//! own thread (thread-per-connection; requests are short-lived, so no
//! pooling), handing every parsed [`Request`] to a caller-supplied
//! [`Handler`] that returns a [`Response`].
//!
//! Connection handling is hardened against stalled and malicious peers:
//!
//! - a **per-read socket timeout** plus an **overall request deadline**
//!   ([`HttpOptions::read_timeout`] / [`HttpOptions::io_deadline`]), so a
//!   client that connects and never sends a request — or drip-feeds one
//!   byte per read to dodge the per-read timeout — cannot pin a handler
//!   thread past the deadline;
//! - every response carries `Connection: close` and the stream is closed
//!   after one exchange (no keep-alive state to leak);
//! - `POST` bodies are read only up to [`HttpOptions::max_body`] bytes
//!   (413 beyond that) and require a `Content-Length`.
//!
//! The legacy metrics entry point [`serve`] wraps [`serve_http`] with the
//! standard metrics routes (`GET /metrics` Prometheus text from live
//! snapshots, `/healthz`, `/`), backed by a shared [`MetricsState`] that
//! the `parmem serve` daemon also mounts so both servers expose identical
//! scrape/uptime families.
//!
//! Binding port 0 picks a free port; [`HttpServer::local_addr`] reports
//! the actual one (the CLI prints it to stderr so scripts can scrape).
//! Shutdown is cooperative: [`HttpServer::shutdown`] sets a stop flag and
//! self-connects to unblock `accept`.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parsed HTTP request.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (query string included verbatim, if any).
    pub path: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The (first) value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response: status, content type, extra headers, body.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (the reason phrase is derived).
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Extra headers (e.g. `ETag`, `Retry-After`); `Connection: close` and
    /// `Content-Length` are always added by the writer.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Add a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }
}

/// The standard reason phrase for the status codes this stack emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// A request handler: pure function from request to response, shared by
/// every connection thread.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Tuning knobs for [`serve_http`].
#[derive(Clone, Debug)]
pub struct HttpOptions {
    /// Stop after accepting this many connections (tests and the
    /// `--max-requests` flag; `None` serves until shutdown).
    pub max_requests: Option<u64>,
    /// Per-`read(2)` socket timeout.
    pub read_timeout: Duration,
    /// Overall deadline for reading one request (head + body). A stalled
    /// or drip-feeding client is answered 408 and dropped at this point,
    /// so it can never pin a handler thread (and thus delay shutdown
    /// joins) indefinitely.
    pub io_deadline: Duration,
    /// Largest accepted request body; longer ones are answered 413.
    pub max_body: usize,
}

impl Default for HttpOptions {
    fn default() -> HttpOptions {
        HttpOptions {
            max_requests: None,
            read_timeout: Duration::from_secs(2),
            io_deadline: Duration::from_secs(5),
            max_body: 1 << 20,
        }
    }
}

/// Handle to a running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 = pick a free port) and
/// serve `handler` until [`HttpServer::shutdown`] or the `max_requests`
/// budget is exhausted.
pub fn serve_http(addr: &str, opts: HttpOptions, handler: Handler) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("parmem-http".to_string())
        .spawn(move || {
            let mut accepted = 0u64;
            let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            loop {
                if let Some(max) = opts.max_requests {
                    if accepted >= max {
                        break;
                    }
                }
                let Ok((conn, _)) = listener.accept() else {
                    break;
                };
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                accepted += 1;
                let handler = Arc::clone(&handler);
                let opts = opts.clone();
                if let Ok(h) = std::thread::Builder::new()
                    .name("parmem-http-conn".to_string())
                    .spawn(move || handle_connection(conn, &opts, &handler))
                {
                    workers.push(h);
                }
                workers.retain(|h| !h.is_finished());
            }
            // Let in-flight requests finish before the acceptor reports done
            // (`join()`/`shutdown()` — and thus process exit — wait on us).
            // The io_deadline bounds how long a stalled peer can hold this.
            for h in workers {
                let _ = h.join();
            }
        })?;
    Ok(HttpServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

impl HttpServer {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the acceptor has exited on its own (`max_requests` reached
    /// or bind torn down).
    pub fn is_finished(&self) -> bool {
        self.handle
            .as_ref()
            .map(|h| h.is_finished())
            .unwrap_or(true)
    }

    /// Stop accepting, then join the acceptor (which joins every in-flight
    /// connection thread first).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock accept(); the acceptor sees the stop flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Wait for the acceptor to exit on its own (used with
    /// `max_requests`).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Read one request off `conn` under the deadline regime, dispatch it, and
/// write the response. Every exit path closes the stream.
fn handle_connection(mut conn: TcpStream, opts: &HttpOptions, handler: &Handler) {
    let started = Instant::now();
    let _ = conn.set_write_timeout(Some(opts.read_timeout));
    let response = match read_request(&mut conn, opts, started) {
        Ok(req) => {
            // `Expect: 100-continue` clients (curl on larger bodies) have
            // already been told to proceed inside read_request.
            handler(&req)
        }
        Err(status) => Response::text(status, format!("{}\n", reason(status))),
    };
    write_response(&mut conn, &response);
}

/// Read and parse one request. `Err(status)` is the HTTP status to answer
/// with (400 parse error, 408 deadline, 413 oversized body).
fn read_request(
    conn: &mut TcpStream,
    opts: &HttpOptions,
    started: Instant,
) -> Result<Request, u16> {
    let mut buf = [0u8; 4096];
    let mut raw = Vec::new();
    // Head: read until the blank line, under both timeout regimes.
    let head_end = loop {
        if let Some(pos) = find_head_end(&raw) {
            break pos;
        }
        if raw.len() > 32 * 1024 {
            return Err(400);
        }
        let remaining = opts
            .io_deadline
            .checked_sub(started.elapsed())
            .ok_or(408u16)?;
        let _ = conn.set_read_timeout(Some(
            remaining
                .min(opts.read_timeout)
                .max(Duration::from_millis(1)),
        ));
        match conn.read(&mut buf) {
            Ok(0) => return Err(400),
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            // A per-read timeout only fails the request once the overall
            // deadline has passed; otherwise keep waiting for slow peers.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if started.elapsed() >= opts.io_deadline {
                    return Err(408);
                }
            }
            Err(_) => return Err(400),
        }
    };

    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(400);
    }
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut req = Request {
        method,
        path,
        headers,
        body: raw[head_end + 4..].to_vec(),
    };

    let content_length: usize = req
        .header("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if content_length > opts.max_body {
        return Err(413);
    }
    if req
        .header("expect")
        .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
        && req.body.len() < content_length
    {
        let _ = conn.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }
    // Body: whatever followed the head plus the remaining declared bytes.
    while req.body.len() < content_length {
        let remaining = opts
            .io_deadline
            .checked_sub(started.elapsed())
            .ok_or(408u16)?;
        let _ = conn.set_read_timeout(Some(
            remaining
                .min(opts.read_timeout)
                .max(Duration::from_millis(1)),
        ));
        match conn.read(&mut buf) {
            Ok(0) => return Err(400),
            Ok(n) => req.body.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if started.elapsed() >= opts.io_deadline {
                    return Err(408);
                }
            }
            Err(_) => return Err(400),
        }
    }
    req.body.truncate(content_length);
    Ok(req)
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialize `response` with `Connection: close` and an exact
/// `Content-Length`, then flush.
fn write_response(conn: &mut TcpStream, response: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let _ = conn.write_all(head.as_bytes());
    let _ = conn.write_all(&response.body);
    let _ = conn.flush();
}

// ---------------------------------------------------------------------------
// The metrics routes, shared by the legacy `serve` entry point and the
// `parmem serve` daemon.
// ---------------------------------------------------------------------------

/// Options for [`serve`].
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Stop after accepting this many connections (the `serve-metrics`
    /// stub and tests use this; `None` serves until shutdown).
    pub max_requests: Option<u64>,
}

/// Back-compat alias: the metrics endpoint handle is a plain
/// [`HttpServer`].
pub type MetricsServer = HttpServer;

/// Scrape bookkeeping behind `GET /metrics`: scrape count and endpoint
/// uptime, rendered after the live snapshot families.
pub struct MetricsState {
    scrapes: AtomicU64,
    started: Instant,
}

impl Default for MetricsState {
    fn default() -> MetricsState {
        MetricsState::new()
    }
}

impl MetricsState {
    /// Fresh state; the uptime gauge counts from here.
    pub fn new() -> MetricsState {
        MetricsState {
            scrapes: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Scrapes served so far (`parmem_metrics_scrapes_total`).
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Render one `/metrics` exposition: the live snapshot families plus
    /// the scrape counter and uptime gauge. Bumps the scrape counter.
    pub fn render(&self) -> String {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        let mut out = live_metrics_text();
        gauge(
            &mut out,
            "parmem_metrics_scrapes_total",
            "scrapes served by this endpoint",
            self.scrapes.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "parmem_uptime_seconds",
            "seconds since the metrics endpoint started",
            self.started.elapsed().as_secs(),
        );
        out
    }

    /// Route the three standard metrics paths (`GET /metrics`, `/healthz`,
    /// `/`); `None` means the path is not a metrics route.
    pub fn route(&self, req: &Request) -> Option<Response> {
        if req.method != "GET" {
            return None;
        }
        match req.path.as_str() {
            "/metrics" => Some(Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8".to_string(),
                headers: Vec::new(),
                body: self.render().into_bytes(),
            }),
            "/healthz" => Some(Response::text(200, "ok\n")),
            "/" => Some(Response::text(
                200,
                "parmem metrics endpoint; scrape /metrics\n",
            )),
            _ => None,
        }
    }
}

/// Bind `addr` and serve the standard metrics routes until
/// [`HttpServer::shutdown`] or the `max_requests` budget is exhausted.
pub fn serve(addr: &str, opts: ServeOptions) -> std::io::Result<MetricsServer> {
    let state = Arc::new(MetricsState::new());
    let handler: Handler = Arc::new(move |req: &Request| {
        if req.method != "GET" {
            return Response::text(405, "method not allowed\n");
        }
        state
            .route(req)
            .unwrap_or_else(|| Response::text(404, "not found\n"))
    });
    serve_http(
        addr,
        HttpOptions {
            max_requests: opts.max_requests,
            ..HttpOptions::default()
        },
        handler,
    )
}

/// Prometheus text for the live state: the snapshot's counter/histogram
/// families plus allocator and per-phase progress gauges. Shared by the
/// HTTP endpoint and anything else that wants a live dump.
pub fn live_metrics_text() -> String {
    let mut out = crate::snapshot().metrics_text();
    let (live, peak) = crate::alloc::global_live_peak();
    gauge(
        &mut out,
        "parmem_alloc_live_bytes",
        "approximate process-wide live heap bytes",
        live,
    );
    gauge(
        &mut out,
        "parmem_alloc_peak_bytes",
        "approximate process-wide peak live heap bytes",
        peak,
    );
    let phases = crate::progress_snapshot();
    if !phases.is_empty() {
        let _ = writeln!(
            out,
            "# HELP parmem_progress_done items completed in the phase"
        );
        let _ = writeln!(out, "# TYPE parmem_progress_done gauge");
        for p in &phases {
            let _ = writeln!(
                out,
                "parmem_progress_done{{phase=\"{}\"}} {}",
                crate::export::escape_label_value(&p.phase),
                p.done
            );
        }
        let _ = writeln!(out, "# HELP parmem_progress_total items in the phase");
        let _ = writeln!(out, "# TYPE parmem_progress_total gauge");
        for p in &phases {
            let _ = writeln!(
                out,
                "parmem_progress_total{{phase=\"{}\"}} {}",
                crate::export::escape_label_value(&p.phase),
                p.total
            );
        }
    }
    out
}

/// Append one `# HELP`/`# TYPE`/value gauge family.
pub fn gauge(out: &mut String, name: &str, help: &str, v: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::counter_add("serve.test_counter", 7);
        let srv = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
        let addr = srv.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("Connection: close"), "{head}");
        assert!(body.contains("parmem_serve_test_counter 7"), "{body}");
        assert!(body.contains("parmem_alloc_live_bytes"), "{body}");
        assert!(body.contains("parmem_metrics_scrapes_total 1"), "{body}");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // Second scrape bumps the scrape counter.
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("parmem_metrics_scrapes_total 2"), "{body}");

        srv.shutdown();
        crate::set_enabled(false);
        crate::take();
    }

    #[test]
    fn max_requests_stops_the_acceptor() {
        let _guard = crate::test_lock();
        let srv = serve(
            "127.0.0.1:0",
            ServeOptions {
                max_requests: Some(1),
            },
        )
        .expect("bind");
        let addr = srv.local_addr();
        let (head, _) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));
        srv.join(); // returns because the budget is exhausted
    }

    #[test]
    fn custom_handler_sees_post_bodies_and_headers() {
        let _guard = crate::test_lock();
        let handler: Handler = Arc::new(|req: &Request| {
            assert_eq!(req.method, "POST");
            assert_eq!(req.header("x-probe"), Some("42"));
            Response::json(200, format!("{{\"len\":{}}}", req.body.len()))
                .with_header("X-Echo", String::from_utf8_lossy(&req.body).into_owned())
        });
        let srv = serve_http("127.0.0.1:0", HttpOptions::default(), handler).expect("bind");
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        write!(
            conn,
            "POST /v1/x HTTP/1.1\r\nHost: x\r\nX-Probe: 42\r\nContent-Length: 5\r\n\r\nhello"
        )
        .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("X-Echo: hello"), "{head}");
        assert!(head.contains("Content-Type: application/json"), "{head}");
        assert_eq!(body, "{\"len\":5}");
        srv.shutdown();
    }

    #[test]
    fn oversized_bodies_are_rejected_413() {
        let _guard = crate::test_lock();
        let handler: Handler = Arc::new(|_req: &Request| Response::text(200, "never reached\n"));
        let srv = serve_http(
            "127.0.0.1:0",
            HttpOptions {
                max_body: 16,
                ..HttpOptions::default()
            },
            handler,
        )
        .expect("bind");
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        write!(
            conn,
            "POST /v1/x HTTP/1.1\r\nHost: x\r\nContent-Length: 64\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        srv.shutdown();
    }

    /// The hardening contract: a client that connects and never sends a
    /// request must not pin its handler thread past the overall deadline —
    /// other requests keep being served meanwhile, and shutdown (which
    /// joins in-flight handlers) completes promptly.
    #[test]
    fn stalled_client_cannot_pin_the_server() {
        let _guard = crate::test_lock();
        let opts = HttpOptions {
            read_timeout: Duration::from_millis(50),
            io_deadline: Duration::from_millis(200),
            ..HttpOptions::default()
        };
        let handler: Handler = Arc::new(|_req: &Request| Response::text(200, "ok\n"));
        let srv = serve_http("127.0.0.1:0", opts, handler).expect("bind");
        let addr = srv.local_addr();

        // Open a connection and send nothing at all; keep it alive.
        let stalled = TcpStream::connect(addr).expect("connect stalled");

        // A well-behaved request still gets served while the peer stalls.
        let (head, _) = get(addr, "/whatever");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");

        // The stalled handler is answered 408 and released by the deadline,
        // so shutdown (stop accepting + join in-flight) is bounded.
        let t = Instant::now();
        srv.shutdown();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "shutdown blocked on a stalled client for {:?}",
            t.elapsed()
        );
        // The stalled client eventually sees a 408 (or a clean close).
        let mut stalled = stalled;
        stalled
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut resp = String::new();
        let _ = stalled.read_to_string(&mut resp);
        assert!(
            resp.is_empty() || resp.starts_with("HTTP/1.1 408"),
            "unexpected stalled-client response: {resp}"
        );
    }
}
