//! Differential checks: the scheduled program's published access trace
//! against an independent reconstruction (PM009), and the statically
//! predicted conflict count against what the cycle-level simulator actually
//! measures (PM008).

use liw_sched::{SOperand, SchedProgram, SchedTerm, SlotOp};
use parmem_core::assignment::Assignment;
use parmem_core::types::{AccessTrace, OperandSet, ValueId};
use rliw_sim::ArrayPlacement;

use crate::assignment_check::min_makespan;
use crate::diag::{Code, Diagnostic};

/// Rebuild the access trace directly from the long words, without calling
/// `SchedProgram::access_trace` or any of its helpers. One operand set per
/// word; a `Branch` condition is fetched during its block's final word.
pub fn rebuild_trace(sched: &SchedProgram) -> AccessTrace {
    let mut insts = Vec::new();
    for b in &sched.blocks {
        for (wi, word) in b.words.iter().enumerate() {
            let mut reads: Vec<ValueId> = Vec::new();
            let mut push = |o: &SOperand| {
                if let SOperand::Scalar(w) = o {
                    reads.push(ValueId(*w));
                }
            };
            for op in &word.ops {
                match op {
                    SlotOp::Compute { lhs, rhs, .. } => {
                        push(lhs);
                        if let Some(r) = rhs {
                            push(r);
                        }
                    }
                    SlotOp::Load { index, .. } => push(index),
                    SlotOp::Store { index, value, .. } => {
                        push(index);
                        push(value);
                    }
                    SlotOp::Print { value } => push(value),
                    SlotOp::Select {
                        cond,
                        if_true,
                        if_false,
                        ..
                    } => {
                        push(cond);
                        push(if_true);
                        push(if_false);
                    }
                }
            }
            if wi + 1 == b.words.len() {
                if let SchedTerm::Branch { cond, .. } = &b.term {
                    push(cond);
                }
            }
            insts.push(OperandSet::new(reads));
        }
    }
    AccessTrace::new(sched.spec.modules, insts)
}

/// PM009: compare a caller-supplied trace (e.g. the one the assignment was
/// actually computed from) against the reconstruction, word by word. Catches
/// both bugs in `SchedProgram::access_trace` and stale traces that no longer
/// describe the program being verified.
pub fn check_trace_against(published: &AccessTrace, sched: &SchedProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let rebuilt = rebuild_trace(sched);
    if published.modules != rebuilt.modules {
        diags.push(Diagnostic::new(
            Code::PM009,
            format!(
                "trace claims k={}, machine spec says k={}",
                published.modules, rebuilt.modules
            ),
        ));
    }
    if published.instructions.len() != rebuilt.instructions.len() {
        diags.push(Diagnostic::new(
            Code::PM009,
            format!(
                "trace has {} words, reconstruction from the program has {}",
                published.instructions.len(),
                rebuilt.instructions.len()
            ),
        ));
        return diags;
    }
    for (i, (p, r)) in published
        .instructions
        .iter()
        .zip(&rebuilt.instructions)
        .enumerate()
    {
        if p != r {
            diags.push(
                Diagnostic::new(
                    Code::PM009,
                    format!("trace word reads {p:?}, reconstruction reads {r:?}"),
                )
                .at_instruction(i),
            );
        }
    }
    diags
}

/// PM009 self-check: the program's own published trace against the
/// reconstruction. Only fails if `access_trace`/`word_operands` are buggy.
pub fn check_trace_reconstruction(sched: &SchedProgram) -> Vec<Diagnostic> {
    check_trace_against(&sched.access_trace(), sched)
}

/// What the verifier can predict about conflicts without executing.
pub struct StaticPrediction {
    /// Indices of static words whose scalar fetches must stall.
    pub conflicting_words: Vec<usize>,
    /// Exact dynamic conflict-word count, when control flow permits a static
    /// answer (straight-line chain from entry to halt: every reachable word
    /// executes exactly once).
    pub exact_dynamic: Option<u64>,
}

/// Predict scalar conflicts from the trace and assignment alone, using the
/// simulator's exact accounting: an unplaced value is fetched from module 0,
/// and a word with no scalar reads can never conflict.
pub fn predict(sched: &SchedProgram, assignment: &Assignment) -> StaticPrediction {
    let trace = rebuild_trace(sched);
    let mut conflicting = Vec::new();
    for (i, inst) in trace.instructions.iter().enumerate() {
        if inst.is_empty() {
            continue;
        }
        let masks: Vec<u64> = inst
            .iter()
            .map(|v| match assignment.copies(v).0 {
                0 => 1, // the machine falls back to module 0
                m => m,
            })
            .collect();
        if min_makespan(&masks).unwrap_or(usize::MAX) > 1 {
            conflicting.push(i);
        }
    }

    // Straight-line check: from entry, each block jumps to at most one
    // successor and no block repeats → every reached word executes once.
    let mut visited = vec![false; sched.blocks.len()];
    let mut chain = Vec::new();
    let mut cur = Some(sched.entry.index());
    let mut linear = true;
    while let Some(b) = cur {
        if visited[b] {
            linear = false;
            break;
        }
        visited[b] = true;
        chain.push(b);
        cur = match &sched.blocks[b].term {
            SchedTerm::Jump(t) => Some(t.index()),
            SchedTerm::Halt => None,
            SchedTerm::Branch { .. } => {
                linear = false;
                break;
            }
        };
    }

    let exact_dynamic = if linear {
        let mut word_start = vec![0usize; sched.blocks.len()];
        let mut acc = 0usize;
        for (bi, b) in sched.blocks.iter().enumerate() {
            word_start[bi] = acc;
            acc += b.words.len();
        }
        let executed: std::collections::HashSet<usize> = chain
            .iter()
            .flat_map(|&bi| word_start[bi]..word_start[bi] + sched.blocks[bi].words.len())
            .collect();
        Some(conflicting.iter().filter(|w| executed.contains(w)).count() as u64)
    } else {
        None
    };

    StaticPrediction {
        conflicting_words: conflicting,
        exact_dynamic,
    }
}

/// PM008: run the simulator under ideal array placement and compare its
/// measured scalar-conflict count against the static prediction.
///
/// Three mutually checkable facts:
/// * no static conflicts ⇒ the machine must measure zero stalls;
/// * every value placed ⇒ the machine must observe zero unplaced reads;
/// * on straight-line programs the counts must agree exactly.
pub fn check_differential(sched: &SchedProgram, assignment: &Assignment) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let prediction = predict(sched, assignment);
    let stats = match rliw_sim::run(sched, assignment, ArrayPlacement::Ideal) {
        Ok(s) => s,
        // A runtime fault (out-of-bounds index, fuel) is a program property,
        // not an assignment property — nothing to differentiate against.
        Err(_) => return diags,
    };

    if prediction.conflicting_words.is_empty() && stats.scalar_conflict_words != 0 {
        diags.push(Diagnostic::new(
            Code::PM008,
            format!(
                "static analysis predicts zero conflict words but the simulator \
                 measured {}",
                stats.scalar_conflict_words
            ),
        ));
    }
    if let Some(exact) = prediction.exact_dynamic {
        if exact != stats.scalar_conflict_words {
            diags.push(Diagnostic::new(
                Code::PM008,
                format!(
                    "straight-line program: static analysis predicts exactly {exact} \
                     conflict words, simulator measured {}",
                    stats.scalar_conflict_words
                ),
            ));
        }
    }

    // Unplaced scalar reads are also statically known.
    let trace = rebuild_trace(sched);
    let all_placed = trace
        .distinct_values()
        .iter()
        .all(|&v| !assignment.copies(v).is_empty());
    if all_placed && stats.unplaced_reads != 0 {
        diags.push(Diagnostic::new(
            Code::PM008,
            format!(
                "every value has a copy, yet the simulator counted {} unplaced reads",
                stats.unplaced_reads
            ),
        ));
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_sched::{compile_and_schedule, MachineSpec};
    use parmem_core::assignment::{assign_trace, AssignParams};
    use parmem_core::baseline::single_module;

    const STRAIGHT: &str = "program t; var a, b, c, d, e: int;
        begin
          a := 1; b := 2; c := a + b; d := b + c; e := c + d;
          print a + e;
        end.";

    const LOOPY: &str = "program t; var i, s: int;
        begin s := 0; for i := 1 to 20 do s := s + i; print s; end.";

    fn setup(src: &str, k: usize) -> (SchedProgram, Assignment) {
        let sp = compile_and_schedule(src, MachineSpec::with_modules(k)).unwrap();
        let (a, _) = assign_trace(&sp.access_trace(), &AssignParams::default());
        (sp, a)
    }

    #[test]
    fn reconstruction_matches_published_trace() {
        for src in [STRAIGHT, LOOPY] {
            for k in [2, 4, 8] {
                let sp = compile_and_schedule(src, MachineSpec::with_modules(k)).unwrap();
                assert!(check_trace_reconstruction(&sp).is_empty());
                let rebuilt = rebuild_trace(&sp);
                let published = sp.access_trace();
                assert_eq!(rebuilt.instructions, published.instructions);
            }
        }
    }

    #[test]
    fn stale_trace_is_pm009() {
        let (sp, _) = setup(STRAIGHT, 4);
        let stale = sp.access_trace();
        // The program grows a word after the trace was taken.
        let mut sp2 = sp.clone();
        sp2.blocks[0].words.push(liw_sched::LongWord::default());
        let diags = check_trace_against(&stale, &sp2);
        assert!(
            diags.iter().any(|d| d.code == Code::PM009),
            "expected PM009, got {diags:?}"
        );
    }

    #[test]
    fn verified_assignment_differentially_clean() {
        for src in [STRAIGHT, LOOPY] {
            let (sp, a) = setup(src, 4);
            let diags = check_differential(&sp, &a);
            assert!(diags.is_empty(), "{src}: {diags:?}");
        }
    }

    #[test]
    fn straight_line_baseline_predicts_exactly() {
        // Single-module baseline on a straight-line program: the static
        // conflict count equals the dynamic one exactly, so the differential
        // check still passes even with a conflict-ridden layout.
        let (sp, _) = setup(STRAIGHT, 4);
        let baseline = single_module(&sp.access_trace());
        let prediction = predict(&sp, &baseline);
        assert!(
            prediction.exact_dynamic.is_some(),
            "program is straight-line"
        );
        assert!(!prediction.conflicting_words.is_empty());
        let diags = check_differential(&sp, &baseline);
        assert!(diags.is_empty(), "{diags:?}");
        let stats = rliw_sim::run(&sp, &baseline, ArrayPlacement::Ideal).unwrap();
        assert_eq!(
            prediction.exact_dynamic.unwrap(),
            stats.scalar_conflict_words
        );
    }

    #[test]
    fn loops_defeat_exact_prediction_but_not_the_check() {
        let (sp, a) = setup(LOOPY, 2);
        let prediction = predict(&sp, &a);
        assert!(
            prediction.exact_dynamic.is_none(),
            "loop is not straight-line"
        );
        assert!(check_differential(&sp, &a).is_empty());
    }
}
