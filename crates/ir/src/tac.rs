//! Three-address code (TAC): the RLIW compiler's mid-level IR.
//!
//! A program is a set of basic blocks of simple instructions; every scalar
//! read names a [`VarId`] (program variable or compiler temporary), every
//! array access names an [`ArrayId`] plus an index operand. This is the
//! level the LIW scheduler packs into long instruction words, and the level
//! at which the renaming pass carves variables into *data values*.

use std::fmt;

use crate::ast::Ty;

/// A scalar slot: program variable or compiler temporary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into dense per-variable tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An array object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Index into dense per-array tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}", self.0)
    }
}

/// A basic block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into dense per-block tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A runtime value (also used for constants).
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // variants are self-describing
pub enum Value {
    Int(i64),
    Real(f64),
    Bool(bool),
}

impl Value {
    /// The value's type tag.
    pub fn ty(self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Real(_) => Ty::Real,
            Value::Bool(_) => Ty::Bool,
        }
    }

    /// Coerce to integer (truncating reals, false=0/true=1).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Bool(b) => b as i64,
            Value::Real(v) => v as i64,
        }
    }

    /// Coerce to real.
    pub fn as_real(self) -> f64 {
        match self {
            Value::Real(v) => v,
            Value::Int(v) => v as f64,
            Value::Bool(b) => b as i64 as f64,
        }
    }

    /// Coerce to bool (non-zero = true).
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(v) => v != 0,
            Value::Real(v) => v != 0.0,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v:.6}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// An instruction operand: immediate constant or scalar memory read.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // variants are self-describing
pub enum Operand {
    Const(Value),
    Var(VarId),
}

impl Operand {
    /// The variable this operand reads, if it reads one.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }
}

/// Operation codes. Integer and real arithmetic are distinct (as on a real
/// machine with separate functional units); the front end inserts
/// [`OpCode::IntToReal`] conversions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are self-describing
pub enum OpCode {
    // Integer arithmetic
    Add,
    Sub,
    Mul,
    IDiv,
    Mod,
    Neg,
    // Real arithmetic
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    // Comparisons (integer / real)
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
    // Logical
    And,
    Or,
    Not,
    // Conversions
    IntToReal,
    Trunc,
    // Unary math intrinsics (real)
    Sqrt,
    Sin,
    Cos,
    Exp,
    Ln,
    FAbs,
    IAbs,
    // Move
    Copy,
}

impl OpCode {
    /// Whether this opcode takes two source operands.
    pub fn is_binary(self) -> bool {
        use OpCode::*;
        matches!(
            self,
            Add | Sub
                | Mul
                | IDiv
                | Mod
                | FAdd
                | FSub
                | FMul
                | FDiv
                | Eq
                | Ne
                | Lt
                | Le
                | Gt
                | Ge
                | FEq
                | FNe
                | FLt
                | FLe
                | FGt
                | FGe
                | And
                | Or
        )
    }

    /// Result type of the opcode.
    pub fn result_ty(self) -> Ty {
        use OpCode::*;
        match self {
            Add | Sub | Mul | IDiv | Mod | Neg | Trunc | IAbs => Ty::Int,
            FAdd | FSub | FMul | FDiv | FNeg | IntToReal | Sqrt | Sin | Cos | Exp | Ln | FAbs => {
                Ty::Real
            }
            Eq | Ne | Lt | Le | Gt | Ge | FEq | FNe | FLt | FLe | FGt | FGe | And | Or | Not => {
                Ty::Bool
            }
            Copy => Ty::Int, // actual type comes from the operand
        }
    }
}

/// Evaluate an opcode on constant values — shared by the simulator and the
/// constant-folding tests. Division by zero yields 0 / 0.0 (the RLIW traps
/// are not modeled; benchmark programs never divide by zero).
pub fn eval_op(op: OpCode, a: Value, b: Option<Value>) -> Value {
    use OpCode::*;
    let bi = || b.expect("binary op needs rhs").as_int();
    let br = || b.expect("binary op needs rhs").as_real();
    let bb = || b.expect("binary op needs rhs").as_bool();
    match op {
        Add => Value::Int(a.as_int().wrapping_add(bi())),
        Sub => Value::Int(a.as_int().wrapping_sub(bi())),
        Mul => Value::Int(a.as_int().wrapping_mul(bi())),
        IDiv => {
            let d = bi();
            Value::Int(if d == 0 {
                0
            } else {
                a.as_int().wrapping_div(d)
            })
        }
        Mod => {
            let d = bi();
            Value::Int(if d == 0 {
                0
            } else {
                a.as_int().wrapping_rem(d)
            })
        }
        Neg => Value::Int(a.as_int().wrapping_neg()),
        FAdd => Value::Real(a.as_real() + br()),
        FSub => Value::Real(a.as_real() - br()),
        FMul => Value::Real(a.as_real() * br()),
        FDiv => {
            let d = br();
            Value::Real(if d == 0.0 { 0.0 } else { a.as_real() / d })
        }
        FNeg => Value::Real(-a.as_real()),
        Eq => Value::Bool(a.as_int() == bi()),
        Ne => Value::Bool(a.as_int() != bi()),
        Lt => Value::Bool(a.as_int() < bi()),
        Le => Value::Bool(a.as_int() <= bi()),
        Gt => Value::Bool(a.as_int() > bi()),
        Ge => Value::Bool(a.as_int() >= bi()),
        FEq => Value::Bool(a.as_real() == br()),
        FNe => Value::Bool(a.as_real() != br()),
        FLt => Value::Bool(a.as_real() < br()),
        FLe => Value::Bool(a.as_real() <= br()),
        FGt => Value::Bool(a.as_real() > br()),
        FGe => Value::Bool(a.as_real() >= br()),
        And => Value::Bool(a.as_bool() && bb()),
        Or => Value::Bool(a.as_bool() || bb()),
        Not => Value::Bool(!a.as_bool()),
        IntToReal => Value::Real(a.as_int() as f64),
        Trunc => Value::Int(a.as_real() as i64),
        Sqrt => Value::Real(a.as_real().sqrt()),
        Sin => Value::Real(a.as_real().sin()),
        Cos => Value::Real(a.as_real().cos()),
        Exp => Value::Real(a.as_real().exp()),
        Ln => Value::Real(a.as_real().ln()),
        FAbs => Value::Real(a.as_real().abs()),
        IAbs => Value::Int(a.as_int().abs()),
        Copy => a,
    }
}

/// One three-address instruction.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // fields are self-describing
pub enum Instr {
    /// `dest = op(lhs[, rhs])`
    Compute {
        dest: VarId,
        op: OpCode,
        lhs: Operand,
        rhs: Option<Operand>,
    },
    /// `dest = arr[index]`
    Load {
        dest: VarId,
        arr: ArrayId,
        index: Operand,
    },
    /// `arr[index] = value`
    Store {
        arr: ArrayId,
        index: Operand,
        value: Operand,
    },
    /// Append `value` to the program's output stream.
    Print { value: Operand },
    /// `dest = cond ? if_true : if_false` — the RLIW's conditional-move
    /// functional unit. Generated by the optimizer's if-conversion pass
    /// (never by the front end).
    Select {
        /// Boolean selector.
        cond: Operand,
        /// Result when `cond` is true.
        if_true: Operand,
        /// Result when `cond` is false.
        if_false: Operand,
        /// Destination scalar.
        dest: VarId,
    },
}

impl Instr {
    /// Scalar variables this instruction reads.
    pub fn reads(&self) -> Vec<VarId> {
        let mut out = Vec::with_capacity(2);
        let mut push = |o: &Operand| {
            if let Some(v) = o.var() {
                out.push(v);
            }
        };
        match self {
            Instr::Compute { lhs, rhs, .. } => {
                push(lhs);
                if let Some(r) = rhs {
                    push(r);
                }
            }
            Instr::Load { index, .. } => push(index),
            Instr::Store { index, value, .. } => {
                push(index);
                push(value);
            }
            Instr::Print { value } => push(value),
            Instr::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                push(cond);
                push(if_true);
                push(if_false);
            }
        }
        out
    }

    /// The scalar variable this instruction writes, if any.
    pub fn writes(&self) -> Option<VarId> {
        match self {
            Instr::Compute { dest, .. } | Instr::Load { dest, .. } | Instr::Select { dest, .. } => {
                Some(*dest)
            }
            Instr::Store { .. } | Instr::Print { .. } => None,
        }
    }

    /// Whether this instruction touches an array (unpredictable module).
    pub fn array_access(&self) -> Option<(ArrayId, bool)> {
        match self {
            Instr::Load { arr, .. } => Some((*arr, false)),
            Instr::Store { arr, .. } => Some((*arr, true)),
            _ => None,
        }
    }
}

/// Block terminator.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variants are self-describing
pub enum Terminator {
    Jump(BlockId),
    Branch {
        cond: Operand,
        then_to: BlockId,
        else_to: BlockId,
    },
    Halt,
}

impl Terminator {
    /// Scalar variables the terminator reads (the branch condition).
    pub fn reads(&self) -> Vec<VarId> {
        match self {
            Terminator::Branch { cond, .. } => cond.var().into_iter().collect(),
            _ => Vec::new(),
        }
    }

    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_to, else_to, ..
            } => vec![*then_to, *else_to],
            Terminator::Halt => Vec::new(),
        }
    }
}

/// Metadata for one scalar slot.
#[derive(Clone, Debug, PartialEq)]
pub struct VarInfo {
    /// Source name (temporaries are `t0`, `t1`, ...).
    pub name: String,
    /// Scalar type.
    pub ty: Ty,
    /// Whether this is a compiler temporary.
    pub is_temp: bool,
}

/// One array element access site: where it is, which array, which
/// direction, and the subscript operand (the input to stride analysis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrayAccessSite {
    /// Block containing the access.
    pub block: BlockId,
    /// Instruction index within the block.
    pub instr: usize,
    /// Accessed array.
    pub arr: ArrayId,
    /// `true` for `Store`, `false` for `Load`.
    pub is_store: bool,
    /// The subscript operand.
    pub index: Operand,
}

/// Static access summary for one array (see
/// [`TacProgram::array_access_meta`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayAccessMeta {
    /// Source name of the array.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Static `Load` site count.
    pub loads: u64,
    /// Static `Store` site count.
    pub stores: u64,
}

/// Metadata for one array.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayInfo {
    /// Source name.
    pub name: String,
    /// Element count.
    pub len: usize,
    /// Element type.
    pub elem: Ty,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// The block's single terminator.
    pub term: Terminator,
}

/// A whole lowered program.
#[derive(Clone, Debug, PartialEq)]
pub struct TacProgram {
    /// Program name.
    pub name: String,
    /// Scalar slots (variables + temporaries).
    pub vars: Vec<VarInfo>,
    /// Array objects.
    pub arrays: Vec<ArrayInfo>,
    /// Basic blocks.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl TacProgram {
    /// Metadata of a scalar slot.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Metadata of an array.
    pub fn array(&self, a: ArrayId) -> &ArrayInfo {
        &self.arrays[a.index()]
    }

    /// A basic block by id.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Total instruction count (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Every array element access in the program, in block/instruction
    /// order: the site coordinates, the array, the direction, and the
    /// subscript operand. This is the raw per-array access metadata the
    /// layout planner's stride analysis consumes (a site's subscript
    /// operand is what induction-variable analysis classifies).
    pub fn array_access_sites(&self) -> Vec<ArrayAccessSite> {
        let mut out = Vec::new();
        for (bi, b) in self.blocks.iter().enumerate() {
            for (ii, inst) in b.instrs.iter().enumerate() {
                let (arr, is_store, index) = match inst {
                    Instr::Load { arr, index, .. } => (*arr, false, *index),
                    Instr::Store { arr, index, .. } => (*arr, true, *index),
                    _ => continue,
                };
                out.push(ArrayAccessSite {
                    block: BlockId(bi as u32),
                    instr: ii,
                    arr,
                    is_store,
                    index,
                });
            }
        }
        out
    }

    /// Static per-array access counts (loads/stores), indexed by array id.
    /// A cheap summary of [`array_access_sites`](Self::array_access_sites)
    /// for consumers that only need densities, not subscripts.
    pub fn array_access_meta(&self) -> Vec<ArrayAccessMeta> {
        let mut meta: Vec<ArrayAccessMeta> = self
            .arrays
            .iter()
            .map(|a| ArrayAccessMeta {
                name: a.name.clone(),
                len: a.len,
                loads: 0,
                stores: 0,
            })
            .collect();
        for site in self.array_access_sites() {
            let m = &mut meta[site.arr.index()];
            if site.is_store {
                m.stores += 1;
            } else {
                m.loads += 1;
            }
        }
        meta
    }

    /// Render the program as text (stable format; used in tests and for
    /// debugging).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let vname = |v: VarId| -> String { self.vars[v.index()].name.clone() };
        let oname = |o: &Operand| -> String {
            match o {
                Operand::Const(c) => format!("{c}"),
                Operand::Var(v) => vname(*v),
            }
        };
        writeln!(s, "program {}", self.name).unwrap();
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(s, "B{i}:").unwrap();
            for inst in &b.instrs {
                match inst {
                    Instr::Compute { dest, op, lhs, rhs } => match rhs {
                        Some(r) => writeln!(
                            s,
                            "  {} = {:?} {} {}",
                            vname(*dest),
                            op,
                            oname(lhs),
                            oname(r)
                        )
                        .unwrap(),
                        None => {
                            writeln!(s, "  {} = {:?} {}", vname(*dest), op, oname(lhs)).unwrap()
                        }
                    },
                    Instr::Load { dest, arr, index } => writeln!(
                        s,
                        "  {} = {}[{}]",
                        vname(*dest),
                        self.arrays[arr.index()].name,
                        oname(index)
                    )
                    .unwrap(),
                    Instr::Store { arr, index, value } => writeln!(
                        s,
                        "  {}[{}] = {}",
                        self.arrays[arr.index()].name,
                        oname(index),
                        oname(value)
                    )
                    .unwrap(),
                    Instr::Print { value } => writeln!(s, "  print {}", oname(value)).unwrap(),
                    Instr::Select {
                        cond,
                        if_true,
                        if_false,
                        dest,
                    } => writeln!(
                        s,
                        "  {} = select {} ? {} : {}",
                        vname(*dest),
                        oname(cond),
                        oname(if_true),
                        oname(if_false)
                    )
                    .unwrap(),
                }
            }
            match &b.term {
                Terminator::Jump(t) => writeln!(s, "  goto B{}", t.0).unwrap(),
                Terminator::Branch {
                    cond,
                    then_to,
                    else_to,
                } => writeln!(
                    s,
                    "  if {} goto B{} else B{}",
                    oname(cond),
                    then_to.0,
                    else_to.0
                )
                .unwrap(),
                Terminator::Halt => writeln!(s, "  halt").unwrap(),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_integer_ops() {
        assert_eq!(
            eval_op(OpCode::Add, Value::Int(2), Some(Value::Int(3))),
            Value::Int(5)
        );
        assert_eq!(
            eval_op(OpCode::Mod, Value::Int(7), Some(Value::Int(3))),
            Value::Int(1)
        );
        assert_eq!(
            eval_op(OpCode::IDiv, Value::Int(7), Some(Value::Int(2))),
            Value::Int(3)
        );
        assert_eq!(
            eval_op(OpCode::IDiv, Value::Int(7), Some(Value::Int(0))),
            Value::Int(0)
        );
        assert_eq!(eval_op(OpCode::Neg, Value::Int(4), None), Value::Int(-4));
        assert_eq!(eval_op(OpCode::IAbs, Value::Int(-4), None), Value::Int(4));
    }

    #[test]
    fn eval_real_ops() {
        assert_eq!(
            eval_op(OpCode::FMul, Value::Real(1.5), Some(Value::Real(2.0))),
            Value::Real(3.0)
        );
        assert_eq!(
            eval_op(OpCode::Sqrt, Value::Real(9.0), None),
            Value::Real(3.0)
        );
        assert_eq!(
            eval_op(OpCode::IntToReal, Value::Int(3), None),
            Value::Real(3.0)
        );
        assert_eq!(
            eval_op(OpCode::Trunc, Value::Real(3.9), None),
            Value::Int(3)
        );
    }

    #[test]
    fn eval_comparisons_and_logic() {
        assert_eq!(
            eval_op(OpCode::Lt, Value::Int(1), Some(Value::Int(2))),
            Value::Bool(true)
        );
        assert_eq!(
            eval_op(OpCode::FGe, Value::Real(2.0), Some(Value::Real(2.0))),
            Value::Bool(true)
        );
        assert_eq!(
            eval_op(OpCode::And, Value::Bool(true), Some(Value::Bool(false))),
            Value::Bool(false)
        );
        assert_eq!(
            eval_op(OpCode::Not, Value::Bool(false), None),
            Value::Bool(true)
        );
    }

    #[test]
    fn instr_reads_and_writes() {
        let i = Instr::Compute {
            dest: VarId(0),
            op: OpCode::Add,
            lhs: Operand::Var(VarId(1)),
            rhs: Some(Operand::Var(VarId(2))),
        };
        assert_eq!(i.reads(), vec![VarId(1), VarId(2)]);
        assert_eq!(i.writes(), Some(VarId(0)));

        let s = Instr::Store {
            arr: ArrayId(0),
            index: Operand::Var(VarId(3)),
            value: Operand::Const(Value::Int(1)),
        };
        assert_eq!(s.reads(), vec![VarId(3)]);
        assert_eq!(s.writes(), None);
        assert_eq!(s.array_access(), Some((ArrayId(0), true)));
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(Terminator::Halt.successors(), vec![]);
        let b = Terminator::Branch {
            cond: Operand::Var(VarId(0)),
            then_to: BlockId(1),
            else_to: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(b.reads(), vec![VarId(0)]);
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_real(), 3.0);
        assert_eq!(Value::Real(2.7).as_int(), 2);
        assert!(Value::Int(1).as_bool());
        assert!(!Value::Int(0).as_bool());
        assert_eq!(Value::Bool(true).as_int(), 1);
    }
}
