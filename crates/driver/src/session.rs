//! The pipeline session: one place that owns compile options, strategy
//! selection, assignment parameters, and seeds, and mints/runs jobs from
//! them.
//!
//! A [`Session`] is cheap to build and copy around; it is the façade every
//! consumer uses instead of chaining `rliw_sim::pipeline` stages by hand:
//!
//! ```
//! use parmem_driver::Session;
//!
//! let session = Session::new(4);
//! let result = session.run("DEMO", "program d; var a, b: int;
//!     begin a := 2; b := a + 3; print a * b; end.");
//! assert_eq!(result.status(), "ok");
//! ```

use liw_ir::tac::TacProgram;
use liw_sched::MachineSpec;
use parmem_core::assignment::{AssignParams, Assignment, AssignmentReport};
use parmem_core::layout::{ArrayPolicy, MemoryLayout};
use parmem_core::strategies::Strategy;
use parmem_verify::VerifyReport;
use rliw_sim::pipeline::{CompileOptions, CompiledProgram, PipelineError, VerifiedRun};
use rliw_sim::ArrayPlacement;

use crate::job::{run_job, JobResult, JobSpec};

/// Pipeline configuration shared by every job a caller mints: module count,
/// storage strategy, front-end options, assignment tunables, placement
/// seed, and the optional exact-gap stage.
#[derive(Clone, Debug)]
pub struct Session {
    /// Memory modules / machine width.
    pub k: usize,
    /// Storage-allocation strategy for the assign stage.
    pub strategy: Strategy,
    /// Front-end options (unroll / optimize / rename).
    pub opts: CompileOptions,
    /// Assignment tunables.
    pub params: AssignParams,
    /// Seed for the uniform-random array placement of Table 2 runs.
    pub seed: u64,
    /// When set, jobs run the exact solver as an extra stage.
    pub exact_gap: Option<parmem_exact::ExactConfig>,
    /// When set, jobs plan a compile-time [`MemoryLayout`] under this
    /// policy and additionally simulate it (`None` keeps the historical
    /// scalar-only pipeline byte-for-byte).
    pub array_policy: Option<ArrayPolicy>,
}

impl Session {
    /// A session for a `k`-module machine with default strategy (STOR1),
    /// options, params, and seed.
    pub fn new(k: usize) -> Session {
        Session {
            k,
            strategy: Strategy::Stor1,
            opts: CompileOptions::default(),
            params: AssignParams::default(),
            seed: 0xC0FFEE,
            exact_gap: None,
            array_policy: None,
        }
    }

    /// Replace the strategy.
    pub fn with_strategy(mut self, s: Strategy) -> Session {
        self.strategy = s;
        self
    }

    /// Replace the front-end options.
    pub fn with_opts(mut self, opts: CompileOptions) -> Session {
        self.opts = opts;
        self
    }

    /// Disable the scalar optimizer, matching the plain
    /// `rliw_sim::pipeline::compile` entry point (frontend → schedule with
    /// renaming, no value numbering / DCE pass).
    pub fn without_optimizer(mut self) -> Session {
        self.opts.optimize = false;
        self
    }

    /// Toggle per-definition renaming (webs) — `false` is the ablation of
    /// the paper's §3 renaming remark.
    pub fn with_renaming(mut self, rename: bool) -> Session {
        self.opts.rename = rename;
        self
    }

    /// Replace the assignment parameters.
    pub fn with_params(mut self, params: AssignParams) -> Session {
        self.params = params;
        self
    }

    /// Replace the random-placement seed.
    pub fn with_seed(mut self, seed: u64) -> Session {
        self.seed = seed;
        self
    }

    /// Enable the exact-gap stage for every job of this session.
    pub fn with_exact_gap(mut self, cfg: parmem_exact::ExactConfig) -> Session {
        self.exact_gap = Some(cfg);
        self
    }

    /// Plan and simulate a compile-time array placement under `policy` in
    /// every job of this session.
    pub fn with_array_policy(mut self, policy: ArrayPolicy) -> Session {
        self.array_policy = Some(policy);
        self
    }

    /// The machine this session compiles for.
    pub fn machine(&self) -> MachineSpec {
        MachineSpec::with_modules(self.k)
    }

    /// FNV-1a digest over every output-affecting knob of this session:
    /// `k`, strategy (including STOR3's group count), compile options,
    /// assignment parameters, placement seed, and the exact-gap budgets.
    ///
    /// `params.jobs` is deliberately **excluded** — worker count never
    /// changes any report byte (the PR 7 invariant), so a cache keyed on
    /// this digest may serve a `--jobs 8` response to a `--jobs 1`
    /// request. Two sessions with equal digests produce byte-identical
    /// reports for the same program; the serve daemon uses this as the
    /// options half of its content-addressed cache key.
    pub fn config_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            // Field separator so adjacent fields can't alias.
            h ^= 0xFF;
            h = h.wrapping_mul(FNV_PRIME);
        };
        eat(&(self.k as u64).to_le_bytes());
        // Debug carries the full variant payload (e.g. STOR3 groups).
        eat(format!("{:?}", self.strategy).as_bytes());
        match self.opts.unroll {
            None => eat(b"no-unroll"),
            Some(u) => {
                eat(&(u.factor as u64).to_le_bytes());
                eat(&(u.max_body_stmts as u64).to_le_bytes());
            }
        }
        eat(&[u8::from(self.opts.optimize), u8::from(self.opts.rename)]);
        eat(format!("{:?}", self.params.module_choice).as_bytes());
        eat(format!("{:?}", self.params.duplication).as_bytes());
        eat(&[u8::from(self.params.use_atoms)]);
        // params.jobs intentionally skipped: output-invariant.
        eat(&self.seed.to_le_bytes());
        match self.exact_gap {
            None => eat(b"no-exact-gap"),
            Some(cfg) => {
                eat(&cfg.budget_nodes.to_le_bytes());
                eat(&cfg.budget_ms.to_le_bytes());
                eat(&[u8::from(cfg.portfolio)]);
                eat(&cfg.seed.to_le_bytes());
            }
        }
        // Eaten only when set, so digests of historical (scalar-only)
        // sessions stay byte-stable across this knob's introduction.
        if let Some(policy) = self.array_policy {
            eat(b"array-policy");
            eat(policy.name().as_bytes());
        }
        h
    }

    /// Mint a [`JobSpec`] carrying this session's configuration.
    pub fn job(
        &self,
        program: impl Into<String>,
        source: impl Into<std::sync::Arc<str>>,
    ) -> JobSpec {
        let mut spec = JobSpec::new(program, source, self.k)
            .with_strategy(self.strategy)
            .with_opts(self.opts)
            .with_params(self.params)
            .with_seed(self.seed);
        if let Some(cfg) = self.exact_gap {
            spec = spec.with_exact_gap(cfg);
        }
        if let Some(policy) = self.array_policy {
            spec = spec.with_array_policy(policy);
        }
        spec
    }

    /// Run the full staged pipeline (compile → assign → verify → simulate
    /// [→ exact-gap]) on one program, with panic isolation.
    pub fn run(
        &self,
        program: impl Into<String>,
        source: impl Into<std::sync::Arc<str>>,
    ) -> JobResult {
        run_job(&self.job(program, source))
    }

    /// Compile only: frontend → optimize → schedule, without the span/metric
    /// instrumentation of the full job runner (callers that need per-stage
    /// observability use [`Session::run`]).
    pub fn compile(&self, source: &str) -> Result<CompiledProgram, PipelineError> {
        rliw_sim::pipeline::compile_with(source, self.machine(), self.opts)
    }

    /// Front end only: parse (and optionally unroll) to TAC. The result
    /// depends on the source and `opts.unroll` alone — not on `k`, the
    /// strategy, or the optimizer — so it is the natural unit for
    /// cross-`k` caching (parmem-serve keys its intermediate cache on
    /// exactly this stage's inputs).
    pub fn frontend(&self, source: &str) -> Result<TacProgram, PipelineError> {
        rliw_sim::pipeline::frontend(source, &self.opts)
    }

    /// Finish compilation from an already-front-ended TAC: optimize (which
    /// *does* depend on the machine — if-conversion needs ≥ 3 memory
    /// ports) and schedule. `compile(src)` ≡ `compile_tac(&frontend(src)?)`.
    pub fn compile_tac(&self, tac: &TacProgram) -> CompiledProgram {
        let spec = self.machine();
        let tac = rliw_sim::pipeline::optimize_stage(tac, spec, &self.opts);
        let sched = rliw_sim::pipeline::schedule_stage(&tac, spec, &self.opts);
        CompiledProgram { tac, sched }
    }

    /// Plan the unified compile-time [`MemoryLayout`] for a compiled
    /// program and its scalar assignment: per-array profiles come from the
    /// lint crate's induction-variable stride analysis over the (optimized)
    /// TAC, the policy from the session (defaulting to `Auto` when the
    /// session has none set).
    pub fn plan_layout(&self, prog: &CompiledProgram, assignment: &Assignment) -> MemoryLayout {
        let policy = self.array_policy.unwrap_or(ArrayPolicy::Auto);
        let profiles = parmem_lint::array_stride_profiles(&prog.tac);
        parmem_core::layout::plan(self.k, policy, assignment.clone(), &profiles)
    }

    /// Assign memory modules to a compiled program's trace under this
    /// session's strategy and parameters.
    pub fn assign(&self, prog: &CompiledProgram) -> (Assignment, AssignmentReport) {
        rliw_sim::pipeline::assign(&prog.sched, self.strategy, &self.params)
    }

    /// Independently verify a compiled program and its assignment
    /// (PM001–PM104 families).
    pub fn verify(
        &self,
        prog: &CompiledProgram,
        assignment: &Assignment,
        report: Option<&AssignmentReport>,
    ) -> VerifyReport {
        parmem_verify::verify_all(&prog.tac, &prog.sched, assignment, report)
    }

    /// Run the static lints over one program's TAC and, when `predict` is
    /// set, the compile-time conflict predictor cross-checked against the
    /// simulator's measured per-module transfer counters (paper Table 2's
    /// t_min / t_ave / t_max, computed without executing the program).
    pub fn lint(
        &self,
        program: impl Into<String>,
        source: &str,
        predict: bool,
    ) -> Result<parmem_lint::LintReport, PipelineError> {
        let prog = self.compile(source)?;
        self.lint_compiled(program, &prog, predict)
    }

    /// [`Session::lint`] starting from an already-compiled program —
    /// for callers (the serve daemon) that cache the frontend stage and
    /// finish compilation with [`Session::compile_tac`].
    pub fn lint_compiled(
        &self,
        program: impl Into<String>,
        prog: &CompiledProgram,
        predict: bool,
    ) -> Result<parmem_lint::LintReport, PipelineError> {
        let opts = parmem_lint::LintOptions { modules: self.k };
        let diags = parmem_lint::lint_program(&prog.tac, &opts);
        let predict = if predict {
            let (assignment, _) = self.assign(prog);
            let report = match self.array_policy {
                // With a policy set, also measure the planned layout so the
                // report carries per-policy predicted-vs-measured rows.
                Some(_) => {
                    let layout = std::sync::Arc::new(self.plan_layout(prog, &assignment));
                    parmem_lint::compare_with_layouts(
                        &prog.sched,
                        &assignment,
                        self.seed,
                        &[layout],
                    )?
                }
                None => parmem_lint::compare(&prog.sched, &assignment, self.seed)?,
            };
            Some(report)
        } else {
            None
        };
        Ok(parmem_lint::LintReport {
            program: program.into(),
            k: self.k,
            blocks: prog.tac.blocks.len(),
            instrs: prog.tac.instr_count(),
            diags,
            predict,
        })
    }

    /// Simulate under `policy` and cross-check against the reference
    /// interpreter (panics on divergence, like
    /// `rliw_sim::pipeline::verified_run`).
    pub fn verified_run(
        &self,
        prog: &CompiledProgram,
        assignment: &Assignment,
        policy: ArrayPlacement,
    ) -> Result<VerifiedRun, PipelineError> {
        rliw_sim::pipeline::verified_run(prog, assignment, policy)
    }

    /// Compile, assign, and run verified under `policy` in one call.
    pub fn quick_run(
        &self,
        source: &str,
        policy: ArrayPlacement,
    ) -> Result<(VerifiedRun, AssignmentReport), PipelineError> {
        let prog = self.compile(source)?;
        let (assignment, report) = self.assign(&prog);
        let run = self.verified_run(&prog, &assignment, policy)?;
        Ok((run, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program s; var i, t: int;
        begin
          t := 0;
          for i := 1 to 6 do t := t + i * i;
          print t;
        end.";

    #[test]
    fn session_runs_clean_jobs() {
        let s = Session::new(4);
        let r = s.run("S", SRC);
        assert_eq!(r.status(), "ok");
        assert_eq!(r.spec.k, 4);
        assert_eq!(r.spec.strategy, Strategy::Stor1);
    }

    #[test]
    fn session_compile_assign_verify_roundtrip() {
        let s = Session::new(4).with_strategy(Strategy::STOR3);
        let prog = s.compile(SRC).unwrap();
        let (a, rep) = s.assign(&prog);
        assert_eq!(rep.residual_conflicts, 0);
        let v = s.verify(&prog, &a, Some(&rep));
        assert!(v.is_clean(), "{v}");
        let run = s
            .verified_run(&prog, &a, ArrayPlacement::Interleaved)
            .unwrap();
        assert!(run.speedup > 1.0);
    }

    #[test]
    fn session_lint_reports_and_predicts() {
        let s = Session::new(4);
        let r = s.lint("S", SRC, true).unwrap();
        assert_eq!(r.program, "S");
        assert_eq!(r.k, 4);
        let p = r.predict.expect("predict section");
        assert!(p.within_tolerance(), "rel err {}", p.t_ave_rel_err());
    }

    #[test]
    fn config_digest_tracks_every_knob_but_jobs() {
        let base = Session::new(4);
        let d0 = base.config_digest();
        // Stable across clones and repeated calls.
        assert_eq!(d0, base.clone().config_digest());

        // Every output-affecting knob moves the digest.
        assert_ne!(d0, Session::new(8).config_digest());
        assert_ne!(
            d0,
            base.clone().with_strategy(Strategy::Stor2).config_digest()
        );
        assert_ne!(
            d0,
            base.clone()
                .with_strategy(Strategy::Stor3 { groups: 3 })
                .config_digest()
        );
        assert_ne!(d0, base.clone().without_optimizer().config_digest());
        assert_ne!(d0, base.clone().with_renaming(false).config_digest());
        assert_ne!(d0, base.clone().with_seed(1).config_digest());
        assert_ne!(
            d0,
            base.clone()
                .with_exact_gap(parmem_exact::ExactConfig::default())
                .config_digest()
        );
        let mut unrolled = base.clone();
        unrolled.opts.unroll = Some(liw_ir::unroll::UnrollConfig {
            factor: 2,
            max_body_stmts: 40,
        });
        assert_ne!(d0, unrolled.config_digest());
        let mut bt = base.clone();
        bt.params.duplication = parmem_core::assignment::DuplicationStrategy::Backtrack;
        assert_ne!(d0, bt.config_digest());
        let mut atoms = base.clone();
        atoms.params.use_atoms = false;
        assert_ne!(d0, atoms.config_digest());

        // …but jobs is output-invariant, so it must NOT move the digest.
        let mut jobs = base.clone();
        jobs.params.jobs = 8;
        assert_eq!(d0, jobs.config_digest());

        // The array-policy knob moves the digest when set, distinguishes
        // policies, and (compatibility) leaves unset sessions untouched.
        let hash = base.clone().with_array_policy(ArrayPolicy::Hash);
        assert_ne!(d0, hash.config_digest());
        assert_ne!(
            hash.config_digest(),
            base.clone()
                .with_array_policy(ArrayPolicy::Block)
                .config_digest()
        );

        // STOR3's group payload is part of the digest, not just the name.
        assert_ne!(
            base.clone()
                .with_strategy(Strategy::Stor3 { groups: 2 })
                .config_digest(),
            base.clone()
                .with_strategy(Strategy::Stor3 { groups: 4 })
                .config_digest()
        );
    }

    const ARRAY_SRC: &str = "program s; var a: array[16] of int; i, t: int;
        begin
          for i := 0 to 15 do a[i] := i;
          t := 0;
          for i := 0 to 15 do t := t + a[i];
          print t;
        end.";

    #[test]
    fn staged_frontend_equals_whole_compile() {
        let s = Session::new(4);
        let tac = s.frontend(ARRAY_SRC).unwrap();
        let staged = s.compile_tac(&tac);
        let whole = s.compile(ARRAY_SRC).unwrap();
        assert_eq!(
            staged.sched.access_trace().instructions,
            whole.sched.access_trace().instructions
        );
        assert_eq!(
            staged.sched.workload_digest(),
            whole.sched.workload_digest()
        );
    }

    #[test]
    fn session_plans_and_verifies_layouts() {
        for policy in ArrayPolicy::CONCRETE {
            let s = Session::new(4).with_array_policy(policy);
            let prog = s.compile(ARRAY_SRC).unwrap();
            let (a, _) = s.assign(&prog);
            let layout = s.plan_layout(&prog, &a);
            assert_eq!(layout.policy, policy);
            assert_eq!(layout.arrays.len(), 1);
            let v = parmem_verify::verify_layout(&layout, layout.digest());
            assert!(v.is_clean(), "{policy:?}: {v}");
        }
        // No policy on the session: plan_layout falls back to Auto.
        let s = Session::new(4);
        let prog = s.compile(ARRAY_SRC).unwrap();
        let (a, _) = s.assign(&prog);
        assert_eq!(s.plan_layout(&prog, &a).policy, ArrayPolicy::Auto);
    }

    #[test]
    fn lint_with_policy_reports_policy_rows() {
        let s = Session::new(4).with_array_policy(ArrayPolicy::Hash);
        let r = s.lint("S", ARRAY_SRC, true).unwrap();
        let p = r.predict.expect("predict section");
        assert_eq!(p.policies.len(), 1);
        assert_eq!(p.policies[0].policy, "planned_hash");
        assert!(p.policies[0].within_tolerance());
        // Without a policy the section is absent — default output unchanged.
        let r0 = Session::new(4).lint("S", ARRAY_SRC, true).unwrap();
        assert!(r0.predict.unwrap().policies.is_empty());
    }

    #[test]
    fn session_job_carries_configuration() {
        let s = Session::new(8)
            .with_strategy(Strategy::Stor2)
            .with_seed(42)
            .with_exact_gap(parmem_exact::ExactConfig::default());
        let spec = s.job("X", SRC);
        assert_eq!(spec.k, 8);
        assert_eq!(spec.strategy, Strategy::Stor2);
        assert_eq!(spec.seed, 42);
        assert!(spec.exact_gap.is_some());
    }
}
