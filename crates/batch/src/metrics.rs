//! Per-stage wall-time and allocation metrics.
//!
//! Wall time comes from [`std::time::Instant`]. Allocation counts come from
//! the optional [`CountingAlloc`] global allocator: a thin wrapper over the
//! system allocator that bumps thread-local counters on every `alloc`/
//! `realloc`. Binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: parmem_batch::metrics::CountingAlloc = parmem_batch::metrics::CountingAlloc;
//! ```
//!
//! (the `parmem` CLI does). When it is not installed the allocation fields
//! of [`StageMetrics`] simply stay zero — timing still works. Counters are
//! thread-local, so a stage's delta measured on a worker thread counts only
//! that job's allocations, not its neighbours'.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Counting wrapper over the system allocator (see module docs).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter bumps use const-initialized
// thread-locals (no lazy init, hence no allocation inside the allocator), and
// `try_with` tolerates access during TLS teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only growth, so repeated doubling reads as net new bytes.
        record(new_size.saturating_sub(layout.size()) as u64);
        System.realloc(ptr, layout, new_size)
    }
}

fn record(bytes: u64) {
    let _ = ALLOC_BYTES.try_with(|b| b.set(b.get().wrapping_add(bytes)));
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// Current thread's cumulative (bytes, count) allocation counters. Zeros
/// unless [`CountingAlloc`] is installed as the global allocator.
pub fn alloc_counters() -> (u64, u64) {
    (
        ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
        ALLOC_COUNT.try_with(Cell::get).unwrap_or(0),
    )
}

/// The pipeline stages the batch engine times individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    /// Parse (+ optional unrolling) and lowering to TAC.
    Frontend,
    /// The `liw-opt` scalar optimizer.
    Optimize,
    /// Long-instruction-word list scheduling.
    Schedule,
    /// Storage-strategy module assignment.
    Assign,
    /// The independent `parmem-verify` invariant checks.
    Verify,
    /// Reference-interpreter execution of the TAC.
    Reference,
    /// RLIW simulation under the four array policies.
    Simulate,
}

impl StageKind {
    /// All stages, in pipeline order.
    pub const ALL: [StageKind; 7] = [
        StageKind::Frontend,
        StageKind::Optimize,
        StageKind::Schedule,
        StageKind::Assign,
        StageKind::Verify,
        StageKind::Reference,
        StageKind::Simulate,
    ];

    /// Stable lowercase name (used as JSON/CSV keys).
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Frontend => "frontend",
            StageKind::Optimize => "optimize",
            StageKind::Schedule => "schedule",
            StageKind::Assign => "assign",
            StageKind::Verify => "verify",
            StageKind::Reference => "reference",
            StageKind::Simulate => "simulate",
        }
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Wall time and allocation pressure of one stage execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Bytes newly allocated on this thread during the stage (0 when the
    /// counting allocator is not installed).
    pub alloc_bytes: u64,
    /// Allocation calls on this thread during the stage (ditto).
    pub allocs: u64,
}

impl StageMetrics {
    /// Component-wise sum.
    pub fn add(&mut self, other: StageMetrics) {
        self.wall_ns += other.wall_ns;
        self.alloc_bytes += other.alloc_bytes;
        self.allocs += other.allocs;
    }
}

/// Measures one stage: captures an [`Instant`] and the thread's allocation
/// counters at `start`, returns the deltas at `stop`.
pub struct StageTimer {
    start: Instant,
    bytes0: u64,
    count0: u64,
}

impl StageTimer {
    /// Begin measuring.
    #[allow(clippy::new_without_default)]
    pub fn start() -> StageTimer {
        let (bytes0, count0) = alloc_counters();
        StageTimer {
            start: Instant::now(),
            bytes0,
            count0,
        }
    }

    /// Finish measuring.
    pub fn stop(self) -> StageMetrics {
        let (bytes1, count1) = alloc_counters();
        StageMetrics {
            wall_ns: self.start.elapsed().as_nanos() as u64,
            alloc_bytes: bytes1.wrapping_sub(self.bytes0),
            allocs: count1.wrapping_sub(self.count0),
        }
    }
}

/// Per-stage metrics of one batch job, in execution order.
#[derive(Clone, Debug, Default)]
pub struct JobMetrics {
    /// `(stage, metrics)` for every stage that ran (a job that fails early
    /// records only the stages it reached).
    pub stages: Vec<(StageKind, StageMetrics)>,
}

impl JobMetrics {
    /// Record one stage.
    pub fn push(&mut self, kind: StageKind, m: StageMetrics) {
        self.stages.push((kind, m));
    }

    /// Metrics for one stage, if it ran.
    pub fn stage(&self, kind: StageKind) -> Option<StageMetrics> {
        self.stages
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| *m)
    }

    /// Sum over all recorded stages.
    pub fn total(&self) -> StageMetrics {
        let mut t = StageMetrics::default();
        for (_, m) in &self.stages {
            t.add(*m);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_wall_time() {
        let t = StageTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let m = t.stop();
        assert!(m.wall_ns >= 4_000_000, "{}", m.wall_ns);
    }

    #[test]
    fn job_metrics_total_sums_stages() {
        let mut jm = JobMetrics::default();
        jm.push(
            StageKind::Frontend,
            StageMetrics {
                wall_ns: 10,
                alloc_bytes: 100,
                allocs: 3,
            },
        );
        jm.push(
            StageKind::Assign,
            StageMetrics {
                wall_ns: 5,
                alloc_bytes: 50,
                allocs: 2,
            },
        );
        let t = jm.total();
        assert_eq!((t.wall_ns, t.alloc_bytes, t.allocs), (15, 150, 5));
        assert_eq!(jm.stage(StageKind::Assign).unwrap().allocs, 2);
        assert!(jm.stage(StageKind::Verify).is_none());
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = StageKind::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            [
                "frontend",
                "optimize",
                "schedule",
                "assign",
                "verify",
                "reference",
                "simulate"
            ]
        );
    }
}
