//! End-to-end integration tests: every benchmark program, compiled,
//! scheduled, module-assigned under every strategy, and executed on the
//! simulated RLIW — with outputs checked against the reference interpreter
//! and the paper's timing inequalities checked on the measurements.
//!
//! All pipeline driving goes through `parmem_driver::Session`; the plain
//! simulator entry points (`sim::run`, `sim::table2_row`) are exercised
//! directly where a test wants an unverified run.

use parallel_memories::core::prelude::*;
use parallel_memories::driver::Session;
use parallel_memories::sim::{self, ArrayPlacement};

/// The historical plain-compile pipeline: frontend → schedule with
/// renaming, no scalar optimizer.
fn plain(k: usize) -> Session {
    Session::new(k).without_optimizer()
}

#[test]
fn all_benchmarks_all_strategies_run_conflict_free_k8() {
    for b in workloads::benchmarks() {
        let prog = plain(8).compile(b.source).unwrap();
        for strategy in [Strategy::Stor1, Strategy::Stor2, Strategy::STOR3] {
            let session = plain(8).with_strategy(strategy);
            let (a, report) = session.assign(&prog);
            assert_eq!(
                report.residual_conflicts,
                0,
                "{} under {}",
                b.name,
                strategy.name()
            );
            let run = session
                .verified_run(&prog, &a, ArrayPlacement::Interleaved)
                .unwrap_or_else(|e| panic!("{} {}: {e}", b.name, strategy.name()));
            assert_eq!(
                run.stats.scalar_conflict_words,
                0,
                "{} under {}: scalar conflicts at runtime",
                b.name,
                strategy.name()
            );
            assert_eq!(run.stats.unplaced_reads, 0);
        }
    }
}

#[test]
fn all_benchmarks_verify_on_small_machines() {
    for b in workloads::benchmarks() {
        for k in [2, 3, 4] {
            let session = plain(k);
            let prog = session.compile(b.source).unwrap();
            let (a, report) = session.assign(&prog);
            assert_eq!(report.residual_conflicts, 0, "{} k={k}", b.name);
            let run = session
                .verified_run(&prog, &a, ArrayPlacement::Interleaved)
                .unwrap_or_else(|e| panic!("{} k={k}: {e}", b.name, k = k));
            assert_eq!(run.stats.scalar_conflict_words, 0, "{} k={k}", b.name);
        }
    }
}

#[test]
fn timing_inequalities_hold_for_every_benchmark() {
    for b in workloads::benchmarks() {
        let session = plain(8);
        let prog = session.compile(b.source).unwrap();
        let (a, _) = session.assign(&prog);
        let row = sim::table2_row(b.name, &prog.sched, &a, 7).unwrap();
        assert!(row.t_min > 0, "{}", b.name);
        assert!(
            row.t_min <= row.t_ave_measured && row.t_ave_measured <= row.t_max,
            "{}: {} ≤ {} ≤ {} violated",
            b.name,
            row.t_min,
            row.t_ave_measured,
            row.t_max
        );
        // Analytic t_ave within [t_min, t_max] too.
        assert!(row.t_ave_analytic >= row.t_min as f64 - 1e-6, "{}", b.name);
        assert!(row.t_ave_analytic <= row.t_max as f64 + 1e-6, "{}", b.name);
    }
}

#[test]
fn output_is_invariant_under_layout_and_policy() {
    // Whatever the memory layout or array policy, program semantics must
    // not change — only timing.
    let b = workloads::by_name("SORT").unwrap();
    let session = plain(4);
    let prog = session.compile(b.source).unwrap();
    let reference = liw_ir::run_source(b.source).unwrap().output;

    let trace = prog.sched.access_trace();
    let layouts = [
        session.assign(&prog).0,
        parallel_memories::core::baseline::round_robin(&trace),
        parallel_memories::core::baseline::single_module(&trace),
        parallel_memories::core::baseline::random_assignment(&trace, 3),
    ];
    let policies = [
        ArrayPlacement::Ideal,
        ArrayPlacement::Interleaved,
        ArrayPlacement::SameModule(1),
        ArrayPlacement::UniformRandom(9),
    ];
    for (i, layout) in layouts.iter().enumerate() {
        for policy in policies.clone() {
            let run = sim::run(&prog.sched, layout, policy.clone()).unwrap();
            assert_eq!(run.output, reference, "layout {i} policy {policy:?}");
        }
    }
}

#[test]
fn duplication_strategies_agree_on_feasibility() {
    for b in workloads::benchmarks() {
        let prog = plain(4).compile(b.source).unwrap();
        let trace = prog.sched.access_trace();
        for dup in [
            DuplicationStrategy::Backtrack,
            DuplicationStrategy::HittingSet,
        ] {
            let params = AssignParams {
                duplication: dup,
                ..AssignParams::default()
            };
            let (a, report) = assign_trace(&trace, &params);
            assert_eq!(report.residual_conflicts, 0, "{} {dup:?}", b.name);
            assert_eq!(a.residual_conflicts(&trace), 0, "{} {dup:?}", b.name);
        }
    }
}

#[test]
fn speedup_band_is_plausible() {
    // The paper reports 64-300% overall speed-up (with trace scheduling
    // across branches, which our per-block list scheduler does not do).
    // Assert a generous band: every benchmark gains, branch-light numeric
    // kernels clear 60%, and the branch-heavy SORT at least 10%.
    let rows = parmem_bench_speedups();
    let mut best = 0.0f64;
    for (name, s) in &rows {
        assert!(*s > 1.10, "{name}: speed-up {s:.2} too low");
        best = best.max(*s);
    }
    assert!(best > 1.6, "best speed-up only {best:.2}");
}

fn parmem_bench_speedups() -> Vec<(String, f64)> {
    let session = plain(8);
    workloads::benchmarks()
        .iter()
        .map(|b| {
            let prog = session.compile(b.source).unwrap();
            let (a, _) = session.assign(&prog);
            let run = session
                .verified_run(&prog, &a, ArrayPlacement::Interleaved)
                .unwrap();
            (b.name.to_string(), run.speedup)
        })
        .collect()
}

#[test]
fn copy_transfer_overhead_is_small() {
    // Table 1's point: little duplication → few compile-time-scheduled copy
    // transfers. Check the runtime cost of those transfers is a tiny
    // fraction of total transfer time.
    let session = plain(8);
    for b in workloads::benchmarks() {
        let prog = session.compile(b.source).unwrap();
        let (a, _) = session.assign(&prog);
        let run = sim::run(&prog.sched, &a, ArrayPlacement::Interleaved).unwrap();
        let frac = run.copy_write_transfers as f64 / run.transfer_time.max(1) as f64;
        assert!(
            frac < 0.10,
            "{}: copy transfers are {frac:.2} of traffic",
            b.name
        );
    }
}

#[test]
fn optimizer_and_unroller_preserve_benchmark_semantics() {
    use liw_ir::unroll::UnrollConfig;
    use parallel_memories::sim::CompileOptions;

    for b in workloads::benchmarks() {
        let reference = liw_ir::run_source(b.source).unwrap().output;
        for opts in [
            CompileOptions {
                unroll: None,
                optimize: true,
                rename: true,
            },
            CompileOptions {
                unroll: Some(UnrollConfig {
                    factor: 4,
                    max_body_stmts: 16,
                }),
                optimize: true,
                rename: true,
            },
            CompileOptions {
                unroll: Some(UnrollConfig {
                    factor: 3,
                    max_body_stmts: 16,
                }),
                optimize: false,
                rename: false,
            },
        ] {
            let session = Session::new(8).with_opts(opts);
            let prog = session.compile(b.source).unwrap();
            let (a, report) = session.assign(&prog);
            assert_eq!(report.residual_conflicts, 0, "{} {opts:?}", b.name);
            let run = sim::run(&prog.sched, &a, ArrayPlacement::Interleaved).unwrap();
            assert_eq!(run.output, reference, "{} {opts:?}", b.name);
            assert_eq!(run.scalar_conflict_words, 0, "{} {opts:?}", b.name);
        }
    }
}

#[test]
fn optimizer_never_increases_cycles_materially() {
    for b in workloads::benchmarks() {
        let plain_prog = plain(8).compile(b.source).unwrap();
        let opt_prog = Session::new(8).compile(b.source).unwrap();
        let run = |p: &sim::CompiledProgram| {
            let (a, _) = plain(8).assign(p);
            sim::run(&p.sched, &a, ArrayPlacement::Ideal)
                .unwrap()
                .cycles
        };
        let (c_plain, c_opt) = (run(&plain_prog), run(&opt_prog));
        assert!(
            c_opt <= c_plain + c_plain / 20,
            "{}: optimizer regressed cycles {c_plain} -> {c_opt}",
            b.name
        );
    }
}

#[test]
fn extended_workloads_run_conflict_free() {
    for b in workloads::extended::extended() {
        let reference = liw_ir::run_source(b.source).unwrap().output;
        for k in [4, 8] {
            let session = plain(k);
            let prog = session.compile(b.source).unwrap();
            let (a, report) = session.assign(&prog);
            assert_eq!(report.residual_conflicts, 0, "{} k={k}", b.name);
            let run = sim::run(&prog.sched, &a, ArrayPlacement::Interleaved).unwrap();
            assert_eq!(run.output, reference, "{} k={k}", b.name);
            assert_eq!(run.scalar_conflict_words, 0, "{} k={k}", b.name);
        }
    }
}

#[test]
fn if_converted_code_runs_correctly_on_the_machine() {
    // A branchy kernel: with the optimizer on (k=8 → if-conversion active)
    // the hot diamond becomes selects; the simulated RLIW must still produce
    // reference output with zero scalar conflicts, in fewer cycles.
    let src = "program branchy; var i, acc, m: int;
        begin
          acc := 0; m := 0;
          for i := 1 to 200 do begin
            if i mod 3 = 0 then acc := acc + i; else m := m + 1;
          end;
          print acc; print m;
        end.";
    let reference = liw_ir::run_source(src).unwrap().output;
    let mut cycles = Vec::new();
    for optimize in [false, true] {
        let session = if optimize { Session::new(8) } else { plain(8) };
        let prog = session.compile(src).unwrap();
        let (a, r) = session.assign(&prog);
        assert_eq!(r.residual_conflicts, 0);
        let run = sim::run(&prog.sched, &a, ArrayPlacement::Interleaved).unwrap();
        assert_eq!(run.output, reference, "optimize={optimize}");
        assert_eq!(run.scalar_conflict_words, 0);
        cycles.push(run.cycles);
    }
    assert!(
        cycles[1] < cycles[0],
        "if-conversion should cut cycles: {} -> {}",
        cycles[0],
        cycles[1]
    );
}
