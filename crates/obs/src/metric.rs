//! Monotonic counters and power-of-two histograms.
//!
//! Names are flat strings; an optional `[key=value,...]` suffix is parsed by
//! the Prometheus exporter into labels, so instrumentation can write
//! `sim.module_transfers[module=3,policy=interleaved]` and the dump renders
//! `parmem_sim_module_transfers{module="3",policy="interleaved"}`.
//!
//! Everything a counter or histogram accumulates is a *deterministic fact*
//! of the work done (conflicts counted, copies made, picks taken) — never a
//! wall-time — so global sums are byte-identical across worker counts.
//! Registries are `BTreeMap`s, so dumps iterate in sorted order.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::span::enabled;

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static HISTS: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());

/// Upper bounds (inclusive) of the finite histogram buckets; one overflow
/// bucket follows.
pub const BUCKET_BOUNDS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// A fixed-bucket histogram of `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
    /// `buckets[i]` counts samples `<= BUCKET_BOUNDS[i]`; the final element
    /// counts overflow samples.
    pub buckets: [u64; BUCKET_BOUNDS.len() + 1],
}

impl Histogram {
    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += value * n;
        self.max = self.max.max(value);
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += n;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Add `delta` to the named counter. No-op while tracing is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    if let Ok(mut c) = COUNTERS.lock() {
        *c.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Record one sample into the named histogram. No-op while disabled.
pub fn hist_record(name: &str, value: u64) {
    hist_record_n(name, value, 1);
}

/// Record `n` occurrences of `value` into the named histogram (bulk path for
/// publishing pre-aggregated per-run histograms). No-op while disabled.
pub fn hist_record_n(name: &str, value: u64, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    if let Ok(mut h) = HISTS.lock() {
        h.entry(name.to_string()).or_default().record_n(value, n);
    }
}

/// Drain the counter registry.
pub(crate) fn take_counters() -> BTreeMap<String, u64> {
    COUNTERS
        .lock()
        .map(|mut g| std::mem::take(&mut *g))
        .unwrap_or_default()
}

/// Drain the histogram registry.
pub(crate) fn take_hists() -> BTreeMap<String, Histogram> {
    HISTS
        .lock()
        .map(|mut g| std::mem::take(&mut *g))
        .unwrap_or_default()
}

/// Clone the counter registry without draining (live-snapshot path).
pub(crate) fn snapshot_counters() -> BTreeMap<String, u64> {
    COUNTERS.lock().map(|g| g.clone()).unwrap_or_default()
}

/// Clone the histogram registry without draining (live-snapshot path).
pub(crate) fn snapshot_hists() -> BTreeMap<String, Histogram> {
    HISTS.lock().map(|g| g.clone()).unwrap_or_default()
}

/// Split `name[key=value,...]` into the base name and its label pairs.
pub fn split_labels(name: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(open) = name.find('[') else {
        return (name, Vec::new());
    };
    let base = &name[..open];
    let inner = name[open + 1..].trim_end_matches(']');
    let labels = inner
        .split(',')
        .filter_map(|pair| pair.split_once('='))
        .map(|(k, v)| (k.trim(), v.trim()))
        .collect();
    (base, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::set_enabled;

    #[test]
    fn counters_accumulate_only_when_enabled() {
        let _guard = crate::test_lock();
        set_enabled(false);
        take_counters();
        counter_add("m.off", 5);
        assert!(take_counters().is_empty());
        set_enabled(true);
        counter_add("m.on", 2);
        counter_add("m.on", 3);
        set_enabled(false);
        assert_eq!(take_counters().get("m.on"), Some(&5));
    }

    #[test]
    fn histogram_buckets_are_cumulative_friendly() {
        let mut h = Histogram::default();
        h.record_n(1, 3);
        h.record_n(2, 1);
        h.record_n(600, 2);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 3 + 2 + 1200);
        assert_eq!(h.max, 600);
        assert_eq!(h.buckets[0], 3); // <= 1
        assert_eq!(h.buckets[1], 1); // <= 2
        assert_eq!(h.buckets[BUCKET_BOUNDS.len()], 2); // overflow
    }

    #[test]
    fn label_splitting() {
        let (base, labels) = split_labels("sim.module_transfers[module=3,policy=ideal]");
        assert_eq!(base, "sim.module_transfers");
        assert_eq!(labels, vec![("module", "3"), ("policy", "ideal")]);
        let (base, labels) = split_labels("plain.name");
        assert_eq!(base, "plain.name");
        assert!(labels.is_empty());
    }
}
