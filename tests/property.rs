//! Property-based tests over the whole stack (proptest).
//!
//! The invariants here are the load-bearing guarantees of the paper's
//! algorithms: conflict-freedom after assignment (verified by an
//! independent bipartite-matching checker), coloring validity, hitting-set
//! coverage, atom soundness, and simulator timing bounds.

use proptest::prelude::*;

use parallel_memories::core::atoms;
use parallel_memories::core::coloring::{color_graph, coloring_is_valid, ModuleChoice};
use parallel_memories::core::duplication::hitting_set;
use parallel_memories::core::graph::ConflictGraph;
use parallel_memories::core::matching;
use parallel_memories::core::prelude::{
    assign_trace, AccessTrace, AssignParams, DuplicationStrategy, OperandSet, ValueId,
};
use parallel_memories::core::types::ModuleSet;

/// Strategy: a random access trace with `k` in 2..=8 and instructions whose
/// operand count never exceeds `k`.
fn arb_trace() -> impl Strategy<Value = AccessTrace> {
    (2usize..=8).prop_flat_map(|k| {
        let inst = proptest::collection::vec(0u32..40, 1..=k);
        proptest::collection::vec(inst, 1..60).prop_map(move |insts| {
            AccessTrace::new(
                k,
                insts
                    .into_iter()
                    .map(|ops| OperandSet::new(ops.into_iter().map(ValueId).collect()))
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The paper's end-to-end guarantee: after Fig. 2's pipeline, every
    /// instruction with ≤ k operands is conflict-free (checked by matching,
    /// an algorithm independent of the constructive ones).
    #[test]
    fn assignment_is_always_conflict_free(trace in arb_trace()) {
        for dup in [DuplicationStrategy::Backtrack, DuplicationStrategy::HittingSet] {
            for use_atoms in [true, false] {
                let params = AssignParams { duplication: dup, use_atoms, ..Default::default() };
                let (a, report) = assign_trace(&trace, &params);
                prop_assert_eq!(report.residual_conflicts, 0,
                    "{:?} atoms={} report={:?}", dup, use_atoms, report);
                for inst in &trace.instructions {
                    prop_assert!(a.instruction_conflict_free(inst));
                }
            }
        }
    }

    /// Every placed value has at least one copy; extra copies only for
    /// values involved in conflicts.
    #[test]
    fn every_used_value_is_placed(trace in arb_trace()) {
        let (a, _) = assign_trace(&trace, &AssignParams::default());
        for v in trace.distinct_values() {
            prop_assert!(a.is_placed(v), "{v} unplaced");
            prop_assert!(a.copies(v).len() <= trace.modules);
        }
    }

    /// Coloring never assigns the same module to two adjacent colored nodes.
    #[test]
    fn coloring_is_valid_on_random_graphs(trace in arb_trace()) {
        let g = ConflictGraph::build(&trace);
        let c = color_graph(&g, trace.modules, ModuleChoice::LowestIndex, |_| ModuleSet::EMPTY);
        prop_assert!(coloring_is_valid(&g, &c));
        prop_assert_eq!(c.assigned.len() + c.unassigned.len(), g.len());
    }

    /// Nodes with degree < k are always colored (paper's weight rule).
    #[test]
    fn low_degree_nodes_always_colored(trace in arb_trace()) {
        let g = ConflictGraph::build(&trace);
        let c = color_graph(&g, trace.modules, ModuleChoice::LowestIndex, |_| ModuleSet::EMPTY);
        for &v in &c.unassigned {
            prop_assert!(g.degree(v) >= trace.modules);
        }
    }

    /// The exact solver's certificate survives independent re-validation
    /// (PM201–PM206), and the paper heuristic can never beat a certified
    /// lower bound — where optimality is proven, heuristic residual ≥ the
    /// certified optimum (the optimality gap is never negative).
    #[test]
    fn exact_certificates_validate_and_bound_the_heuristic(trace in arb_trace()) {
        use parallel_memories::exact::{
            heuristic_single_copy_residual, solve_certificate, CertStatus, ExactConfig,
        };
        let cfg = ExactConfig { budget_nodes: 20_000, ..Default::default() };
        let cert = solve_certificate(&trace, &cfg);
        let h = heuristic_single_copy_residual(&trace, &AssignParams::default());
        let report = parallel_memories::verify::verify_certificate(&trace, &cert, Some(h));
        prop_assert!(report.is_clean(), "{}", report);
        prop_assert!(cert.lower <= cert.upper);
        prop_assert!(h >= cert.lower, "negative gap: heuristic {h} < lower {}", cert.lower);
        if cert.status == CertStatus::Optimal {
            prop_assert!(h >= cert.upper,
                "heuristic {h} beats proven optimum {}", cert.upper);
        }
    }

    /// Atom decomposition covers every vertex and edge; shared vertices form
    /// cliques (they are separators).
    #[test]
    fn atoms_are_sound(trace in arb_trace()) {
        let g = ConflictGraph::build(&trace);
        let atom_sets = atoms::atoms(&g);
        let mut vertex_cover = vec![false; g.len()];
        for a in &atom_sets {
            for &v in a {
                vertex_cover[v as usize] = true;
            }
        }
        prop_assert!(vertex_cover.iter().all(|&c| c));
        for (u, v, _) in g.edges() {
            prop_assert!(
                atom_sets.iter().any(|a| a.contains(&u) && a.contains(&v)),
                "edge ({u},{v}) uncovered"
            );
        }
        // Pairwise intersections are cliques.
        for i in 0..atom_sets.len() {
            for j in (i + 1)..atom_sets.len() {
                let shared: Vec<u32> = atom_sets[i]
                    .iter()
                    .copied()
                    .filter(|v| atom_sets[j].contains(v))
                    .collect();
                prop_assert!(g.is_clique(&shared),
                    "atoms {i} and {j} overlap in a non-clique {shared:?}");
            }
        }
    }

    /// MCS-M produces a chordal fill.
    #[test]
    fn mcs_m_fill_is_chordal(trace in arb_trace()) {
        let g = ConflictGraph::build(&trace);
        let mo = atoms::mcs_m(&g);
        prop_assert!(atoms::is_filled_chordal(&g, &mo));
    }

    /// Hitting-set output hits every input set.
    #[test]
    fn hitting_set_hits_everything(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u32..20, 1..5), 1..25)
    ) {
        let sets: Vec<Vec<ValueId>> = sets
            .into_iter()
            .map(|s| s.into_iter().map(ValueId).collect())
            .collect();
        let hs = hitting_set(&sets, 8);
        for s in &sets {
            prop_assert!(s.iter().any(|v| hs.contains(v)), "{s:?} unhit by {hs:?}");
        }
    }

    /// The matching verifier agrees with a brute-force permutation check on
    /// small instances.
    #[test]
    fn matching_agrees_with_bruteforce(
        sets in proptest::collection::vec(0u64..64, 1..5)
    ) {
        let operands: Vec<ModuleSet> = sets.iter().map(|&b| ModuleSet(b & 0x3F)).collect();
        let fast = matching::instruction_conflict_free(&operands);
        let slow = brute_force_matching(&operands);
        prop_assert_eq!(fast, slow);
    }

    /// Fetch makespan is 1 iff conflict-free, and never exceeds the operand
    /// count.
    #[test]
    fn makespan_bounds(sets in proptest::collection::vec(1u64..64, 1..6)) {
        let operands: Vec<ModuleSet> = sets.iter().map(|&b| ModuleSet(b & 0x3F).union(ModuleSet(1))).collect();
        let ms = matching::fetch_makespan(&operands).unwrap();
        prop_assert!(ms >= 1 && ms <= operands.len());
        prop_assert_eq!(ms == 1, matching::instruction_conflict_free(&operands));
        // A schedule at that makespan exists.
        let (sched, l) = matching::makespan_schedule(&operands).unwrap();
        prop_assert_eq!(l, ms);
        let mut loads = [0usize; 64];
        for (i, &m) in sched.iter().enumerate() {
            prop_assert!(operands[i].contains(parallel_memories::core::types::ModuleId(m)));
            loads[m as usize] += 1;
        }
        prop_assert_eq!(*loads.iter().max().unwrap(), ms);
    }
}

fn brute_force_matching(operands: &[ModuleSet]) -> bool {
    fn rec(i: usize, used: u64, operands: &[ModuleSet]) -> bool {
        if i == operands.len() {
            return true;
        }
        let mut bits = operands[i].0 & !used;
        while bits != 0 {
            let m = bits & bits.wrapping_neg();
            if rec(i + 1, used | m, operands) {
                return true;
            }
            bits &= !m;
        }
        false
    }
    rec(0, 0, operands)
}

/// Richer program generator: arithmetic on ints and reals, ifs, nested
/// loops, arrays — used to fuzz the optimizer and the full pipeline.
mod rich_fuzz {
    use super::*;
    use parallel_memories::driver::Session;
    use parallel_memories::sim::{self, ArrayPlacement, CompileOptions};

    #[derive(Clone, Debug)]
    enum FStmt {
        IntOp(usize, usize, usize, usize),
        RealOp(usize, usize, usize, usize),
        ArrStore(usize, usize),
        ArrLoad(usize, usize),
        If(usize, usize, Vec<FStmt>, Vec<FStmt>),
    }

    fn render(stmts: &[FStmt], indent: usize) -> String {
        let pad = " ".repeat(indent);
        stmts
            .iter()
            .map(|s| match s {
                FStmt::IntOp(d, a, b, op) => {
                    let ops = ["+", "-", "*"];
                    if *op < 3 {
                        format!("{pad}v{d} := v{a} {} v{b};", ops[*op])
                    } else {
                        format!("{pad}v{d} := v{a} mod ((v{b} mod 9) + 1);")
                    }
                }
                FStmt::RealOp(d, a, b, op) => {
                    let ops = ["+", "-", "*"];
                    if *op < 3 {
                        format!("{pad}r{d} := r{a} {} r{b};", ops[*op])
                    } else {
                        format!("{pad}r{d} := r{a} * 0.5 + r{b};")
                    }
                }
                FStmt::ArrStore(i, v) => format!("{pad}arr[(v{i} mod 8 + 8) mod 8] := v{v};"),
                FStmt::ArrLoad(d, i) => format!("{pad}v{d} := arr[(v{i} mod 8 + 8) mod 8];"),
                FStmt::If(a, b, t, e) => format!(
                    "{pad}if v{a} > v{b} then begin\n{}\n{pad}end else begin\n{}\n{pad}end;",
                    render(t, indent + 2),
                    render(e, indent + 2)
                ),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Output equality that treats NaN as equal to NaN (bitwise compare for
    /// reals) — fuzzing can produce NaN, and NaN != NaN under PartialEq.
    fn outputs_equal(a: &[liw_ir::Value], b: &[liw_ir::Value]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| match (x, y) {
                (liw_ir::Value::Real(p), liw_ir::Value::Real(q)) => {
                    p.to_bits() == q.to_bits() || (p.is_nan() && q.is_nan())
                }
                _ => x == y,
            })
    }

    fn arb_stmt(depth: u32) -> impl Strategy<Value = FStmt> {
        let leaf = prop_oneof![
            (0usize..5, 0usize..5, 0usize..5, 0usize..4)
                .prop_map(|(d, a, b, o)| FStmt::IntOp(d, a, b, o)),
            (0usize..4, 0usize..4, 0usize..4, 0usize..4)
                .prop_map(|(d, a, b, o)| FStmt::RealOp(d, a, b, o)),
            (0usize..5, 0usize..5).prop_map(|(i, v)| FStmt::ArrStore(i, v)),
            (0usize..5, 0usize..5).prop_map(|(d, i)| FStmt::ArrLoad(d, i)),
        ];
        leaf.prop_recursive(depth, 12, 4, |inner| {
            (
                0usize..5,
                0usize..5,
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::collection::vec(inner, 0..3),
            )
                .prop_map(|(a, b, t, e)| FStmt::If(a, b, t, e))
        })
    }

    fn arb_rich_program() -> impl Strategy<Value = String> {
        (proptest::collection::vec(arb_stmt(2), 2..10), 2i64..7).prop_map(|(stmts, n)| {
            format!(
                "program rich;
                 var v0, v1, v2, v3, v4, i, j: int;
                     r0, r1, r2, r3: real;
                     arr: array[8] of int;
                 begin
                   v0 := 3; v1 := 5; v2 := 7; v3 := 2; v4 := 11;
                   r0 := 1.5; r1 := 2.25; r2 := 0.5; r3 := 4.0;
                   for i := 0 to {n} do begin
                     for j := 0 to 2 do begin
{}
                     end;
                   end;
                   print v0; print v1; print v2; print v3; print v4;
                   print r0; print r1; print r2; print r3;
                   for i := 0 to 7 do print arr[i];
                 end.",
                render(&stmts, 22)
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The optimizer must preserve semantics on arbitrary programs.
        #[test]
        fn optimizer_preserves_semantics(src in arb_rich_program()) {
            let tac = liw_ir::compile(&src).unwrap();
            let (opt, _) = liw_opt::optimize(&tac);
            let before = liw_ir::run(&tac).unwrap();
            let after = liw_ir::run(&opt).unwrap();
            prop_assert!(outputs_equal(&before.output, &after.output));
            // If-conversion speculates both arms, so instruction count may
            // grow modestly while branches disappear; bound the blow-up.
            prop_assert!(opt.instr_count() <= tac.instr_count() * 2 + 8);
        }

        /// The unroller must preserve semantics on arbitrary programs.
        #[test]
        fn unroller_preserves_semantics(src in arb_rich_program(), factor in 2usize..6) {
            let ast = liw_ir::parse(&src).unwrap();
            let unrolled = liw_ir::unroll::unroll_program(
                &ast,
                liw_ir::unroll::UnrollConfig { factor, max_body_stmts: 24 },
            );
            let p0 = liw_ir::lower(&ast).unwrap();
            let p1 = liw_ir::lower(&unrolled).unwrap();
            prop_assert!(outputs_equal(
                &liw_ir::run(&p0).unwrap().output,
                &liw_ir::run(&p1).unwrap().output
            ));
        }

        /// Full pipeline with optimizer + unroller: scheduled execution under
        /// an assigned layout still matches reference semantics.
        #[test]
        fn optimized_pipeline_matches_reference(src in arb_rich_program(), k in 2usize..=8) {
            let reference = liw_ir::run_source(&src).unwrap();
            let opts = CompileOptions {
                unroll: Some(liw_ir::unroll::UnrollConfig { factor: 3, max_body_stmts: 24 }),
                optimize: true,
                rename: true,
            };
            let session = Session::new(k).with_opts(opts);
            let prog = session.compile(&src).unwrap();
            let (a, report) = session.assign(&prog);
            prop_assert_eq!(report.residual_conflicts, 0);
            let run = sim::run(&prog.sched, &a, ArrayPlacement::Interleaved).unwrap();
            prop_assert!(outputs_equal(&run.output, &reference.output));
            prop_assert_eq!(run.scalar_conflict_words, 0);
        }
    }
}

/// The unified compile-time memory layout as a property: whatever the
/// planner is fed, every array element must map to exactly one in-range
/// module, the digest must anchor the plan, and the independent PM30x
/// checks must pass.
mod layout {
    use super::*;
    use parallel_memories::core::prelude::{
        plan_layout, ArrayPolicy, ArrayProfile, Assignment, ModuleId,
    };
    use parallel_memories::verify;

    fn arb_policy() -> impl Strategy<Value = ArrayPolicy> {
        prop_oneof![
            Just(ArrayPolicy::Interleaved),
            Just(ArrayPolicy::Hash),
            Just(ArrayPolicy::Block),
            Just(ArrayPolicy::Auto),
        ]
    }

    fn arb_profiles() -> impl Strategy<Value = Vec<ArrayProfile>> {
        // Stride -10 encodes "analysis derived nothing" (None).
        proptest::collection::vec((1usize..100, -10i64..9, 0u64..50, 0u64..50), 0..6).prop_map(
            |arrays| {
                arrays
                    .into_iter()
                    .enumerate()
                    .map(|(i, (len, stride, loads, stores))| ArrayProfile {
                        name: format!("a{i}"),
                        len,
                        loads,
                        stores,
                        dominant_stride: (stride != -10).then_some(stride),
                    })
                    .collect()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Totality: any (policy, k, profiles) plan maps every element of
        /// every array — in bounds, out of bounds, negative, or for an
        /// array id the plan has never heard of — to exactly one module in
        /// `0..k`. The mapper can never strand a memory access.
        #[test]
        fn planned_layout_maps_every_element_in_range(
            k in 1usize..=8,
            policy in arb_policy(),
            profiles in arb_profiles(),
            indices in proptest::collection::vec(i64::MIN / 2..i64::MAX / 2, 1..20),
        ) {
            let layout = plan_layout(k, policy, Assignment::new(k), &profiles);
            prop_assert_eq!(layout.arrays.len(), profiles.len());
            for id in 0..(profiles.len() as u32 + 2) {
                for &i in &indices {
                    let m = layout.module_of(id, i);
                    prop_assert!(
                        (m as usize) < k,
                        "{:?} k={} a{}[{}] -> module {}", policy, k, id, i, m
                    );
                }
            }
        }

        /// The digest is a function of the plan (stable under recompute,
        /// moved by any scalar copy), and the independently coded PM301–PM303
        /// checks accept every plan the planner emits.
        #[test]
        fn planned_layout_digest_anchors_and_verifies(
            k in 1usize..=8,
            policy in arb_policy(),
            profiles in arb_profiles(),
            scalar in 0u32..40,
        ) {
            let layout = plan_layout(k, policy, Assignment::new(k), &profiles);
            let digest = layout.digest();
            prop_assert_eq!(digest, layout.digest());
            let report = verify::verify_layout(&layout, digest);
            prop_assert!(report.is_clean(), "{}", report);
            // Any scalar placement moves the digest (PM302 anchoring).
            let mut a = Assignment::new(k);
            a.add_copy(parallel_memories::core::prelude::ValueId(scalar), ModuleId(0));
            let moved = plan_layout(k, policy, a, &profiles);
            prop_assert!(digest != moved.digest(), "scalar copy did not move the digest");
        }
    }
}

/// The independent verifier (`parmem-verify`) as a property: everything the
/// pipeline produces must pass every re-derived invariant check.
mod verification {
    use super::*;
    use parallel_memories::driver::Session;
    use parallel_memories::sim::{self, ArrayPlacement};
    use parallel_memories::verify;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// On random synthetic traces (k in 2..=8, so in particular
        /// k ∈ {2,4,8}) the assignment the pipeline produces passes the
        /// verifier's independent checks under both duplication strategies.
        #[test]
        fn verifier_is_clean_on_random_traces(trace in arb_trace()) {
            for dup in [DuplicationStrategy::Backtrack, DuplicationStrategy::HittingSet] {
                let params = AssignParams { duplication: dup, ..Default::default() };
                let (a, r) = assign_trace(&trace, &params);
                let report = verify::verify_trace(&trace, &a, Some(&r));
                prop_assert!(report.is_clean(), "{:?}: {}", dup, report);
            }
        }
    }

    /// Static conflict prediction equals what the simulator measures on all
    /// six paper workloads: zero predicted, zero observed, at every machine
    /// size the paper considers.
    #[test]
    fn static_prediction_matches_simulator_stalls_on_paper_workloads() {
        for bench in workloads::benchmarks() {
            for k in [2, 4, 8] {
                let prog = Session::new(k)
                    .without_optimizer()
                    .compile(bench.source)
                    .unwrap();
                let (a, r) = assign_trace(&prog.sched.access_trace(), &AssignParams::default());
                let prediction = verify::differential::predict(&prog.sched, &a);
                let stats = sim::run(&prog.sched, &a, ArrayPlacement::Ideal).unwrap();
                assert!(
                    prediction.conflicting_words.is_empty(),
                    "{} k={k}: statically predicted conflicts {:?}",
                    bench.name,
                    prediction.conflicting_words
                );
                assert_eq!(
                    stats.scalar_conflict_words, 0,
                    "{} k={k}: simulator disagrees with static prediction",
                    bench.name
                );
                let vreport = verify::verify_all(&prog.tac, &prog.sched, &a, Some(&r));
                assert!(vreport.is_clean(), "{} k={k}: {vreport}", bench.name);
            }
        }
    }
}

/// Randomized MiniLang program generator: straight-line assignments plus
/// loops, compiled through the whole stack and cross-checked sim vs interp.
mod program_fuzz {
    use super::*;
    use parallel_memories::driver::Session;
    use parallel_memories::sim::{self, ArrayPlacement};

    fn arb_program() -> impl Strategy<Value = String> {
        // A restricted but non-trivial family: integer scalars v0..v5, one
        // array, random arithmetic statements, a for loop with accumulation.
        let stmt = (0usize..6, 0usize..6, 0usize..6, 0usize..4).prop_map(|(a, b, c, op)| {
            let ops = ["+", "-", "*", "mod"];
            if op == 3 {
                // avoid mod by zero: use (vb mod 7) + 1 as divisor
                format!("v{a} := v{b} mod ((v{c} mod 7) + 1);")
            } else {
                format!("v{a} := v{b} {} v{c};", ops[op])
            }
        });
        (proptest::collection::vec(stmt, 1..12), 1i64..9).prop_map(|(stmts, n)| {
            format!(
                "program fuzz;
                 var v0, v1, v2, v3, v4, v5, i: int;
                     arr: array[16] of int;
                 begin
                   v0 := 3; v1 := 5; v2 := 7; v3 := 11; v4 := 13; v5 := 17;
                   for i := 0 to {n} do begin
                     {}
                     arr[i] := v0 + v1;
                   end;
                   print v0; print v1; print v2; print v3; print v4; print v5;
                   for i := 0 to {n} do print arr[i];
                 end.",
                stmts.join("\n                     ")
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn scheduled_execution_matches_reference(src in arb_program(), k in 2usize..=8) {
            let session = Session::new(k).without_optimizer();
            let prog = session.compile(&src).unwrap();
            let reference = liw_ir::run_source(&src).unwrap();
            let (a, report) = session.assign(&prog);
            prop_assert_eq!(report.residual_conflicts, 0);
            let run = sim::run(&prog.sched, &a, ArrayPlacement::Interleaved).unwrap();
            prop_assert_eq!(run.output, reference.output);
            prop_assert_eq!(run.scalar_conflict_words, 0);
        }
    }
}
