//! Strategy comparison in the pressure regime of the paper's Table 1: a
//! synthetic regionized workload whose regions are near-k-chromatic, with
//! region-crossing globals. Shows the paper's ordering — STOR1 duplicates
//! least (it sees all conflicts), STOR2 most (its global stage places
//! values blind to local structure), STOR3 in between.
//!
//! Usage: `cargo run -p parmem-bench --bin strategies [-- <modules>]`

use parmem_core::assignment::AssignParams;
use parmem_core::strategies::{run_strategy, Strategy};
use parmem_core::synth::regional_pressure_trace;

fn main() {
    let k = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    println!("synthetic regionized workloads, k = {k} modules\n");
    println!(
        "{:<28} | {:>11} | {:>11} | {:>11}",
        "workload (regions,globals)", "STOR1 >1", "STOR2 >1", "STOR3 >1"
    );
    println!("{}", "-".repeat(72));
    for (regions, globals, seed) in [(4, 4, 1), (6, 6, 2), (8, 8, 3), (8, 16, 4)] {
        let rt = regional_pressure_trace(k, regions, globals, seed);
        let mut cells = Vec::new();
        for s in [Strategy::Stor1, Strategy::Stor2, Strategy::STOR3] {
            let (_, r) = run_strategy(&rt, s, &AssignParams::default());
            assert_eq!(r.residual_conflicts, 0, "{}", s.name());
            cells.push(format!("{:>6}/{:<4}", r.multi_copy, r.extra_copies));
        }
        println!(
            "{:<28} | {} | {} | {}",
            format!("pressure({regions},{globals}) seed {seed}"),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!("\ncolumns: duplicated-values / extra-copies");
}
