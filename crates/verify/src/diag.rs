//! Structured diagnostics with stable error codes.
//!
//! Every invariant the verifier checks has a fixed `PMxxx` code so tests,
//! scripts, and CI can match on failures without parsing prose. Codes in the
//! `PM0xx` range concern the module assignment; `PM1xx` codes concern the
//! renaming/dataflow invariants of the compiled program; `PM2xx` codes
//! concern exact-solver optimality certificates.

use std::fmt;

/// Stable identifier of one verified invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// An instruction fetches more distinct scalars than there are modules.
    PM001,
    /// An instruction operand has no copy in any module.
    PM002,
    /// An instruction is not conflict-free: its operands cannot be matched to
    /// distinct modules holding their copies.
    PM003,
    /// The report's `residual_conflicts` disagrees with an independent
    /// recount over the trace.
    PM004,
    /// Two single-copy values that co-occur in an instruction share their
    /// only module (proper-coloring violation).
    PM005,
    /// The report's copy bookkeeping (`single_copy` / `multi_copy` /
    /// `extra_copies`) disagrees with a recount over the assignment.
    PM006,
    /// A value has a copy in a module outside `0..k`.
    PM007,
    /// The statically predicted conflict count disagrees with what the
    /// simulator measured cycle-by-cycle.
    PM008,
    /// The scheduled program's published access trace disagrees with an
    /// independent reconstruction from its long words.
    PM009,
    /// A use reads a web that differs from a definition reaching it
    /// (renaming/fresh-value violation — a stale read).
    PM101,
    /// One web renames more than one program variable.
    PM102,
    /// A long word reads a data value that is not defined on every path from
    /// entry.
    PM103,
    /// A long word writes the same data value twice (nondeterministic
    /// commit).
    PM104,
    /// An exact certificate's witness is malformed: a trace value is
    /// unplaced, placed more than once, or placed outside `0..k`.
    PM201,
    /// The witness's recounted residual disagrees with the certificate's
    /// claimed upper bound.
    PM202,
    /// A clique in the certificate's evidence is invalid: too small, not
    /// pairwise co-occurring, vertex-overlapping, or support-overlapping.
    PM203,
    /// The certificate's bounds/status are inconsistent (`lower > upper`,
    /// or the status does not match the bounds).
    PM204,
    /// The certificate claims more evidence-backed lower bound than its
    /// clique evidence supports.
    PM205,
    /// A heuristic assignment's residual is below the certified lower bound
    /// (impossible for a valid certificate: negative gap).
    PM206,
    /// A memory layout maps some array element to an out-of-range module,
    /// or the mapping is not total/deterministic over the probed indices.
    PM301,
    /// A memory layout's recomputed digest disagrees with its own recorded
    /// digest (the plan is not digest-stable).
    PM302,
    /// A memory layout's embedded scalar assignment is inconsistent with
    /// the layout's module count.
    PM303,
}

impl Code {
    /// The stable textual form, e.g. `"PM003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::PM001 => "PM001",
            Code::PM002 => "PM002",
            Code::PM003 => "PM003",
            Code::PM004 => "PM004",
            Code::PM005 => "PM005",
            Code::PM006 => "PM006",
            Code::PM007 => "PM007",
            Code::PM008 => "PM008",
            Code::PM009 => "PM009",
            Code::PM101 => "PM101",
            Code::PM102 => "PM102",
            Code::PM103 => "PM103",
            Code::PM104 => "PM104",
            Code::PM201 => "PM201",
            Code::PM202 => "PM202",
            Code::PM203 => "PM203",
            Code::PM204 => "PM204",
            Code::PM205 => "PM205",
            Code::PM206 => "PM206",
            Code::PM301 => "PM301",
            Code::PM302 => "PM302",
            Code::PM303 => "PM303",
        }
    }

    /// One-line summary of the invariant this code guards.
    pub fn description(self) -> &'static str {
        match self {
            Code::PM001 => "instruction has more operands than memory modules",
            Code::PM002 => "operand value has no copy in any module",
            Code::PM003 => "instruction is not conflict-free",
            Code::PM004 => "residual-conflict count disagrees with recount",
            Code::PM005 => "adjacent single-copy values share a module",
            Code::PM006 => "copy bookkeeping disagrees with recount",
            Code::PM007 => "copy placed in an out-of-range module",
            Code::PM008 => "static conflict prediction disagrees with simulation",
            Code::PM009 => "published access trace disagrees with reconstruction",
            Code::PM101 => "use reads a different web than a reaching definition",
            Code::PM102 => "one web renames multiple variables",
            Code::PM103 => "read of a possibly-undefined data value",
            Code::PM104 => "data value written twice in one long word",
            Code::PM201 => "certificate witness is malformed",
            Code::PM202 => "witness residual disagrees with claimed upper bound",
            Code::PM203 => "certificate clique evidence is invalid",
            Code::PM204 => "certificate bounds or status inconsistent",
            Code::PM205 => "claimed evidence lower bound exceeds valid evidence",
            Code::PM206 => "heuristic residual below certified lower bound",
            Code::PM301 => "layout maps an array element out of range or non-totally",
            Code::PM302 => "layout digest is not stable under recomputation",
            Code::PM303 => "layout's scalar assignment inconsistent with module count",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verified-invariant violation, with enough context to locate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which invariant failed.
    pub code: Code,
    /// Human-readable detail.
    pub message: String,
    /// Offending instruction (index into the access trace), if applicable.
    pub instruction: Option<usize>,
    /// Offending data value, if applicable.
    pub value: Option<u32>,
    /// Offending basic block, if applicable.
    pub block: Option<u32>,
}

impl Diagnostic {
    /// A diagnostic with only a code and message.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
            instruction: None,
            value: None,
            block: None,
        }
    }

    /// Attach the offending instruction index.
    pub fn at_instruction(mut self, i: usize) -> Diagnostic {
        self.instruction = Some(i);
        self
    }

    /// Attach the offending data value.
    pub fn with_value(mut self, v: u32) -> Diagnostic {
        self.value = Some(v);
        self
    }

    /// Attach the offending basic block.
    pub fn in_block(mut self, b: u32) -> Diagnostic {
        self.block = Some(b);
        self
    }

    /// Render as a JSON object (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"code\":\"{}\"", self.code));
        s.push_str(&format!(",\"message\":\"{}\"", escape_json(&self.message)));
        if let Some(i) = self.instruction {
            s.push_str(&format!(",\"instruction\":{i}"));
        }
        if let Some(v) = self.value {
            s.push_str(&format!(",\"value\":{v}"));
        }
        if let Some(b) = self.block {
            s.push_str(&format!(",\"block\":{b}"));
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        if let Some(i) = self.instruction {
            write!(f, " (instruction {i})")?;
        }
        if let Some(v) = self.value {
            write!(f, " (value V{v})")?;
        }
        if let Some(b) = self.block {
            write!(f, " (block B{b})")?;
        }
        Ok(())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The outcome of a verification run: every violation found, plus which
/// checker passes ran (so "clean" is distinguishable from "skipped").
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// All violations, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Names of the checker passes that ran.
    pub checks_run: Vec<&'static str>,
}

impl VerifyReport {
    /// True if no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics carrying the given code.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// True if some diagnostic carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Merge another report's findings into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.diagnostics.extend(other.diagnostics);
        self.checks_run.extend(other.checks_run);
    }

    /// Render the whole report as a JSON object.
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        let checks: Vec<String> = self
            .checks_run
            .iter()
            .map(|c| format!("\"{}\"", escape_json(c)))
            .collect();
        format!(
            "{{\"clean\":{},\"checks_run\":[{}],\"diagnostics\":[{}]}}",
            self.is_clean(),
            checks.join(","),
            diags.join(",")
        )
    }
}

/// Aggregate of many verification runs (batch mode): per-code violation
/// counts across every report, plus which labelled runs were dirty. The
/// batch engine folds one [`VerifyReport`] per job into this so a fleet-wide
/// run summarizes as "N clean / M dirty, PMxxx×c" instead of N full reports.
#[derive(Clone, Debug, Default)]
pub struct BatchSummary {
    /// Reports folded in.
    pub reports: usize,
    /// How many of them were clean.
    pub clean: usize,
    /// Violation count per diagnostic code, across all reports.
    pub counts: std::collections::BTreeMap<Code, usize>,
    /// Labels of the dirty reports, with their violation counts, in fold
    /// order.
    pub dirty: Vec<(String, usize)>,
}

impl BatchSummary {
    /// Fold one labelled report into the aggregate.
    pub fn add(&mut self, label: &str, report: &VerifyReport) {
        self.reports += 1;
        if report.is_clean() {
            self.clean += 1;
        } else {
            self.dirty
                .push((label.to_string(), report.diagnostics.len()));
        }
        for d in &report.diagnostics {
            *self.counts.entry(d.code).or_insert(0) += 1;
        }
    }

    /// True if every folded report was clean.
    pub fn is_clean(&self) -> bool {
        self.clean == self.reports
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = self
            .counts
            .iter()
            .map(|(c, n)| format!("\"{c}\":{n}"))
            .collect();
        let dirty: Vec<String> = self
            .dirty
            .iter()
            .map(|(l, n)| format!("{{\"label\":\"{}\",\"violations\":{n}}}", escape_json(l)))
            .collect();
        format!(
            "{{\"reports\":{},\"clean\":{},\"counts\":{{{}}},\"dirty\":[{}]}}",
            self.reports,
            self.clean,
            counts.join(","),
            dirty.join(",")
        )
    }
}

impl fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} verification runs clean", self.clean, self.reports)?;
        if !self.counts.is_empty() {
            let parts: Vec<String> = self
                .counts
                .iter()
                .map(|(c, n)| format!("{c}×{n}"))
                .collect();
            write!(f, " ({})", parts.join(", "))?;
        }
        Ok(())
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            writeln!(f, "verified: {} checks clean", self.checks_run.len())
        } else {
            writeln!(f, "{} violation(s):", self.diagnostics.len())?;
            for d in &self.diagnostics {
                writeln!(f, "  {d}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::PM001.as_str(), "PM001");
        assert_eq!(Code::PM104.as_str(), "PM104");
        assert!(!Code::PM008.description().is_empty());
    }

    #[test]
    fn diagnostic_display_includes_context() {
        let d = Diagnostic::new(Code::PM003, "cannot match operands")
            .at_instruction(7)
            .with_value(3);
        let s = d.to_string();
        assert!(s.contains("PM003"));
        assert!(s.contains("instruction 7"));
        assert!(s.contains("V3"));
    }

    #[test]
    fn json_escapes_and_nests() {
        let d = Diagnostic::new(Code::PM004, "count \"7\" != 8\n").at_instruction(1);
        let j = d.to_json();
        assert!(j.contains("\\\"7\\\""));
        assert!(j.contains("\\n"));
        let mut r = VerifyReport::default();
        r.checks_run.push("assignment");
        r.diagnostics.push(d);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"clean\":false"));
        assert!(j.contains("\"assignment\""));
    }

    #[test]
    fn batch_summary_aggregates_codes_and_labels() {
        let mut clean = VerifyReport::default();
        clean.checks_run.push("assignment");
        let mut dirty = VerifyReport::default();
        dirty.diagnostics.push(Diagnostic::new(Code::PM003, "a"));
        dirty.diagnostics.push(Diagnostic::new(Code::PM003, "b"));
        dirty.diagnostics.push(Diagnostic::new(Code::PM008, "c"));

        let mut s = BatchSummary::default();
        s.add("FFT k=8", &clean);
        s.add("SORT k=2", &dirty);
        assert!(!s.is_clean());
        assert_eq!((s.reports, s.clean), (2, 1));
        assert_eq!(s.counts[&Code::PM003], 2);
        assert_eq!(s.dirty, vec![("SORT k=2".to_string(), 3)]);
        let text = s.to_string();
        assert!(text.contains("1/2") && text.contains("PM003×2"), "{text}");
        let j = s.to_json();
        assert!(j.contains("\"PM008\":1") && j.contains("SORT k=2"), "{j}");
    }

    #[test]
    fn report_queries() {
        let mut r = VerifyReport::default();
        assert!(r.is_clean());
        r.diagnostics.push(Diagnostic::new(Code::PM001, "too wide"));
        assert!(r.has_code(Code::PM001));
        assert!(!r.has_code(Code::PM002));
        assert_eq!(r.with_code(Code::PM001).len(), 1);
    }
}
