//! Live-telemetry wiring for the CLI: `--metrics-addr` and
//! `--flight-dump`.
//!
//! The session layer is the single place these flags turn into running
//! machinery: [`TelemetryConfig::from_args`] reads them off the shared
//! [`CommonArgs`] parser and [`TelemetryConfig::start`] arms the obs
//! collector, the flight recorder, and (when an address is given) the
//! std-only HTTP `/metrics` endpoint. The returned [`TelemetryGuard`]
//! shuts the endpoint down at the end of the command — after an optional
//! linger (`PARMEM_METRICS_LINGER_MS`) so scripts scraping a short run get
//! a final read — and writes the flight dump when the command fails.
//!
//! Panics need no explicit handling here: [`parmem_obs::flight::install`]
//! chains a panic hook that writes the dump even for panics the batch
//! engine later catches.

use std::path::PathBuf;

use crate::args::CommonArgs;

/// Flight-recorder ring capacity used by the CLI.
pub const FLIGHT_CAPACITY: usize = parmem_obs::flight::DEFAULT_CAPACITY;

/// Parsed telemetry options of one CLI invocation.
#[derive(Clone, Debug, Default)]
pub struct TelemetryConfig {
    /// `--metrics-addr ADDR` — bind the live `/metrics` endpoint here
    /// (e.g. `127.0.0.1:9184`; port 0 picks a free port).
    pub metrics_addr: Option<String>,
    /// `--flight-dump PATH` — write the flight-recorder artifact here on
    /// panic or command failure.
    pub flight_dump: Option<PathBuf>,
}

impl TelemetryConfig {
    /// Read `--metrics-addr`/`--flight-dump` from parsed arguments (both
    /// optional; subcommands that do not declare them simply never see
    /// them here).
    pub fn from_args(args: &CommonArgs) -> TelemetryConfig {
        TelemetryConfig {
            metrics_addr: args.value("--metrics-addr").map(str::to_string),
            flight_dump: args.value("--flight-dump").map(PathBuf::from),
        }
    }

    /// True when either flag was given.
    pub fn is_active(&self) -> bool {
        self.metrics_addr.is_some() || self.flight_dump.is_some()
    }

    /// Arm everything requested: enable the obs collector (live snapshots
    /// need data), install the flight recorder (and its panic hook), and
    /// bind the metrics endpoint. Prints the bound address to stderr so
    /// callers that passed port 0 can discover it.
    pub fn start(&self) -> Result<TelemetryGuard, String> {
        if !self.is_active() {
            return Ok(TelemetryGuard { server: None });
        }
        parmem_obs::set_enabled(true);
        parmem_obs::flight::install(FLIGHT_CAPACITY, self.flight_dump.clone(), false);
        let server = match &self.metrics_addr {
            Some(addr) => {
                let srv =
                    parmem_obs::serve::serve(addr, parmem_obs::serve::ServeOptions::default())
                        .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
                eprintln!("metrics: listening on http://{}/metrics", srv.local_addr());
                Some(srv)
            }
            None => None,
        };
        Ok(TelemetryGuard { server })
    }
}

/// Keeps the metrics endpoint alive for the duration of the command.
pub struct TelemetryGuard {
    server: Option<parmem_obs::serve::MetricsServer>,
}

impl TelemetryGuard {
    /// Write the flight dump for a command that failed without panicking
    /// (the PM-diagnostic path); no-op when `--flight-dump` was not given.
    pub fn dump_error(&self, message: &str) {
        let _ = parmem_obs::flight::dump_to_configured_path("error", Some((message, "<command>")));
    }

    /// Linger if `PARMEM_METRICS_LINGER_MS` asks for it (so a scraper can
    /// take a final reading of a short run), then shut the endpoint down.
    pub fn finish(self) {
        if let Some(srv) = self.server {
            let linger_ms = std::env::var("PARMEM_METRICS_LINGER_MS")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            if linger_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(linger_ms.min(60_000)));
            }
            srv.shutdown();
        }
        parmem_obs::flight::deactivate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_config_starts_an_inert_guard() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.is_active());
        let guard = cfg.start().expect("inert start");
        guard.dump_error("nothing configured"); // no-op, must not fail
        guard.finish();
    }

    #[test]
    fn from_args_picks_up_both_flags() {
        let raw: Vec<String> = [
            "--metrics-addr",
            "127.0.0.1:0",
            "--flight-dump",
            "/tmp/fd.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = CommonArgs::parse("synth", &raw, &[], &["--metrics-addr", "--flight-dump"])
            .expect("parse");
        let cfg = TelemetryConfig::from_args(&args);
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            cfg.flight_dump.as_deref(),
            Some(std::path::Path::new("/tmp/fd.json"))
        );
        assert!(cfg.is_active());
    }
}
