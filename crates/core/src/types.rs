//! Fundamental identifier and container types shared across the crate.
//!
//! The paper's model: a program is a sequence of *long instructions*, each of
//! which simultaneously fetches up to `k` scalar operands (symbolic *data
//! values*) from `k` parallel memory modules. These types encode exactly that
//! view and nothing machine-specific — the front end (`liw-ir`) and scheduler
//! (`liw-sched`) lower real programs into an [`AccessTrace`].

use std::fmt;

/// Maximum number of memory modules supported by [`ModuleSet`]'s bitset
/// representation.
pub const MAX_MODULES: usize = 64;

/// A symbolic *data value* — one per definition of a program variable after
/// renaming (paper §2: "Corresponding to each definition of a variable, a
/// distinct data value is created").
///
/// Values are dense small integers so the algorithms can use flat arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Index into dense per-value tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// One of the `k` parallel memory modules, `M_1 .. M_k` in the paper.
/// Internally zero-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u16);

impl ModuleId {
    /// Index into dense per-module tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One-based in display to match the paper's M_1..M_k convention.
        write!(f, "M{}", self.0 + 1)
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0 + 1)
    }
}

/// A set of memory modules, as a 64-bit bitset. Records in which modules a
/// data value has copies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ModuleSet(pub u64);

impl ModuleSet {
    /// The empty module set.
    pub const EMPTY: ModuleSet = ModuleSet(0);

    /// The set containing every module `0..k`.
    #[inline]
    pub fn all(k: usize) -> ModuleSet {
        assert!(k <= MAX_MODULES, "at most {MAX_MODULES} modules supported");
        if k == MAX_MODULES {
            ModuleSet(u64::MAX)
        } else {
            ModuleSet((1u64 << k) - 1)
        }
    }

    /// The set containing only `m`.
    #[inline]
    pub fn singleton(m: ModuleId) -> ModuleSet {
        ModuleSet(1u64 << m.index())
    }

    /// True if no module is in the set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of modules in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if `m` is in the set.
    #[inline]
    pub fn contains(self, m: ModuleId) -> bool {
        self.0 & (1u64 << m.index()) != 0
    }

    /// Add `m` to the set.
    #[inline]
    pub fn insert(&mut self, m: ModuleId) {
        self.0 |= 1u64 << m.index();
    }

    /// Remove `m` from the set.
    #[inline]
    pub fn remove(&mut self, m: ModuleId) {
        self.0 &= !(1u64 << m.index());
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: ModuleSet) -> ModuleSet {
        ModuleSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: ModuleSet) -> ModuleSet {
        ModuleSet(self.0 & other.0)
    }

    /// Modules in `self` but not `other`.
    #[inline]
    pub fn difference(self, other: ModuleSet) -> ModuleSet {
        ModuleSet(self.0 & !other.0)
    }

    /// Lowest-numbered module in the set, if any.
    #[inline]
    pub fn first(self) -> Option<ModuleId> {
        if self.0 == 0 {
            None
        } else {
            Some(ModuleId(self.0.trailing_zeros() as u16))
        }
    }

    /// Iterate modules in ascending order.
    pub fn iter(self) -> impl Iterator<Item = ModuleId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let m = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(ModuleId(m))
            }
        })
    }
}

impl FromIterator<ModuleId> for ModuleSet {
    fn from_iter<T: IntoIterator<Item = ModuleId>>(iter: T) -> Self {
        let mut s = ModuleSet::EMPTY;
        for m in iter {
            s.insert(m);
        }
        s
    }
}

impl fmt::Debug for ModuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The scalar operands one long instruction fetches simultaneously.
///
/// Stored sorted and deduplicated: fetching the same value twice in one
/// instruction needs only one module access, so duplicates carry no conflict
/// information.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct OperandSet {
    values: Vec<ValueId>,
}

impl OperandSet {
    /// Build an operand set (sorted, deduplicated).
    pub fn new(mut values: Vec<ValueId>) -> OperandSet {
        values.sort_unstable();
        values.dedup();
        OperandSet { values }
    }

    /// The operands, ascending.
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Number of distinct operands.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the instruction reads no scalars.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True if `v` is an operand.
    pub fn contains(&self, v: ValueId) -> bool {
        self.values.binary_search(&v).is_ok()
    }

    /// Iterate the operands, ascending.
    pub fn iter(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.values.iter().copied()
    }

    /// The operand set restricted to values satisfying `keep`.
    pub fn filtered(&self, mut keep: impl FnMut(ValueId) -> bool) -> OperandSet {
        OperandSet {
            values: self.values.iter().copied().filter(|&v| keep(v)).collect(),
        }
    }
}

impl fmt::Debug for OperandSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.values.iter()).finish()
    }
}

impl<const N: usize> From<[u32; N]> for OperandSet {
    fn from(ids: [u32; N]) -> Self {
        OperandSet::new(ids.iter().map(|&i| ValueId(i)).collect())
    }
}

/// A sequence of long-instruction operand fetches, plus the machine's module
/// count `k`. This is the sole input the assignment algorithms need.
#[derive(Clone, Debug)]
pub struct AccessTrace {
    /// Number of parallel memory modules (`k` in the paper).
    pub modules: usize,
    /// One entry per long instruction, in program order.
    pub instructions: Vec<OperandSet>,
}

impl AccessTrace {
    /// Build a trace, validating the module count.
    pub fn new(modules: usize, instructions: Vec<OperandSet>) -> AccessTrace {
        assert!(
            (1..=MAX_MODULES).contains(&modules),
            "module count must be in 1..={MAX_MODULES}"
        );
        AccessTrace {
            modules,
            instructions,
        }
    }

    /// Construct from integer literals, handy in tests and examples:
    /// `AccessTrace::from_lists(3, &[&[1,2,4], &[2,3,5]])`.
    pub fn from_lists(modules: usize, lists: &[&[u32]]) -> AccessTrace {
        AccessTrace::new(
            modules,
            lists
                .iter()
                .map(|l| OperandSet::new(l.iter().map(|&i| ValueId(i)).collect()))
                .collect(),
        )
    }

    /// All distinct values used anywhere in the trace, ascending.
    pub fn distinct_values(&self) -> Vec<ValueId> {
        let mut vs: Vec<ValueId> = self.instructions.iter().flat_map(|i| i.iter()).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Largest value index used, plus one (size for dense tables).
    pub fn value_table_len(&self) -> usize {
        self.instructions
            .iter()
            .flat_map(|i| i.iter())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of instructions whose operand count exceeds `k` — such an
    /// instruction can never be conflict-free and indicates a scheduler bug.
    pub fn oversized_instructions(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.len() > self.modules)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_set_basic_ops() {
        let mut s = ModuleSet::EMPTY;
        assert!(s.is_empty());
        s.insert(ModuleId(3));
        s.insert(ModuleId(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(ModuleId(3)));
        assert!(!s.contains(ModuleId(1)));
        assert_eq!(s.first(), Some(ModuleId(0)));
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![ModuleId(0), ModuleId(3)]);
        s.remove(ModuleId(0));
        assert_eq!(s.first(), Some(ModuleId(3)));
    }

    #[test]
    fn module_set_all_and_difference() {
        let all = ModuleSet::all(4);
        assert_eq!(all.len(), 4);
        let s = ModuleSet::singleton(ModuleId(2));
        let d = all.difference(s);
        assert_eq!(d.len(), 3);
        assert!(!d.contains(ModuleId(2)));
        assert_eq!(ModuleSet::all(MAX_MODULES).len(), MAX_MODULES);
    }

    #[test]
    fn operand_set_sorts_and_dedups() {
        let s = OperandSet::new(vec![ValueId(5), ValueId(1), ValueId(5), ValueId(3)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), &[ValueId(1), ValueId(3), ValueId(5)]);
        assert!(s.contains(ValueId(3)));
        assert!(!s.contains(ValueId(2)));
    }

    #[test]
    fn trace_distinct_values() {
        let t = AccessTrace::from_lists(3, &[&[1, 2, 4], &[2, 3, 5], &[2, 3, 4]]);
        assert_eq!(
            t.distinct_values(),
            vec![ValueId(1), ValueId(2), ValueId(3), ValueId(4), ValueId(5)]
        );
        assert_eq!(t.value_table_len(), 6);
        assert_eq!(t.oversized_instructions(), 0);
    }

    #[test]
    fn trace_flags_oversized_instructions() {
        let t = AccessTrace::from_lists(2, &[&[1, 2, 3], &[1, 2]]);
        assert_eq!(t.oversized_instructions(), 1);
    }

    #[test]
    #[should_panic(expected = "module count")]
    fn trace_rejects_zero_modules() {
        let _ = AccessTrace::from_lists(0, &[&[1]]);
    }

    #[test]
    fn module_set_from_iterator() {
        let s: ModuleSet = [ModuleId(1), ModuleId(4)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(s.contains(ModuleId(4)));
    }
}
