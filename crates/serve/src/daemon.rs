//! The daemon itself: router, cache/admission flow, graceful drain.
//!
//! One [`serve_http`] listener carries everything — the metrics routes
//! (`GET /metrics`, `/healthz`, `/`), the service API (`POST
//! /v1/{assign,compile,exact,lint}`), operational introspection (`GET
//! /v1/stats`), and shutdown (`POST /v1/shutdown`). Connection threads do
//! the cheap work themselves (parsing, cache lookups, stats); pipeline
//! computation is submitted to a bounded [`ServicePool`] so concurrency
//! is capped at the worker count and a traffic burst beyond
//! `workers + queue_depth` is refused with `429 Retry-After` instead of
//! piling up.
//!
//! A request's life: parse strictly (400 on anything unknown) → clamp
//! exact budgets to the daemon's maxima → derive the [`CacheKey`] →
//! cache hit replays the body verbatim (`X-Parmem-Cache: hit`, `304` if
//! the client's `If-None-Match` matches) → miss submits to the pool and
//! waits at most the request wall budget → success is cached and served
//! with its ETag. Pipeline failures are 422, worker panics 500 (the
//! worker itself survives — panic isolation lives in the pool), budget
//! overruns 503.
//!
//! Drain (SIGTERM or `POST /v1/shutdown`) stops admitting new jobs,
//! finishes everything in flight, then closes the listener;
//! [`Daemon::wait`] orchestrates that ordering on the main thread.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use parmem_core::assignment::assign_trace;
use parmem_core::synth::scale_trace;
use parmem_obs::serve::{
    gauge, serve_http, Handler, HttpOptions, HttpServer, MetricsState, Request, Response,
};
use parmem_pool::{ServicePool, SubmitError};

use crate::cache::{fnv1a, ResponseCache};
use crate::intermediates::IntermediateCache;
use crate::protocol::{parse_request, ApiRequest, Endpoint, Source};
use crate::stats::ServeStats;

/// Front-ended programs the intermediate cache holds (entry count; TAC
/// programs are small and uniform, unlike response bodies).
const INTERMEDIATE_CAPACITY: usize = 64;

/// Daemon configuration — the `parmem serve` flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`--addr`; port 0 picks a free port).
    pub addr: String,
    /// Pipeline worker threads (`--jobs`; 0 = auto via `PARMEM_JOBS`).
    pub jobs: usize,
    /// Response-cache byte budget (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Admission queue depth beyond the running jobs (`--queue-depth`).
    pub queue_depth: usize,
    /// Stop after accepting this many connections (`--max-requests`).
    pub max_requests: Option<u64>,
    /// Serve only the metrics routes — no pipeline pool, no `/v1/assign`
    /// family (`--metrics-only`; what `serve-metrics` always did).
    pub metrics_only: bool,
    /// Wall budget one request may wait for its pipeline job, ms.
    pub request_budget_ms: u64,
    /// Ceiling on a request's exact-solver node budget.
    pub max_budget_nodes: u64,
    /// Ceiling on a request's exact-solver wall budget, ms (0 = leave the
    /// clock-free default alone).
    pub max_budget_ms: u64,
    /// Accept the `sleep_ms` test seam in request bodies
    /// (`PARMEM_SERVE_DEBUG=1`; never enabled in production).
    pub debug_hooks: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:9185".to_string(),
            jobs: 0,
            cache_bytes: 64 << 20,
            queue_depth: 64,
            max_requests: None,
            metrics_only: false,
            request_budget_ms: 120_000,
            max_budget_nodes: parmem_exact::ExactConfig::default().budget_nodes,
            max_budget_ms: 0,
            debug_hooks: false,
        }
    }
}

struct DaemonState {
    config: ServeConfig,
    cache: Mutex<ResponseCache>,
    intermediates: Arc<IntermediateCache>,
    stats: ServeStats,
    metrics: MetricsState,
    pool: Option<ServicePool>,
    draining: AtomicBool,
}

/// A running `parmem serve` daemon.
pub struct Daemon {
    server: Option<HttpServer>,
    state: Arc<DaemonState>,
}

impl Daemon {
    /// Bind the listener, spawn the worker pool, and start serving.
    pub fn start(config: ServeConfig) -> std::io::Result<Daemon> {
        signal::install();
        let pool =
            (!config.metrics_only).then(|| ServicePool::new(config.jobs, config.queue_depth));
        let state = Arc::new(DaemonState {
            cache: Mutex::new(ResponseCache::new(config.cache_bytes)),
            intermediates: Arc::new(IntermediateCache::new(INTERMEDIATE_CAPACITY)),
            stats: ServeStats::default(),
            metrics: MetricsState::new(),
            pool,
            draining: AtomicBool::new(false),
            config,
        });
        let handler_state = Arc::clone(&state);
        let handler: Handler = Arc::new(move |req: &Request| route(&handler_state, req));
        let server = serve_http(
            &state.config.addr,
            HttpOptions {
                max_requests: state.config.max_requests,
                ..HttpOptions::default()
            },
            handler,
        )?;
        Ok(Daemon {
            server: Some(server),
            state,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.as_ref().expect("running").local_addr()
    }

    /// Whether a drain has been requested (HTTP shutdown or SIGTERM).
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::Relaxed) || signal::triggered()
    }

    /// Serve until a drain is requested (`POST /v1/shutdown` or SIGTERM)
    /// or the `max_requests` budget exhausts the acceptor, then shut down
    /// gracefully: refuse new pipeline jobs, stop accepting connections,
    /// finish every in-flight request, join everything.
    pub fn wait(mut self) {
        loop {
            if self.is_draining() {
                break;
            }
            if self
                .server
                .as_ref()
                .map(HttpServer::is_finished)
                .unwrap_or(true)
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        self.graceful_shutdown();
    }

    /// Graceful shutdown now, without waiting for a drain signal.
    pub fn shutdown(mut self) {
        self.graceful_shutdown();
    }

    fn graceful_shutdown(&mut self) {
        self.state.draining.store(true, Ordering::Relaxed);
        // Refuse new pipeline work; admitted jobs keep running.
        if let Some(pool) = &self.state.pool {
            pool.begin_drain();
        }
        // Stop accepting and join in-flight connection threads — each
        // finishes once its pipeline job completes, so this IS the
        // finish-in-flight barrier.
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        // Pool workers exit on their own once the queue is empty; the
        // ServicePool drop (when the last state Arc goes) joins them.
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn route(state: &Arc<DaemonState>, req: &Request) -> Response {
    let t0 = Instant::now();
    let (label, response) = dispatch(state, req);
    state.stats.record(
        ServeStats::endpoint_index(label),
        response.status,
        t0.elapsed(),
    );
    response
}

fn dispatch(state: &Arc<DaemonState>, req: &Request) -> (&'static str, Response) {
    const API_PATHS: [(&str, Endpoint); 4] = [
        ("/v1/assign", Endpoint::Assign),
        ("/v1/compile", Endpoint::Compile),
        ("/v1/exact", Endpoint::Exact),
        ("/v1/lint", Endpoint::Lint),
    ];
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => ("metrics", metrics_response(state)),
        ("GET", "/healthz") => ("other", Response::text(200, "ok\n")),
        ("GET", "/") => ("other", index_response(state)),
        ("GET", "/v1/stats") => ("stats", stats_response(state)),
        ("POST", "/v1/shutdown") => ("other", shutdown_response(state)),
        (method, path) => {
            if let Some(&(_, endpoint)) = API_PATHS.iter().find(|(p, _)| *p == path) {
                if method != "POST" {
                    return (endpoint.label(), Response::text(405, "POST only\n"));
                }
                if state.config.metrics_only {
                    return (
                        endpoint.label(),
                        error_response(404, "pipeline endpoints are disabled in metrics-only mode"),
                    );
                }
                return (endpoint.label(), api_response(state, req, endpoint));
            }
            if matches!(
                path,
                "/metrics" | "/healthz" | "/" | "/v1/stats" | "/v1/shutdown"
            ) {
                return ("other", Response::text(405, "method not allowed\n"));
            }
            ("other", Response::text(404, "not found\n"))
        }
    }
}

fn index_response(state: &Arc<DaemonState>) -> Response {
    let body = if state.config.metrics_only {
        "parmem serve (metrics-only); scrape /metrics\n".to_string()
    } else {
        "parmem serve; POST /v1/{assign,compile,exact,lint}, GET /v1/stats, /metrics, /healthz\n"
            .to_string()
    };
    Response::text(200, body)
}

fn metrics_response(state: &Arc<DaemonState>) -> Response {
    let mut body = state.metrics.render();
    state.stats.prometheus(&mut body);
    {
        let cache = state.cache.lock().unwrap();
        let s = cache.stats();
        gauge(
            &mut body,
            "parmem_serve_cache_hits_total",
            "response-cache hits",
            s.hits,
        );
        gauge(
            &mut body,
            "parmem_serve_cache_misses_total",
            "response-cache misses",
            s.misses,
        );
        gauge(
            &mut body,
            "parmem_serve_cache_evictions_total",
            "response-cache LRU evictions",
            s.evictions,
        );
        gauge(
            &mut body,
            "parmem_serve_cache_bytes",
            "response-cache body bytes held",
            cache.bytes() as u64,
        );
        gauge(
            &mut body,
            "parmem_serve_cache_entries",
            "response-cache entries held",
            cache.len() as u64,
        );
    }
    {
        let s = state.intermediates.stats();
        gauge(
            &mut body,
            "parmem_serve_intermediate_hits_total",
            "frontend-TAC cache hits",
            s.hits,
        );
        gauge(
            &mut body,
            "parmem_serve_intermediate_misses_total",
            "frontend-TAC cache misses",
            s.misses,
        );
        gauge(
            &mut body,
            "parmem_serve_intermediate_entries",
            "frontend-TAC cache entries held",
            s.entries,
        );
    }
    if let Some(pool) = &state.pool {
        let p = pool.stats();
        gauge(
            &mut body,
            "parmem_serve_queue_depth",
            "pipeline jobs waiting for a worker",
            p.queued as u64,
        );
        gauge(
            &mut body,
            "parmem_serve_jobs_in_flight",
            "pipeline jobs running right now",
            p.in_flight as u64,
        );
        gauge(
            &mut body,
            "parmem_serve_jobs_rejected_total",
            "pipeline jobs refused at admission (429s)",
            p.rejected,
        );
        gauge(
            &mut body,
            "parmem_serve_jobs_completed_total",
            "pipeline jobs run to completion",
            p.completed,
        );
    }
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8".to_string(),
        headers: Vec::new(),
        body: body.into_bytes(),
    }
}

fn stats_response(state: &Arc<DaemonState>) -> Response {
    let cache_json = state.cache.lock().unwrap().stats_json();
    let queue_json = match &state.pool {
        Some(pool) => {
            let p = pool.stats();
            format!(
                "{{\"workers\":{},\"queue_depth\":{},\"queued\":{},\"in_flight\":{},\
                 \"submitted\":{},\"completed\":{},\"rejected\":{},\"panicked\":{}}}",
                pool.worker_count(),
                state.config.queue_depth,
                p.queued,
                p.in_flight,
                p.submitted,
                p.completed,
                p.rejected,
                p.panicked
            )
        }
        None => "null".to_string(),
    };
    Response::json(
        200,
        format!(
            "{{\"schema\":\"parmem-serve-stats/v1\",\"draining\":{},\"cache\":{},\
             \"intermediates\":{},\"queue\":{},\"endpoints\":{}}}",
            state.draining.load(Ordering::Relaxed) || signal::triggered(),
            cache_json,
            state.intermediates.stats_json(),
            queue_json,
            state.stats.json()
        ),
    )
}

fn shutdown_response(state: &Arc<DaemonState>) -> Response {
    state.draining.store(true, Ordering::Relaxed);
    if let Some(pool) = &state.pool {
        pool.begin_drain();
    }
    // The connection thread can't join the server it is running on; the
    // main thread's `Daemon::wait` sees the flag and performs the drain.
    Response::json(200, "{\"status\":\"draining\"}")
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        format!("{{\"error\":\"{}\"}}", json_escape(message)),
    )
}

// ---------------------------------------------------------------------------
// The API flow: parse → clamp → cache → admit → compute → cache → serve
// ---------------------------------------------------------------------------

fn api_response(state: &Arc<DaemonState>, req: &Request, endpoint: Endpoint) -> Response {
    let mut api = match parse_request(endpoint, &req.body, state.config.debug_hooks) {
        Ok(api) => api,
        Err(e) => return error_response(400, &e),
    };
    clamp_budgets(&mut api, &state.config);
    let key = api.cache_key();
    let if_none_match = req.header("if-none-match").map(str::to_string);

    if let Some(cached) = state.cache.lock().unwrap().lookup(&key) {
        return replay(cached.body, cached.etag, "hit", if_none_match.as_deref());
    }
    if state.draining.load(Ordering::Relaxed) || signal::triggered() {
        return error_response(503, "draining");
    }
    let pool = state.pool.as_ref().expect("api_response gated on pool");

    let (tx, rx) = mpsc::sync_channel::<Result<String, (u16, String)>>(1);
    let job_api = api.clone();
    let job_intermediates = Arc::clone(&state.intermediates);
    let submitted = pool.try_submit(Box::new(move || {
        if job_api.sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(job_api.sleep_ms));
        }
        // A send failure means the requester gave up (budget overrun);
        // the computed result is simply dropped.
        let _ = tx.send(compute(&job_api, &job_intermediates));
    }));
    match submitted {
        Ok(()) => {}
        Err(SubmitError::Saturated) => {
            return error_response(429, "saturated: retry later").with_header("Retry-After", "1");
        }
        Err(SubmitError::ShuttingDown) => return error_response(503, "draining"),
    }

    match rx.recv_timeout(Duration::from_millis(state.config.request_budget_ms.max(1))) {
        Ok(Ok(body)) => {
            let stored = state.cache.lock().unwrap().insert(key, body.clone());
            let etag = stored
                .map(|c| c.etag)
                .unwrap_or_else(|| crate::cache::etag_for(&body));
            replay(body, etag, "miss", if_none_match.as_deref())
        }
        Ok(Err((status, message))) => error_response(status, &message),
        Err(mpsc::RecvTimeoutError::Timeout) => error_response(503, "request wall budget exceeded"),
        // The worker panicked before sending: the closure (and tx) was
        // dropped inside catch_unwind. The daemon and the worker live on.
        Err(mpsc::RecvTimeoutError::Disconnected) => error_response(500, "pipeline job panicked"),
    }
}

/// Serve a response body with its cache verdict, honouring
/// `If-None-Match` revalidation.
fn replay(body: String, etag: String, verdict: &str, if_none_match: Option<&str>) -> Response {
    if if_none_match.is_some_and(|c| c.split(',').any(|t| t.trim() == etag || t.trim() == "*")) {
        return Response {
            status: 304,
            content_type: "application/json".to_string(),
            headers: vec![
                ("ETag".to_string(), etag),
                ("X-Parmem-Cache".to_string(), verdict.to_string()),
            ],
            body: Vec::new(),
        };
    }
    Response::json(200, body)
        .with_header("ETag", etag)
        .with_header("X-Parmem-Cache", verdict)
}

/// Clamp per-request exact budgets to the daemon's maxima — a client
/// cannot buy unbounded solver time. Runs before cache-key derivation so
/// the clamped request is what gets addressed.
fn clamp_budgets(api: &mut ApiRequest, config: &ServeConfig) {
    api.exact.budget_nodes = api.exact.budget_nodes.min(config.max_budget_nodes);
    if config.max_budget_ms > 0 {
        api.exact.budget_ms = if api.exact.budget_ms == 0 {
            config.max_budget_ms
        } else {
            api.exact.budget_ms.min(config.max_budget_ms)
        };
    }
}

// ---------------------------------------------------------------------------
// Pipeline computation (runs on pool workers)
// ---------------------------------------------------------------------------

/// Compute the response body for one admitted request. `Err` carries the
/// HTTP status (422 pipeline failure) and a message.
fn compute(api: &ApiRequest, inter: &IntermediateCache) -> Result<String, (u16, String)> {
    match api.endpoint {
        Endpoint::Assign => compute_assign(api, inter),
        Endpoint::Compile => compute_compile(api, inter),
        Endpoint::Exact => compute_exact(api, inter),
        Endpoint::Lint => compute_lint(api, inter),
    }
}

fn source_text(api: &ApiRequest) -> Result<&str, (u16, String)> {
    match &api.source {
        Source::Text(src) => Ok(src),
        Source::Synth(_) => Err((400, "synth input is only supported by /v1/assign".into())),
    }
}

/// Finish compilation from the (possibly cached) frontend TAC: every
/// endpoint that needs a [`CompiledProgram`] goes through here so
/// same-program/different-`k` requests share one parse.
fn compile_via_cache(
    session: &parmem_driver::Session,
    inter: &IntermediateCache,
    src: &str,
) -> Result<rliw_sim::pipeline::CompiledProgram, (u16, String)> {
    let tac = inter
        .frontend(session, src)
        .map_err(|e| (422, e.to_string()))?;
    Ok(session.compile_tac(&tac))
}

fn compute_assign(api: &ApiRequest, inter: &IntermediateCache) -> Result<String, (u16, String)> {
    let session = api.session();
    let (trace, assignment, report) = match &api.source {
        Source::Text(src) => {
            let prog = compile_via_cache(&session, inter, src)?;
            let trace = prog.sched.access_trace();
            let (assignment, report) = session.assign(&prog);
            (trace, assignment, report)
        }
        Source::Synth(spec) => {
            // Mirrors `parmem synth --assign`: the strategy knob does not
            // apply to a raw trace; the Fig. 2 pipeline runs directly.
            let trace = scale_trace(spec, api.seed);
            let (assignment, report) = assign_trace(&trace, &session.params);
            (trace, assignment, report)
        }
    };
    // Content digest of the placement itself: per-value module sets in
    // first-use order. Lets clients compare placements without shipping
    // the full (possibly 10^6-row) module map.
    let values = trace.distinct_values();
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for &v in &values {
        bytes.extend_from_slice(&assignment.copies(v).0.to_le_bytes());
    }
    Ok(format!(
        "{{\"schema\":\"parmem-serve-assign/v1\",\"program\":\"{}\",\"k\":{},\
         \"strategy\":\"{}\",\"seed\":{},\"instructions\":{},\"values\":{},\
         \"single_copy\":{},\"multi_copy\":{},\"extra_copies\":{},\"uncolored\":{},\
         \"atoms\":{},\"residual_conflicts\":{},\"repair_copies\":{},\
         \"assignment_digest\":\"{:016x}\"}}",
        json_escape(&api.program),
        api.k,
        api.strategy.name(),
        api.seed,
        trace.instructions.len(),
        values.len(),
        report.single_copy,
        report.multi_copy,
        report.extra_copies,
        report.uncolored,
        report.atoms,
        report.residual_conflicts,
        report.repair_copies,
        fnv1a(&bytes),
    ))
}

fn compute_compile(api: &ApiRequest, inter: &IntermediateCache) -> Result<String, (u16, String)> {
    let src = source_text(api)?;
    let session = api.session();
    // Seed the job with the cached frontend TAC; parse errors fall through
    // to the uncached job runner so the 422 carries the structured report.
    let spec = match inter.frontend(&session, src) {
        Ok(tac) => session
            .job(api.program.clone(), src.to_string())
            .with_frontend_tac(tac),
        Err(_) => session.job(api.program.clone(), src.to_string()),
    };
    let result = parmem_driver::run_job(&spec);
    let body = format!(
        "{{\"schema\":\"parmem-serve-compile/v1\",\"job\":{}}}",
        parmem_batch::report::job_json(&result, false)
    );
    match &result.outcome {
        Ok(_) => Ok(body),
        // The job JSON already names the stage and error; serve it as the
        // 422 body so clients get the full structured report.
        Err(_) => Err((422, format!("pipeline failed: {}", result.status()))),
    }
}

fn compute_exact(api: &ApiRequest, inter: &IntermediateCache) -> Result<String, (u16, String)> {
    let src = source_text(api)?;
    let session = api.session();
    let prog = compile_via_cache(&session, inter, src)?;
    let trace = prog.sched.access_trace();
    let certificate = parmem_exact::solve_certificate(&trace, &api.exact);
    let heuristic = parmem_exact::heuristic_single_copy_residual(&trace, &session.params);
    let check = parmem_verify::verify_certificate(&trace, &certificate, Some(heuristic));
    Ok(format!(
        "{{\"schema\":\"parmem-serve-exact/v1\",\"program\":\"{}\",\"k\":{},\
         \"heuristic_residual\":{},\"gap\":{},\"verify_diags\":{},\"certificate\":{}}}",
        json_escape(&api.program),
        api.k,
        heuristic,
        heuristic as isize - certificate.lower as isize,
        check.diagnostics.len(),
        certificate.to_json()
    ))
}

fn compute_lint(api: &ApiRequest, inter: &IntermediateCache) -> Result<String, (u16, String)> {
    let src = source_text(api)?;
    let session = api.session();
    let prog = compile_via_cache(&session, inter, src)?;
    let report = session
        .lint_compiled(api.program.clone(), &prog, api.predict)
        .map_err(|e| (422, e.to_string()))?;
    Ok(format!(
        "{{\"schema\":\"parmem-serve-lint/v1\",\"report\":{}}}",
        report.to_json()
    ))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// SIGTERM → drain flag (async-signal-safe: the handler only stores)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    static SIGTERM: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    extern "C" fn on_sigterm(_sig: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }

    /// Install the SIGTERM handler (idempotent). Uses the libc `signal`
    /// entry point std already links — no external crate.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        INSTALL.call_once(|| unsafe {
            const SIGTERM_NUM: i32 = 15;
            signal(SIGTERM_NUM, on_sigterm as extern "C" fn(i32) as usize);
        });
    }

    /// Whether SIGTERM has arrived.
    pub fn triggered() -> bool {
        SIGTERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signal {
    /// No-op on non-unix targets (drain via `POST /v1/shutdown`).
    pub fn install() {}

    /// Always false on non-unix targets.
    pub fn triggered() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
        extra: &str,
    ) -> (u16, String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(
            conn,
            "{method} {path} HTTP/1.1\r\nHost: x\r\n{extra}Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        let (head, payload) = resp.split_once("\r\n\r\n").expect("head/body split");
        let status: u16 = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status");
        (status, head.to_string(), payload.to_string())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
        request(addr, "POST", path, body, "")
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        request(addr, "GET", path, "", "")
    }

    fn start(config: ServeConfig) -> Daemon {
        Daemon::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..config
        })
        .expect("bind")
    }

    #[test]
    fn assign_is_cached_and_revalidates() {
        let daemon = start(ServeConfig {
            jobs: 2,
            ..ServeConfig::default()
        });
        let addr = daemon.local_addr();
        let body = r#"{"workload":"FFT","k":4}"#;

        let (s1, h1, b1) = post(addr, "/v1/assign", body);
        assert_eq!(s1, 200, "{b1}");
        assert!(h1.contains("X-Parmem-Cache: miss"), "{h1}");
        assert!(b1.contains("\"schema\":\"parmem-serve-assign/v1\""), "{b1}");
        assert!(b1.contains("\"assignment_digest\""), "{b1}");

        let (s2, h2, b2) = post(addr, "/v1/assign", body);
        assert_eq!(s2, 200);
        assert!(h2.contains("X-Parmem-Cache: hit"), "{h2}");
        assert_eq!(b1, b2, "cached response must be byte-identical");

        // ETag revalidation: If-None-Match on the cached entry is a 304.
        let etag = h2
            .lines()
            .find_map(|l| l.strip_prefix("ETag: "))
            .expect("etag header")
            .to_string();
        let (s3, h3, b3) = request(
            addr,
            "POST",
            "/v1/assign",
            body,
            &format!("If-None-Match: {etag}\r\n"),
        );
        assert_eq!(s3, 304, "{h3}");
        assert!(b3.is_empty());

        // /v1/stats sees one miss and two hits (304 revalidation is a hit).
        let (_, _, stats) = get(addr, "/v1/stats");
        assert!(stats.contains("\"hits\":2"), "{stats}");
        assert!(stats.contains("\"misses\":1"), "{stats}");

        daemon.shutdown();
    }

    #[test]
    fn bad_requests_are_400_with_accepted_members() {
        let daemon = start(ServeConfig::default());
        let addr = daemon.local_addr();
        let (s, _, b) = post(addr, "/v1/assign", r#"{"workload":"FFT","bogus":1}"#);
        assert_eq!(s, 400);
        assert!(b.contains("unknown member `bogus`"), "{b}");
        let (s, _, b) = post(addr, "/v1/compile", r#"{"synth":{"values":100}}"#);
        assert_eq!(s, 400, "{b}");
        let (s, _, _) = get(addr, "/v1/assign");
        assert_eq!(s, 405);
        let (s, _, _) = get(addr, "/nope");
        assert_eq!(s, 404);
        daemon.shutdown();
    }

    #[test]
    fn compile_errors_are_422_and_not_cached() {
        let daemon = start(ServeConfig::default());
        let addr = daemon.local_addr();
        let body = r#"{"source":"program broken("}"#;
        let (s, _, b) = post(addr, "/v1/compile", body);
        assert_eq!(s, 422, "{b}");
        let (_, _, stats) = get(addr, "/v1/stats");
        assert!(stats.contains("\"insertions\":0"), "{stats}");
        daemon.shutdown();
    }

    #[test]
    fn exact_and_lint_endpoints_answer() {
        let daemon = start(ServeConfig::default());
        let addr = daemon.local_addr();
        let (s, _, b) = post(addr, "/v1/exact", r#"{"workload":"FFT","k":2}"#);
        assert_eq!(s, 200, "{b}");
        assert!(b.contains("\"schema\":\"parmem-serve-exact/v1\""), "{b}");
        assert!(b.contains("\"certificate\""), "{b}");
        let (s, _, b) = post(addr, "/v1/lint", r#"{"workload":"FFT"}"#);
        assert_eq!(s, 200, "{b}");
        assert!(b.contains("\"schema\":\"parmem-serve-lint/v1\""), "{b}");
        daemon.shutdown();
    }

    #[test]
    fn frontend_cache_hits_across_k_and_endpoints() {
        let daemon = start(ServeConfig::default());
        let addr = daemon.local_addr();
        // Same workload at two k's: the response cache misses twice, but
        // the second request reuses the front-ended TAC.
        let (s, _, b) = post(addr, "/v1/compile", r#"{"workload":"FFT","k":4}"#);
        assert_eq!(s, 200, "{b}");
        let (s, _, _) = post(addr, "/v1/compile", r#"{"workload":"FFT","k":8}"#);
        assert_eq!(s, 200);
        // A different endpoint on the same source also hits.
        let (s, _, _) = post(addr, "/v1/lint", r#"{"workload":"FFT"}"#);
        assert_eq!(s, 200);
        let (_, _, stats) = get(addr, "/v1/stats");
        assert!(
            stats.contains("\"intermediates\":{\"hits\":2,\"misses\":1,\"entries\":1}"),
            "{stats}"
        );
        let (_, _, m) = get(addr, "/metrics");
        assert!(m.contains("parmem_serve_intermediate_hits_total 2"), "{m}");
        daemon.shutdown();
    }

    #[test]
    fn array_policy_requests_carry_the_planned_summary() {
        let daemon = start(ServeConfig::default());
        let addr = daemon.local_addr();
        let body = r#"{"workload":"FFT","array_policy":"hash"}"#;
        let (s, _, b) = post(addr, "/v1/compile", body);
        assert_eq!(s, 200, "{b}");
        assert!(b.contains("\"planned\":{\"policy\":\"hash\""), "{b}");
        // The policy is part of the response address: the plain request
        // computes its own body, without the planned member.
        let (s, h, b) = post(addr, "/v1/compile", r#"{"workload":"FFT"}"#);
        assert_eq!(s, 200);
        assert!(h.contains("X-Parmem-Cache: miss"), "{h}");
        assert!(!b.contains("\"planned\""), "{b}");
        // Bad policy values are a 400 naming the accepted set.
        let (s, _, b) = post(
            addr,
            "/v1/compile",
            r#"{"workload":"FFT","array_policy":"nope"}"#,
        );
        assert_eq!(s, 400);
        assert!(b.contains("bad array_policy"), "{b}");
        daemon.shutdown();
    }

    #[test]
    fn metrics_only_mode_disables_the_pipeline() {
        let daemon = start(ServeConfig {
            metrics_only: true,
            ..ServeConfig::default()
        });
        let addr = daemon.local_addr();
        let (s, _, _) = get(addr, "/metrics");
        assert_eq!(s, 200);
        let (s, _, b) = post(addr, "/v1/assign", r#"{"workload":"FFT"}"#);
        assert_eq!(s, 404, "{b}");
        let (_, _, stats) = get(addr, "/v1/stats");
        assert!(stats.contains("\"queue\":null"), "{stats}");
        daemon.shutdown();
    }

    #[test]
    fn metrics_carry_serve_families() {
        let daemon = start(ServeConfig::default());
        let addr = daemon.local_addr();
        let _ = post(addr, "/v1/assign", r#"{"workload":"SORT"}"#);
        let (_, _, m) = get(addr, "/metrics");
        for family in [
            "parmem_serve_requests_total",
            "parmem_serve_latency_us_bucket",
            "parmem_serve_cache_hits_total",
            "parmem_serve_queue_depth",
            "parmem_metrics_scrapes_total",
        ] {
            assert!(m.contains(family), "missing {family}:\n{m}");
        }
        daemon.shutdown();
    }

    #[test]
    fn http_shutdown_drains() {
        let daemon = start(ServeConfig::default());
        let addr = daemon.local_addr();
        let (s, _, b) = post(addr, "/v1/shutdown", "");
        assert_eq!(s, 200);
        assert!(b.contains("draining"), "{b}");
        assert!(daemon.is_draining());
        // New pipeline work is refused while draining.
        let (s, _, _) = post(addr, "/v1/assign", r#"{"workload":"FFT"}"#);
        assert_eq!(s, 503);
        daemon.wait(); // completes because draining is set
    }
}
