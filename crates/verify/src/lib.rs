#![warn(missing_docs)]

//! # parmem-verify
//!
//! An independent static checker for every invariant the assignment
//! pipeline claims. Where `parmem-core` *constructs* (conflict graph →
//! atoms → coloring → duplication → placement) and `rliw-sim` *executes*,
//! this crate *re-derives*: its own dataflow solvers over the `liw-ir` CFG,
//! its own bipartite matching over plain bitmasks, its own trace
//! reconstruction from the long words — and then compares against what the
//! pipeline published. Agreement between independently written code paths is
//! the evidence; disagreement is reported as a structured [`Diagnostic`]
//! with a stable `PMxxx` code, the offending instruction/value, and
//! optional JSON output.
//!
//! Checked invariants, by code:
//!
//! | code  | invariant |
//! |-------|-----------|
//! | PM001 | no instruction fetches more scalars than there are modules |
//! | PM002 | every operand value has at least one copy |
//! | PM003 | every instruction is conflict-free (perfect matching exists) |
//! | PM004 | `report.residual_conflicts` equals an independent recount |
//! | PM005 | no two co-occurring single-copy values share their only module |
//! | PM006 | report copy bookkeeping equals a recount over the assignment |
//! | PM007 | every copy lives in a module `0..k` |
//! | PM008 | static conflict prediction equals what the simulator measures |
//! | PM009 | the published access trace equals a word-by-word reconstruction |
//! | PM101 | every use reads the web of each definition reaching it |
//! | PM102 | no web renames two program variables |
//! | PM103 | every read is defined on all paths from entry |
//! | PM104 | no long word writes the same data value twice |
//! | PM201 | an exact certificate's witness places every value once, in range |
//! | PM202 | the witness residual recounts to the claimed upper bound |
//! | PM203 | the clique evidence is valid, vertex- and support-disjoint |
//! | PM204 | certificate bounds and status are mutually consistent |
//! | PM205 | the claimed evidence lower bound is backed by valid cliques |
//! | PM206 | no heuristic residual undercuts the certified lower bound |
//! | PM301 | the memory layout maps every array element totally, in range |
//! | PM302 | the memory layout's digest is stable under recomputation |
//! | PM303 | the layout's scalar assignment agrees with its module count |
//!
//! Entry points: [`verify_trace`] for trace+assignment pairs (what
//! `parmem verify` uses on trace files and what the property tests drive),
//! [`verify_scheduled`] for a scheduled program, [`verify_all`] for the
//! whole compiled pipeline including the renaming proof over the TAC,
//! [`verify_certificate`] for exact-solver certificates (what
//! `parmem verify --exact` uses), and [`verify_layout`] for compile-time
//! [`parmem_core::layout::MemoryLayout`] plans (PM301–PM303).

pub mod assignment_check;
pub mod certificate_check;
pub mod dataflow;
pub mod diag;
pub mod differential;
pub mod layout_check;

pub use diag::{BatchSummary, Code, Diagnostic, VerifyReport};

use liw_ir::tac::TacProgram;
use liw_sched::SchedProgram;
use parmem_core::assignment::{Assignment, AssignmentReport};
use parmem_core::types::AccessTrace;

/// Verify the assignment invariants of a bare trace/assignment pair
/// (PM001–PM007, and PM004/PM006 when `report` is given).
pub fn verify_trace(
    trace: &AccessTrace,
    assignment: &Assignment,
    report: Option<&AssignmentReport>,
) -> VerifyReport {
    let mut out = VerifyReport::default();
    out.checks_run.push("assignment");
    let mut sp = parmem_obs::span("verify.assignment");
    out.diagnostics.extend(assignment_check::check_assignment(
        trace, assignment, report,
    ));
    sp.attr("diags", out.diagnostics.len());
    out
}

/// Verify a scheduled program and its assignment: the trace checks of
/// [`verify_trace`], the trace reconstruction (PM009), the word-level
/// dataflow invariants (PM103/PM104), and the static-vs-simulated
/// differential (PM008).
pub fn verify_scheduled(
    sched: &SchedProgram,
    assignment: &Assignment,
    report: Option<&AssignmentReport>,
) -> VerifyReport {
    let trace = differential::rebuild_trace(sched);
    let mut out = verify_trace(&trace, assignment, report);
    fn family(
        out: &mut VerifyReport,
        name: &'static str,
        span_name: &str,
        check: impl FnOnce() -> Vec<diag::Diagnostic>,
    ) {
        out.checks_run.push(name);
        let mut sp = parmem_obs::span(span_name);
        let diags = check();
        sp.attr("diags", diags.len());
        out.diagnostics.extend(diags);
    }
    family(
        &mut out,
        "trace-reconstruction",
        "verify.trace_reconstruction",
        || differential::check_trace_reconstruction(sched),
    );
    family(
        &mut out,
        "scheduled-dataflow",
        "verify.scheduled_dataflow",
        || dataflow::check_scheduled_dataflow(sched),
    );
    family(&mut out, "differential", "verify.differential", || {
        differential::check_differential(sched, assignment)
    });
    out
}

/// Verify an exact-solver certificate against its trace (PM201–PM206).
/// `heuristic_residual`, when given, enables the PM206 negative-gap check.
pub fn verify_certificate(
    trace: &AccessTrace,
    cert: &parmem_exact::Certificate,
    heuristic_residual: Option<usize>,
) -> VerifyReport {
    let mut out = VerifyReport::default();
    out.checks_run.push("certificate");
    let mut sp = parmem_obs::span("verify.certificate");
    out.diagnostics.extend(certificate_check::check_certificate(
        trace,
        cert,
        heuristic_residual,
    ));
    sp.attr("diags", out.diagnostics.len());
    out
}

/// Verify a compile-time memory layout (PM301–PM303): total and in-range
/// per-element mapping for every array, a digest stable under
/// recomputation, and a scalar assignment consistent with the plan's `k`.
/// Pass the digest recorded when the plan was made (a job output's
/// `layout_digest`, a serve response's, …) so drift is caught.
pub fn verify_layout(
    layout: &parmem_core::layout::MemoryLayout,
    recorded_digest: u64,
) -> VerifyReport {
    let mut out = VerifyReport::default();
    out.checks_run.push("layout");
    let mut sp = parmem_obs::span("verify.layout");
    out.diagnostics
        .extend(layout_check::check_layout(layout, recorded_digest));
    sp.attr("diags", out.diagnostics.len());
    out
}

/// Verify the whole pipeline: everything [`verify_scheduled`] checks, plus
/// the renaming (fresh-value) proof over the TAC program's webs
/// (PM101/PM102).
pub fn verify_all(
    tac: &TacProgram,
    sched: &SchedProgram,
    assignment: &Assignment,
    report: Option<&AssignmentReport>,
) -> VerifyReport {
    let mut out = verify_scheduled(sched, assignment, report);
    out.checks_run.push("renaming");
    let mut sp = parmem_obs::span("verify.renaming");
    let webs = liw_ir::compute_webs(tac);
    let diags = dataflow::check_renaming(tac, &webs);
    sp.attr("diags", diags.len());
    out.diagnostics.extend(diags);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use liw_sched::MachineSpec;
    use parmem_core::assignment::{assign_trace, AssignParams};
    use parmem_core::types::{ModuleId, ModuleSet};

    const SRC: &str = "program t; var i, s, n: int;
        begin
          n := 12; s := 0;
          for i := 1 to n do s := s + i * i;
          print s;
        end.";

    #[test]
    fn full_pipeline_verifies_clean() {
        for k in [2, 4, 8] {
            let tac = liw_ir::compile(SRC).unwrap();
            let sched = liw_sched::schedule(&tac, MachineSpec::with_modules(k));
            let (a, r) = assign_trace(&sched.access_trace(), &AssignParams::default());
            let report = verify_all(&tac, &sched, &a, Some(&r));
            assert!(report.is_clean(), "k={k}: {report}");
            assert_eq!(report.checks_run.len(), 5);
        }
    }

    #[test]
    fn corruption_surfaces_through_verify_all() {
        let tac = liw_ir::compile(SRC).unwrap();
        let sched = liw_sched::schedule(&tac, MachineSpec::with_modules(4));
        let trace = sched.access_trace();
        let (mut a, r) = assign_trace(&trace, &AssignParams::default());
        // Cram every operand of the first multi-operand word into module 0.
        let inst = trace
            .instructions
            .iter()
            .position(|i| i.len() >= 2)
            .expect("some word reads two scalars");
        for v in trace.instructions[inst].iter() {
            a.set_copies(v, ModuleSet::singleton(ModuleId(0)));
        }
        let report = verify_all(&tac, &sched, &a, Some(&r));
        assert!(!report.is_clean());
        assert!(
            report
                .with_code(Code::PM003)
                .iter()
                .any(|d| d.instruction == Some(inst)),
            "PM003 must name instruction {inst}: {report}"
        );
        // The differential check must also notice at run time (the word is
        // inside the loop body or prologue, either way it executes).
        assert!(report.has_code(Code::PM008) || report.has_code(Code::PM004));
    }

    #[test]
    fn report_json_roundtrip_shape() {
        let tac = liw_ir::compile(SRC).unwrap();
        let sched = liw_sched::schedule(&tac, MachineSpec::with_modules(4));
        let (a, r) = assign_trace(&sched.access_trace(), &AssignParams::default());
        let report = verify_all(&tac, &sched, &a, Some(&r));
        let j = report.to_json();
        assert!(j.contains("\"clean\":true"));
        assert!(j.contains("\"renaming\""));
    }
}
